"""Serialization of node trees back to XML text.

This is the "unparsing step" of the paper's security processor (Section 7,
step 4): "generating a valid XML document in text format, simply by
unparsing the pruned DOM tree". Two styles are offered:

- :func:`serialize` — compact, content-preserving output whose parse is
  structurally identical to the input tree (round-trip tested by the
  property suite);
- :func:`pretty` — indented output for human consumption in examples and
  documentation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.xml.escape import escape_attribute, escape_text
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

__all__ = ["serialize", "pretty"]


def serialize(
    node: Node,
    xml_declaration: bool = True,
    doctype: bool = True,
) -> str:
    """Serialize *node* (a document or any subtree) to a string.

    Parameters
    ----------
    node:
        A :class:`Document` or any node; attributes serialize as
        ``name="value"``.
    xml_declaration:
        Emit ``<?xml version="1.0"?>`` for documents.
    doctype:
        Emit the ``<!DOCTYPE ...>`` declaration when the document carries
        one (only the external SYSTEM form round-trips; an internal
        subset is re-emitted from the attached DTD object, if any).
    """
    if isinstance(node, Document):
        prolog: list[str] = []
        if xml_declaration:
            declaration = f'<?xml version="{node.xml_version}"'
            if node.encoding:
                declaration += f' encoding="{node.encoding}"'
            if node.standalone is not None:
                declaration += f' standalone="{"yes" if node.standalone else "no"}"'
            declaration += "?>"
            prolog.append(declaration)
        if doctype and node.doctype_name:
            prolog.append(_doctype_string(node))
        body: list[str] = []
        for child in node.children:
            _write(child, body)
        head = "\n".join(prolog) + "\n" if prolog else ""
        return head + "".join(body)
    parts: list[str] = []
    _write(node, parts)
    return "".join(parts)


def _doctype_string(document: Document) -> str:
    declaration = f"<!DOCTYPE {document.doctype_name}"
    if document.system_id:
        declaration += f' SYSTEM "{document.system_id}"'
    elif document.dtd is not None:
        from repro.dtd.serializer import serialize_dtd

        body = serialize_dtd(document.dtd, indent="  ")
        declaration += " [\n" + body + "\n]"
    declaration += ">"
    return declaration


def _write(node: Node, parts: list[str]) -> None:
    if isinstance(node, Element):
        # Iterative serialization (explicit stack with end-tag markers)
        # so arbitrarily deep views serialize without recursion limits.
        stack: list[object] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, str):  # an end-tag marker
                parts.append(current)
                continue
            if isinstance(current, Element):
                parts.append(f"<{current.name}")
                for attr in current.attributes.values():
                    parts.append(f' {attr.name}="{escape_attribute(attr.value)}"')
                if not current.children:
                    parts.append("/>")
                    continue
                parts.append(">")
                stack.append(f"</{current.name}>")
                stack.extend(reversed(current.children))
            else:
                _write(current, parts)  # leaf kinds below, never recurse deep
    elif isinstance(node, Text):
        parts.append(escape_text(node.data))
    elif isinstance(node, Comment):
        if "--" in node.data:
            raise ReproError("comment data may not contain '--'")
        parts.append(f"<!--{node.data}-->")
    elif isinstance(node, ProcessingInstruction):
        if "?>" in node.data:
            raise ReproError("PI data may not contain '?>'")
        parts.append(f"<?{node.target} {node.data}?>" if node.data else f"<?{node.target}?>")
    elif isinstance(node, Attribute):
        parts.append(f'{node.name}="{escape_attribute(node.value)}"')
    elif isinstance(node, Document):
        parts.append(serialize(node))
    else:  # pragma: no cover - defensive
        raise ReproError(f"cannot serialize node of type {type(node).__name__}")


def pretty(
    node: Node,
    indent: str = "  ",
    xml_declaration: bool = False,
    max_inline_text: int = 60,
) -> str:
    """Serialize with indentation for display.

    Elements whose content is a single short text node are kept on one
    line (``<title>An XML paper</title>``); whitespace-only text nodes
    are dropped. The output is intended for human eyes — it does not
    round-trip whitespace-sensitive content.
    """
    parts: list[str] = []
    if isinstance(node, Document):
        if xml_declaration:
            parts.append(f'<?xml version="{node.xml_version}"?>')
        if node.doctype_name:
            parts.append(_doctype_string(node))
        for child in node.children:
            _write_pretty(child, parts, 0, indent, max_inline_text)
    else:
        _write_pretty(node, parts, 0, indent, max_inline_text)
    return "\n".join(parts)


def _write_pretty(
    node: Node,
    parts: list[str],
    level: int,
    indent: str,
    max_inline_text: int,
) -> None:
    if isinstance(node, Element):
        # Iterative with explicit (node, level) stack and end-tag
        # markers, for parity with `serialize` on deep documents.
        stack: list[tuple[object, int]] = [(node, level)]
        while stack:
            current, depth = stack.pop()
            pad = indent * depth
            if isinstance(current, str):  # an end-tag marker
                parts.append(f"{pad}{current}")
                continue
            if not isinstance(current, Element):
                _write_pretty(current, parts, depth, indent, max_inline_text)
                continue
            open_tag = f"<{current.name}"
            for attr in current.attributes.values():
                open_tag += f' {attr.name}="{escape_attribute(attr.value)}"'
            meaningful = [
                child
                for child in current.children
                if not (isinstance(child, Text) and not child.data.strip())
            ]
            if not meaningful:
                parts.append(f"{pad}{open_tag}/>")
                continue
            if len(meaningful) == 1 and isinstance(meaningful[0], Text):
                text = escape_text(meaningful[0].data.strip())
                if len(text) <= max_inline_text:
                    parts.append(f"{pad}{open_tag}>{text}</{current.name}>")
                    continue
            parts.append(f"{pad}{open_tag}>")
            stack.append((f"</{current.name}>", depth))
            for child in reversed(meaningful):
                stack.append((child, depth + 1))
        return
    pad = indent * level
    if isinstance(node, Text):
        stripped = node.data.strip()
        if stripped:
            parts.append(f"{pad}{escape_text(stripped)}")
    elif isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.data}-->")
    elif isinstance(node, ProcessingInstruction):
        body = f"<?{node.target} {node.data}?>" if node.data else f"<?{node.target}?>"
        parts.append(f"{pad}{body}")
    elif isinstance(node, Attribute):
        parts.append(f'{pad}{node.name}="{escape_attribute(node.value)}"')


def element_signature(node: Optional[Node]) -> str:
    """A compact structural signature used by tests to compare trees.

    Attribute order is normalized (sorted by name) so signatures compare
    structure and content, not incidental ordering.
    """
    if node is None:
        return "(none)"
    if isinstance(node, Document):
        return "".join(element_signature(child) for child in node.children)
    if isinstance(node, Element):
        attrs = "".join(
            f"@{name}={node.attributes[name].value!r}"
            for name in sorted(node.attributes)
        )
        inner = "".join(element_signature(child) for child in node.children)
        return f"<{node.name}{attrs}>{inner}</{node.name}>"
    if isinstance(node, Text):
        return repr(node.data)
    if isinstance(node, Comment):
        return f"<!--{node.data}-->"
    if isinstance(node, ProcessingInstruction):
        return f"<?{node.target} {node.data}?>"
    if isinstance(node, Attribute):
        return f"@{node.name}={node.value!r}"
    return f"<{type(node).__name__}>"
