"""A zero-dependency metrics registry: counters, gauges, histograms.

The server-side enforcement pipeline emits a small, documented set of
metrics — cache hits, guard trips, fault-injection firings, retry
attempts, request outcomes, per-stage latencies — into a
:class:`MetricsRegistry`. Two registries matter in practice:

- every :class:`~repro.server.service.SecureXMLServer` owns a private
  registry (``server.metrics``) for per-server request accounting, and
- the process-wide default :data:`METRICS`, used by module-level code
  that has no server in scope (the fault injector, the retry helper).

Metrics are named with a Prometheus-compatible vocabulary
(``snake_case`` base name + optional label key/values) and exported two
ways: :meth:`MetricsRegistry.as_dict` for programmatic consumption and
:meth:`MetricsRegistry.render_prometheus` as the standard text
exposition format. The full metric catalogue lives in
``docs/OBSERVABILITY.md``.

Registries are **thread-safe**. ``value += amount`` on a plain
attribute is a read-modify-write (the GIL guarantees each bytecode is
atomic, not the pair), so parallel requests would silently drop
increments — and ``MetricsRegistry._get`` is check-then-insert, so two
threads racing on a fresh name could each create *their own* instance
of one metric and split its traffic. Both are guarded by one lock per
registry, shared by every metric it owns: get-or-create, every
increment/set/observe and every export snapshot serialize on it. The
hot path stays allocation-free — an armed counter increment is one
dict lookup (amortized by callers holding the Counter object), one
uncontended lock acquire and an integer add. Two fast paths keep the
locking cost off latency-critical code:

- looking up a metric that already exists is one lock-free ``dict.get``
  (atomic under the GIL); only creation takes the lock, and
- :meth:`MetricsRegistry.record_batch` applies a whole request's worth
  of updates under a single acquisition — the server's request scope
  batches its accounting so thread safety costs one uncontended
  acquire per request, not one per metric (bounded <= 2 % of a warm
  cached serve by the C1 section of ``benchmarks/run_report.py``).
"""

from __future__ import annotations

import bisect
import threading
from typing import Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Fixed histogram buckets for request/stage latencies, in seconds.
#: Chosen to straddle the measured pipeline costs (sub-millisecond
#: cache hits up to multi-second pathological documents).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelValue = Union[str, int, float, bool]


def _label_key(labels: dict[str, LabelValue]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    Updates serialize on the owning registry's lock (a private lock for
    directly constructed instances), so concurrent ``inc`` calls never
    lose increments.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "counter"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def _record(self, amount: float) -> None:
        """Unlocked update — caller holds the shared registry lock."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. cache entry count)."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: Optional[threading.Lock] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def _record(self, value: float) -> None:
        """Unlocked ``set`` — caller holds the shared registry lock."""
        self.value = value


class Histogram:
    """Observations distributed over fixed, cumulative buckets.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``-style
    per-bucket (non-cumulative internally; the Prometheus dump emits
    cumulative values as the format requires, plus ``+Inf``, ``_sum``
    and ``_count``). :meth:`quantile` gives a linear-interpolation
    estimate from the buckets — good enough for dashboards; exact
    percentiles for the benchmark baseline come from raw span samples
    instead (see ``benchmarks/run_report.py``).
    """

    __slots__ = (
        "name", "labels", "buckets", "bucket_counts", "count", "sum", "_lock"
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: Optional[Sequence[float]] = None,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        chosen = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = chosen
        # One slot per finite bucket + one overflow slot (+Inf).
        self.bucket_counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value

    def _record(self, value: float) -> None:
        """Unlocked observe — caller holds the shared registry lock."""
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """:meth:`quantile` on the percentile scale (0 <= p <= 100).

        The reporting surfaces (``stats()``, ``repro top``, the
        benchmark sections) all quote p50/p95/p99; this spelling keeps
        them uniform: ``histogram.percentile(99)``.
        """
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        return self.quantile(p / 100.0)

    def quantile(self, q: float) -> float:
        """Approximate the q-quantile (0 <= q <= 1) from the buckets."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (
                self.buckets[index]
                if index < len(self.buckets)
                # Open-ended overflow bucket: report its lower edge.
                else self.buckets[-1]
            )
            if seen + bucket_count >= target:
                if bucket_count == 0 or index >= len(self.buckets):
                    return upper
                fraction = (target - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
            lower = upper
        return lower


Metric = Union[Counter, Gauge, Histogram]

_KIND_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, optionally labelled metrics with dict/Prometheus export.

    Thread-safe: one lock per registry guards the name table
    (get-or-create is atomic, so a metric has exactly one instance) and
    is shared by every owned metric's update path, so increments are
    never lost and exports see a consistent snapshot.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Metric] = {}
        self._lock = threading.Lock()

    # -- access (get-or-create) ---------------------------------------------

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Histogram:
        key = (name, _label_key(labels))
        # Fast path: an existing metric is one lock-free dict read (a
        # single atomic lookup under the GIL). Only creation — the
        # check-then-insert race — needs the lock.
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = Histogram(
                        name,
                        {k: str(v) for k, v in labels.items()},
                        buckets,
                        lock=self._lock,
                    )
                    self._metrics[key] = metric
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is already registered as a {metric.kind}")
        return metric

    def _get(self, cls, name: str, labels: dict[str, LabelValue]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)  # lock-free when it exists
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(
                        name,
                        {k: str(v) for k, v in labels.items()},
                        lock=self._lock,
                    )
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(f"{name!r} is already registered as a {metric.kind}")
        return metric

    # -- batched updates -----------------------------------------------------

    def record_batch(self, ops) -> None:
        """Apply many updates under ONE lock acquisition.

        *ops* is an iterable of ``(kind, name, labels, value)`` tuples
        with ``kind`` one of ``"counter"`` (inc by *value*), ``"gauge"``
        (set to *value*) or ``"histogram"`` (observe *value*); *labels*
        is a plain dict. Metrics are created on first use, exactly as
        the per-metric accessors would.

        This is the request hot path's flush: the server's request
        scope accumulates its accounting (request counters, latency and
        per-stage histograms) and applies it here in one go, so making
        metrics thread-safe costs one uncontended acquire per request
        instead of one per update.
        """
        with self._lock:
            for kind, name, labels, value in ops:
                cls = _KIND_CLASSES[kind]
                key = (name, _label_key(labels))
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(
                        name,
                        {k: str(v) for k, v in labels.items()},
                        lock=self._lock,
                    )
                    self._metrics[key] = metric
                elif not isinstance(metric, cls):
                    raise TypeError(
                        f"{name!r} is already registered as a {metric.kind}"
                    )
                metric._record(value)

    # -- introspection -------------------------------------------------------

    def __iter__(self):
        # Iterate a point-in-time snapshot so callers can create metrics
        # (or other threads can) while a stats pass walks the registry.
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def value(self, name: str, **labels: LabelValue) -> Optional[float]:
        """The current value of a counter/gauge, ``None`` if absent."""
        with self._lock:
            metric = self._metrics.get((name, _label_key(labels)))
            if metric is None or isinstance(metric, Histogram):
                return None
            return metric.value

    def reset(self) -> None:
        """Drop every metric (tests; a fresh process-start state)."""
        with self._lock:
            self._metrics.clear()

    # -- export --------------------------------------------------------------

    def snapshot(self) -> list[tuple]:
        """A picklable point-in-time dump of every metric.

        Returns ``[(kind, name, labels, data), ...]`` where *data* is
        the value for counters/gauges and a dict with ``buckets``,
        ``bucket_counts``, ``count`` and ``sum`` for histograms — plain
        builtins only, so a worker process can ship its whole registry
        across a pipe (piggy-backed on heartbeats and responses) for
        :class:`repro.obs.fleet.FleetView` to merge. Taken under the
        registry lock: a snapshot is a consistent cut, never a torn
        read of a half-applied ``record_batch``.
        """
        out: list[tuple] = []
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    data: object = {
                        "buckets": list(metric.buckets),
                        "bucket_counts": list(metric.bucket_counts),
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                else:
                    data = metric.value
                out.append((metric.kind, metric.name, dict(metric.labels), data))
        return out

    def as_dict(self) -> dict:
        """A plain-data snapshot: ``{name: {label-tuple-str: value}}``.

        Counters and gauges map to numbers; histograms to a dict with
        ``count``, ``sum``, ``mean`` and per-bucket counts.
        """
        out: dict[str, dict] = {}
        # Hold the registry lock for the whole walk: updates share the
        # same lock, so the export is a consistent point-in-time cut.
        with self._lock:
            for metric in self._metrics.values():
                series = out.setdefault(metric.name, {})
                label_str = ",".join(
                    f"{k}={v}" for k, v in sorted(metric.labels.items())
                )
                if isinstance(metric, Histogram):
                    series[label_str] = {
                        "count": metric.count,
                        "sum": metric.sum,
                        "mean": metric.mean,
                        "buckets": {
                            str(edge): count
                            for edge, count in zip(
                                metric.buckets, metric.bucket_counts
                            )
                        },
                        "overflow": metric.bucket_counts[-1],
                    }
                else:
                    series[label_str] = metric.value
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        Each metric family is announced by one ``# HELP`` and one
        ``# TYPE`` line before its first sample (conformance checked by
        :func:`repro.obs.fleet.lint_prometheus`); help text comes from
        :data:`HELP_TEXTS` with a generic fallback.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        for metric in metrics:
            name = _sanitize(metric.name)
            if name not in seen_types:
                help_text = HELP_TEXTS.get(
                    metric.name, f"repro {metric.kind} {metric.name}"
                )
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_types.add(name)
            if isinstance(metric, Histogram):
                cumulative = 0
                for edge, count in zip(metric.buckets, metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_labels(metric.labels, le=_fmt(edge))}"
                        f" {cumulative}"
                    )
                cumulative += metric.bucket_counts[-1]
                lines.append(
                    f"{name}_bucket{_labels(metric.labels, le='+Inf')} {cumulative}"
                )
                lines.append(f"{name}_sum{_labels(metric.labels)} {_fmt(metric.sum)}")
                lines.append(f"{name}_count{_labels(metric.labels)} {metric.count}")
            else:
                lines.append(f"{name}{_labels(metric.labels)} {_fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def reinit_registry_locks(registry: MetricsRegistry) -> None:
    """Replace *registry*'s lock (and every owned metric's) after a fork.

    A ``fork()`` clones the whole address space, including a lock that
    some *other* parent thread happened to hold at the fork instant —
    the child has no such thread, so the first acquire would deadlock
    forever. Worker processes call this once at boot on the registries
    they inherit (the process-wide :data:`METRICS`); since every metric
    shares its owning registry's lock, the replacement must be applied
    to each metric too, not just the registry.
    """
    fresh = threading.Lock()
    registry._lock = fresh
    for metric in registry._metrics.values():
        metric._lock = fresh


#: Help text for the documented metric vocabulary (docs/OBSERVABILITY.md
#: is the catalogue of record); unknown names get a generic line so the
#: exposition always carries HELP/TYPE for every family.
HELP_TEXTS: dict[str, str] = {
    "requests_total": "Requests served, by kind and outcome",
    "request_seconds": "End-to-end request latency",
    "stage_seconds": "Per-pipeline-stage latency",
    "view_cache_hits": "View-cache hits",
    "view_cache_misses": "View-cache misses",
    "audit_sink_errors_total": "Audit sink failures (record kept in the ring)",
    "pool_requests_total": "Pool request resolutions, by outcome",
    "pool_worker_restarts_total": "Worker restarts performed by the supervisor",
    "pool_worker_lost_total": "Worker deaths, by reason",
    "pool_shed_total": "Requests shed at admission (queue full)",
    "pool_degraded_total": "Requests served by the in-process fallback",
    "pool_late_results_total": "Worker results arriving after resolution",
    "pool_ipc_errors_total": "Corrupt/unparseable frames on a worker pipe",
    "pool_queue_depth": "Queued requests per worker",
    "pool_workers_alive": "Workers currently up",
    "pool_breaker_state": "Circuit breaker state (0 closed, 1 half-open, 2 open)",
    "pool_slo_seconds": "Sliding-window latency quantiles, by stage",
    "pool_worker_shards": "Shard ownership map (value is always 1)",
}


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (not double quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and newline must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{_sanitize(k)}="{_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


#: The process-wide default registry, used by module-level
#: instrumentation (fault injection, retries) that has no server
#: instance in scope. Tests reset it between cases (tests/conftest.py).
METRICS = MetricsRegistry()
