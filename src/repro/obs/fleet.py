"""Fleet-wide observability for the multi-process serving tier.

The PR 2 observability layer is strictly per-process: a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer` live and die inside whichever process
created them, so once requests are served by the sharded pool
(:class:`~repro.server.pool.ShardedServerPool`) the parent sees only
its own ``pool_*`` dispatch counters — the per-stage latencies, cache
hit rates and span trees all happen in worker processes and vanish
with them. This module is the parent-side half of closing that gap:

- :class:`FleetView` merges the registry **snapshots** workers ship
  back (piggy-backed on heartbeats and on every response — see
  :meth:`MetricsRegistry.snapshot`) into per-worker and aggregate
  counters/gauges/histograms. Snapshots are *cumulative*, keyed by the
  worker's incarnation (its slot generation), and merged with
  retire-on-death folding, so a restarted worker restarts its deltas
  at zero without ever double-counting — the conservation invariant
  (sum of harvested worker ``requests_total`` equals the dispatcher's
  worker-served outcome totals) is asserted by the chaos suite.
- :class:`SloTracker` keeps sliding-window latency quantiles
  (p50/p95/p99) per stage, decomposing queue wait from service time.
- :func:`lint_prometheus` is a pure-python conformance check over the
  text exposition format (HELP/TYPE lines, label escaping, histogram
  ``_bucket``/``_sum``/``_count`` and ``le`` ordering, duplicate
  series) used by tests against every renderer in the repo.
- :func:`render_top` turns a ``pool.stats(deep=True)`` snapshot into
  the ``python -m repro top`` text dashboard.

Like the rest of ``repro.obs`` this module is a dependency leaf: it
imports nothing outside the package, and everything it merges or
renders is plain builtin data, so it works on snapshots that crossed a
process boundary (or were loaded back from JSON) identically.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import Optional, Sequence

from repro.obs.metrics import (
    HELP_TEXTS,
    _escape_help,
    _fmt,
    _labels,
    _sanitize,
)

__all__ = [
    "FleetView",
    "SlidingWindow",
    "SloTracker",
    "lint_prometheus",
    "merge_snapshots",
    "render_top",
]

#: One metric series inside a snapshot: ``(kind, name, labels, data)``.
SnapshotEntry = tuple

_COUNTER, _GAUGE, _HISTOGRAM = "counter", "gauge", "histogram"


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _merge_hist(into: dict, data: dict) -> None:
    """Element-wise histogram merge; on a bucket-boundary mismatch the
    buckets are dropped (count/sum still merge) rather than lied about."""
    into["count"] += data["count"]
    into["sum"] += data["sum"]
    if into.get("buckets") is None or data.get("buckets") is None:
        into["buckets"] = None
        into["bucket_counts"] = None
        return
    if list(into["buckets"]) != list(data["buckets"]):
        into["buckets"] = None
        into["bucket_counts"] = None
        return
    into["bucket_counts"] = [
        a + b for a, b in zip(into["bucket_counts"], data["bucket_counts"])
    ]


def merge_snapshots(
    snapshots: Sequence[Sequence[SnapshotEntry]], gauges: str = "last"
) -> dict[tuple, tuple]:
    """Merge registry snapshots into ``{series_key: (kind, name, labels,
    data)}``.

    Counters and histogram counts are *additive* — correct both across
    the incarnations of one worker (each starts its registry at zero)
    and across distinct workers. Gauges are not additive in general:
    ``gauges="last"`` keeps the most recent observation (folding one
    worker's incarnations), ``gauges="sum"`` adds them (aggregating a
    point-in-time gauge like queue depth across workers).
    """
    if gauges not in ("last", "sum"):
        raise ValueError("gauges must be 'last' or 'sum'")
    merged: dict[tuple, tuple] = {}
    for snapshot in snapshots:
        for kind, name, labels, data in snapshot:
            key = _series_key(name, labels)
            have = merged.get(key)
            if have is None:
                if kind == _HISTOGRAM:
                    data = {
                        "buckets": list(data["buckets"])
                        if data.get("buckets") is not None
                        else None,
                        "bucket_counts": list(data["bucket_counts"])
                        if data.get("bucket_counts") is not None
                        else None,
                        "count": data["count"],
                        "sum": data["sum"],
                    }
                merged[key] = (kind, name, dict(labels), data)
                continue
            _, _, _, have_data = have
            if kind == _HISTOGRAM:
                _merge_hist(have_data, data)
            elif kind == _COUNTER:
                merged[key] = (kind, name, dict(labels), have_data + data)
            else:  # gauge
                merged[key] = (
                    kind,
                    name,
                    dict(labels),
                    data if gauges == "last" else have_data + data,
                )
    return merged


def _entries_as_dict(entries: dict[tuple, tuple]) -> dict:
    """Shape merged entries like :meth:`MetricsRegistry.as_dict`."""
    out: dict[str, dict] = {}
    for kind, name, labels, data in entries.values():
        series = out.setdefault(name, {})
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if kind == _HISTOGRAM:
            series[label_str] = {
                "count": data["count"],
                "sum": data["sum"],
                "mean": data["sum"] / data["count"] if data["count"] else 0.0,
                "buckets": {
                    str(edge): count
                    for edge, count in zip(
                        data["buckets"] or (), (data["bucket_counts"] or ())[:-1]
                    )
                },
                "overflow": (data["bucket_counts"] or [0])[-1],
            }
        else:
            series[label_str] = data
    return out


class FleetView:
    """Merged registry snapshots from every worker incarnation.

    The parent feeds it from the pool's receiver threads:

    - :meth:`update` replaces the *live* snapshot of ``(worker,
      generation)`` — snapshots are cumulative, and because workers
      build them under their send lock, pipe order equals build order,
      so replacement is monotone;
    - :meth:`retire` folds a dead incarnation's last snapshot into the
      worker's retained base exactly once (generation-checked, so a
      racing update from the *next* incarnation is never folded — that
      is what prevents double-counting across restarts).

    Readers get per-worker and aggregate merges, a JSON-shaped
    :meth:`as_dict`, and a Prometheus rendering in which every
    harvested series gains a ``worker`` label plus a
    ``pool_worker_shards{worker=...,shard=...} 1`` ownership map so
    series can be joined per shard.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: worker -> (generation, latest cumulative snapshot)
        self._live: dict[int, tuple[int, list]] = {}
        #: worker -> merged entries of every dead incarnation
        self._retired: dict[int, dict[tuple, tuple]] = {}
        self._shards: dict[int, tuple[int, ...]] = {}

    def set_shards(self, worker: int, shard_ids: Sequence[int]) -> None:
        with self._lock:
            self._shards[worker] = tuple(shard_ids)

    def update(self, worker: int, generation: int, snapshot: list) -> None:
        """Adopt a fresher cumulative snapshot for one incarnation.

        A snapshot from an older generation than the one currently
        live is stale (its incarnation was already retired) and is
        dropped — folding it again would double-count.
        """
        with self._lock:
            have = self._live.get(worker)
            if have is not None and have[0] > generation:
                return
            self._live[worker] = (generation, snapshot)

    def retire(self, worker: int, generation: int) -> None:
        """Fold the dead incarnation's last snapshot into the base."""
        with self._lock:
            have = self._live.pop(worker, None)
            if have is None:
                return
            if have[0] != generation:  # the next incarnation's data
                self._live[worker] = have
                return
            base = self._retired.get(worker)
            snapshots = ([] if base is None else [list(base.values())]) + [have[1]]
            self._retired[worker] = merge_snapshots(snapshots, gauges="last")

    # -- reading -------------------------------------------------------------

    def _worker_entries(self, worker: int) -> dict[tuple, tuple]:
        parts = []
        base = self._retired.get(worker)
        if base:
            parts.append(list(base.values()))
        live = self._live.get(worker)
        if live:
            parts.append(live[1])
        return merge_snapshots(parts, gauges="last")

    def workers(self) -> list[int]:
        with self._lock:
            return sorted(set(self._live) | set(self._retired))

    def worker_view(self, worker: int) -> dict:
        """One worker's merged metrics, shaped like ``as_dict()``."""
        with self._lock:
            return _entries_as_dict(self._worker_entries(worker))

    def aggregate_entries(self) -> dict[tuple, tuple]:
        """Cross-worker merge: counters/histograms add, gauges add too
        (a fleet gauge like queue depth is a sum of per-worker ones)."""
        with self._lock:
            per_worker = [
                list(self._worker_entries(worker).values())
                for worker in sorted(set(self._live) | set(self._retired))
            ]
        return merge_snapshots(per_worker, gauges="sum")

    def counter_total(self, name: str) -> float:
        """Sum of one counter family over all workers and label sets —
        the conservation checks' one-liner."""
        total = 0.0
        for kind, entry_name, _labels_, data in self.aggregate_entries().values():
            if entry_name == name and kind == _COUNTER:
                total += data
        return total

    def as_dict(self) -> dict:
        """JSON-shaped: per-worker views plus the aggregate."""
        with self._lock:
            workers = sorted(set(self._live) | set(self._retired))
            views = {
                str(worker): _entries_as_dict(self._worker_entries(worker))
                for worker in workers
            }
            shards = {str(w): list(s) for w, s in sorted(self._shards.items())}
        return {
            "workers": views,
            "aggregate": _entries_as_dict(self.aggregate_entries()),
            "shards": shards,
        }

    def render_prometheus(self) -> str:
        """Every harvested series, ``worker``-labelled, plus the
        ``pool_worker_shards`` ownership map — one conformant block.

        Families are grouped so each gets exactly one HELP/TYPE pair
        even when several workers (or incarnations) report it.
        """
        with self._lock:
            per_worker = {
                worker: self._worker_entries(worker)
                for worker in sorted(set(self._live) | set(self._retired))
            }
            shards = dict(self._shards)
        families: dict[str, tuple[str, list[str]]] = {}
        for worker, entries in per_worker.items():
            for kind, name, labels, data in entries.values():
                sname = _sanitize(name)
                kind_, lines = families.setdefault(sname, (kind, []))
                labelled = dict(labels)
                labelled["worker"] = str(worker)
                if kind == _HISTOGRAM:
                    if data.get("buckets") is not None:
                        cumulative = 0
                        for edge, count in zip(
                            data["buckets"], data["bucket_counts"]
                        ):
                            cumulative += count
                            lines.append(
                                f"{sname}_bucket"
                                f"{_labels(labelled, le=_fmt(edge))} {cumulative}"
                            )
                        cumulative += data["bucket_counts"][-1]
                    else:
                        cumulative = data["count"]
                    lines.append(
                        f"{sname}_bucket{_labels(labelled, le='+Inf')} {cumulative}"
                    )
                    lines.append(
                        f"{sname}_sum{_labels(labelled)} {_fmt(data['sum'])}"
                    )
                    lines.append(
                        f"{sname}_count{_labels(labelled)} {data['count']}"
                    )
                else:
                    lines.append(f"{sname}{_labels(labelled)} {_fmt(data)}")
        if shards:
            kind_, lines = families.setdefault("pool_worker_shards", ("gauge", []))
            for worker, shard_ids in sorted(shards.items()):
                for shard in shard_ids:
                    lines.append(
                        "pool_worker_shards"
                        f"{_labels({}, worker=str(worker), shard=str(shard))} 1"
                    )
        out: list[str] = []
        for sname in sorted(families):
            kind, lines = families[sname]
            help_text = HELP_TEXTS.get(sname, f"repro {kind} {sname} (fleet)")
            out.append(f"# HELP {sname} {_escape_help(help_text)}")
            out.append(f"# TYPE {sname} {kind}")
            out.extend(lines)
        return "\n".join(out) + ("\n" if out else "")


class SlidingWindow:
    """A bounded window of recent observations with exact percentiles.

    Histograms answer "distribution since boot"; SLOs ask "distribution
    *lately*". A deque of the last *size* samples, percentiles computed
    by nearest-rank over a sorted copy — exact, and cheap at dashboard
    cadence for the default 512 samples.
    """

    def __init__(self, size: int = 512) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self._samples: deque[float] = deque(maxlen=size)
        self._lock = threading.Lock()
        self.total = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self.total += 1

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (0 <= p <= 100) over the window."""
        if not 0 <= p <= 100:
            raise ValueError("p must be in [0, 100]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict:
        with self._lock:
            ordered = sorted(self._samples)
            total = self.total
        if not ordered:
            return {"count": 0, "total": total, "p50": 0.0, "p95": 0.0, "p99": 0.0}

        def at(p: float) -> float:
            rank = max(0, min(len(ordered) - 1, round(p / 100 * len(ordered)) - 1))
            return ordered[rank]

        return {
            "count": len(ordered),
            "total": total,
            "p50": at(50),
            "p95": at(95),
            "p99": at(99),
        }


class SloTracker:
    """Named sliding windows — one per latency stage.

    The pool records three per request: ``pool.queue_wait`` (submission
    to pipe write), ``pool.service`` (pipe write to resolution — IPC +
    worker work), and ``pool.e2e`` (submission to resolution, every
    outcome included).
    """

    def __init__(self, size: int = 512) -> None:
        self._size = size
        self._windows: dict[str, SlidingWindow] = {}
        self._lock = threading.Lock()

    def observe(self, stage: str, seconds: float) -> None:
        window = self._windows.get(stage)
        if window is None:
            with self._lock:
                window = self._windows.setdefault(
                    stage, SlidingWindow(self._size)
                )
        window.observe(seconds)

    def window(self, stage: str) -> Optional[SlidingWindow]:
        return self._windows.get(stage)

    def summary(self) -> dict[str, dict]:
        with self._lock:
            windows = dict(self._windows)
        return {stage: window.summary() for stage, window in sorted(windows.items())}


# -- Prometheus exposition lint ---------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"'
)


def _parse_labels(raw: str, line_no: int, problems: list[str]) -> Optional[dict]:
    """Parse a ``k="v",k2="v2"`` label block, validating escaping."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL.match(raw, pos)
        if match is None:
            problems.append(
                f"line {line_no}: malformed label block at offset {pos}: {raw!r}"
            )
            return None
        labels[match.group("key")] = match.group("value")
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                problems.append(
                    f"line {line_no}: expected ',' between labels in {raw!r}"
                )
                return None
            pos += 1
    return labels


def lint_prometheus(text: str) -> list[str]:
    """Conformance-check a text exposition (format 0.0.4) body.

    Returns one message per violation (empty list = clean):

    - every sample's family must be announced by exactly one ``# HELP``
      and one ``# TYPE`` line *before* its first sample;
    - sample lines must parse, label values must be correctly escaped
      (``\\\\``, ``\\"``, ``\\n`` only), values must be numbers;
    - no two samples may share a name and label set;
    - histogram families must expose ``_bucket`` series with strictly
      increasing ``le`` edges ending in ``+Inf``, non-decreasing
      cumulative counts, and ``_sum``/``_count`` samples whose count
      equals the ``+Inf`` bucket, per label set.
    """
    problems: list[str] = []
    lines = [line for line in text.split("\n") if line != ""]
    helps: set[str] = set()
    types: dict[str, str] = {}
    seen_series: set[tuple] = set()
    # histogram family -> labelset -> {"buckets": [(le, value)...],
    #                                  "sum": x | None, "count": n | None}
    hist: dict[str, dict[tuple, dict]] = {}

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base
        return name

    for line_no, line in enumerate(lines, start=1):
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                problems.append(f"line {line_no}: malformed HELP line: {line!r}")
                continue
            name = parts[2]
            if name in helps:
                problems.append(f"line {line_no}: duplicate HELP for {name}")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                problems.append(f"line {line_no}: malformed TYPE line: {line!r}")
                continue
            name = parts[2]
            if name in types:
                problems.append(f"line {line_no}: duplicate TYPE for {name}")
            types[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comments are legal
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no, problems)
        if labels is None:
            continue
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            problems.append(
                f"line {line_no}: non-numeric value {match.group('value')!r}"
            )
            continue
        family = family_of(name)
        if family not in types:
            problems.append(
                f"line {line_no}: sample {name} has no preceding TYPE "
                f"for family {family}"
            )
        if family not in helps:
            problems.append(
                f"line {line_no}: sample {name} has no preceding HELP "
                f"for family {family}"
            )
        series = (name, tuple(sorted(labels.items())))
        if series in seen_series:
            problems.append(
                f"line {line_no}: duplicate series {name}"
                f"{dict(sorted(labels.items()))}"
            )
        seen_series.add(series)
        if types.get(family) == "histogram" and family != name:
            bare = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            state = hist.setdefault(family, {}).setdefault(
                bare, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {line_no}: {name} sample without an le label"
                    )
                else:
                    le = labels["le"]
                    state["buckets"].append(
                        (float("inf") if le == "+Inf" else float(le), value)
                    )
            elif name.endswith("_sum"):
                state["sum"] = value
            else:
                state["count"] = value

    for family, by_labels in hist.items():
        for bare, state in by_labels.items():
            buckets = state["buckets"]
            if not buckets or buckets[-1][0] != float("inf"):
                problems.append(
                    f"{family}{dict(bare)}: bucket series must end with le=+Inf"
                )
                continue
            edges = [edge for edge, _ in buckets]
            if edges != sorted(edges) or len(set(edges)) != len(edges):
                problems.append(
                    f"{family}{dict(bare)}: le edges not strictly increasing: "
                    f"{edges}"
                )
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                problems.append(
                    f"{family}{dict(bare)}: cumulative bucket counts decrease: "
                    f"{counts}"
                )
            if state["count"] is None or state["sum"] is None:
                problems.append(
                    f"{family}{dict(bare)}: histogram missing _sum or _count"
                )
            elif state["count"] != counts[-1]:
                problems.append(
                    f"{family}{dict(bare)}: _count {state['count']} != "
                    f"+Inf bucket {counts[-1]}"
                )
    return problems


# -- the `repro top` dashboard ----------------------------------------------


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:8.2f}"


def render_top(stats: dict) -> str:
    """A one-screen text dashboard over ``pool.stats(deep=True)``.

    Pure data-in/text-out (also accepts the same snapshot loaded back
    from JSON), so ``python -m repro top --stats dump.json`` renders a
    snapshot taken elsewhere.
    """
    lines: list[str] = []
    pool = stats.get("pool", {})
    lines.append(
        f"pool: {pool.get('workers_alive', '?')}/{pool.get('workers', '?')} "
        f"workers up, {pool.get('shards', '?')} shards | restarts "
        f"{pool.get('restarts_total', 0):g} shed {pool.get('shed_total', 0):g} "
        f"degraded {pool.get('degraded_total', 0):g}"
    )
    breakers = pool.get("breakers", {})
    unhealthy = {s: b for s, b in breakers.items() if b != "closed"}
    if unhealthy:
        lines.append(f"breakers open/half-open: {unhealthy}")
    outcomes = stats.get("outcomes", {})
    if outcomes:
        total = sum(outcomes.values())
        parts = ", ".join(
            f"{key}={value:g}" for key, value in sorted(outcomes.items())
        )
        lines.append(f"outcomes ({total:g} total): {parts}")
    lines.append("")
    lines.append(
        f"{'WORKER':>6} {'STATE':>8} {'PID':>8} {'SHARDS':>10} "
        f"{'QUEUED':>7} {'INFLT':>6} {'RESTARTS':>9}"
    )
    for worker in stats.get("workers", []):
        shards = ",".join(str(s) for s in worker.get("shards", []))
        lines.append(
            f"{worker.get('worker', '?'):>6} {worker.get('state', '?'):>8} "
            f"{str(worker.get('pid', '-')):>8} {shards:>10} "
            f"{worker.get('queued', 0):>7} {worker.get('in_flight', 0):>6} "
            f"{worker.get('restarts', 0):>9}"
        )
    slo = stats.get("slo", {})
    if slo:
        lines.append("")
        lines.append(
            f"{'SLO STAGE':<18} {'WINDOW':>7} {'p50 ms':>9} {'p95 ms':>9} "
            f"{'p99 ms':>9}"
        )
        for stage, summary in sorted(slo.items()):
            lines.append(
                f"{stage:<18} {summary.get('count', 0):>7} "
                f"{_ms(summary.get('p50', 0.0)):>9} "
                f"{_ms(summary.get('p95', 0.0)):>9} "
                f"{_ms(summary.get('p99', 0.0)):>9}"
            )
    fleet = stats.get("fleet", {})
    aggregate = fleet.get("aggregate", {})
    requests = aggregate.get("requests_total", {})
    if requests:
        lines.append("")
        lines.append("fleet requests_total (all workers):")
        for label_str, value in sorted(requests.items()):
            lines.append(f"  {label_str or '(no labels)':<42} {value:>8g}")
    hits = aggregate.get("view_cache_hits", {})
    misses = aggregate.get("view_cache_misses", {})
    if hits or misses:
        hit_total = sum(hits.values())
        miss_total = sum(misses.values())
        denominator = hit_total + miss_total
        rate = (hit_total / denominator * 100) if denominator else 0.0
        lines.append(
            f"fleet view cache: {hit_total:g} hits / {miss_total:g} misses "
            f"({rate:.1f}% hit rate)"
        )
    stage_hist = aggregate.get("stage_seconds", {})
    if stage_hist:
        lines.append("")
        lines.append(f"{'PIPELINE STAGE':<26} {'COUNT':>8} {'MEAN ms':>10}")
        for label_str, data in sorted(stage_hist.items()):
            stage = label_str.replace("stage=", "") or "?"
            lines.append(
                f"{stage:<26} {data.get('count', 0):>8} "
                f"{data.get('mean', 0.0) * 1000:>10.3f}"
            )
    workers_reporting = len(fleet.get("workers", {}))
    if workers_reporting:
        lines.append("")
        lines.append(f"{workers_reporting} worker(s) reporting metrics")
    return "\n".join(lines)
