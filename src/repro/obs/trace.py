"""Structured trace spans for the request pipeline.

A :class:`Span` is one timed region of one request — "parse this
document", "evaluate this authorization's path", "look up the view
cache". Spans nest: the pipeline stages instrumented throughout the
library open child spans inside whatever span is currently running, so
one served request produces a small tree rooted at ``request.serve``.

Tracing is **off by default** and costs almost nothing while off: every
instrumented stage calls :func:`span`, which, with no active tracer, is
a single context-variable read returning a shared no-op context
manager. No objects are allocated, no clocks are read. Activating a
:class:`Tracer` (directly, via :func:`tracing`, or implicitly per
request by :class:`~repro.server.service.SecureXMLServer`) turns the
same hooks into real measurements against ``time.perf_counter()`` (a
monotonic clock — wall-clock adjustments never distort a duration).

Usage::

    from repro.obs import tracing

    with tracing() as tracer:
        server.serve(request)
    for span in tracer.spans:
        print(span.name, span.duration)
    print(tracer.stage_totals())    # {"parse.xml": 0.004, "label": ...}

The tracer is held in a :class:`contextvars.ContextVar`, so concurrent
threads (or asyncio tasks) each see their own active tracer and spans
from parallel requests never interleave.

Stage names are a stable, documented vocabulary — see
``docs/OBSERVABILITY.md`` for the full list and semantics.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "current_tracer",
    "reset_tracing",
    "span",
    "stage_totals",
    "tracing",
]

#: The active tracer of the current thread/task (``None`` = disabled).
_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_tracer", default=None
)


class Span:
    """One completed timed region.

    Attributes
    ----------
    name:
        The stage name (dot-separated vocabulary, e.g. ``parse.xml``).
    started:
        Seconds since the owning tracer was created (monotonic).
    duration:
        Seconds spent inside the region, children included.
    depth:
        Nesting depth at open time (0 = top level).
    parent:
        ``None`` for a top-level span. Spans are appended on *close*
        (children before their parents), so a nested span carries the
        sentinel ``-1`` here; :meth:`Tracer.span_tree` returns copies
        in open order with real parent indices resolved.
    tags:
        Optional string-keyed annotations passed to :func:`span`.
    """

    __slots__ = ("name", "started", "duration", "depth", "parent", "tags")

    def __init__(
        self,
        name: str,
        started: float,
        duration: float,
        depth: int,
        parent: Optional[int],
        tags: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.started = started
        self.duration = duration
        self.depth = depth
        self.parent = parent
        self.tags = tags

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "started": self.started,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name!r} {self.duration * 1000:.3f}ms "
            f"depth={self.depth}>"
        )


#: Per-process trace-id sequence; combined with the pid so ids minted
#: by a parent and its forked children never collide.
_TRACE_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"{os.getpid():08x}-{next(_TRACE_IDS):08x}"


@dataclass(frozen=True)
class TraceContext:
    """The picklable propagation envelope of one distributed trace.

    Carried across process boundaries (the pool ships one with every
    request when the submitting thread has an active tracer) so the
    remote side can decide whether to record (``sampled``) and the
    origin can stitch the shipped spans back under the right parent.
    ``parent_span`` is the *name* of the span open at capture time
    (``""`` at top level) — a human-readable anchor, not an index,
    because the parent span has not closed (and so has no index) yet.
    """

    trace_id: str
    parent_span: str = ""
    sampled: bool = True

    @classmethod
    def capture(cls, tracer: Optional["Tracer"] = None) -> Optional["TraceContext"]:
        """A context for the active (or given) tracer; None when tracing
        is off — the disabled path stays one ContextVar read."""
        tracer = tracer if tracer is not None else _ACTIVE.get()
        if tracer is None:
            return None
        parent = tracer._stack[-1].name if tracer._stack else ""
        return cls(trace_id=_new_trace_id(), parent_span=parent, sampled=True)


class _NullSpan:
    """The shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open region on one tracer's stack."""

    __slots__ = ("_tracer", "name", "tags", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, tags: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        self._depth = len(self._tracer._stack)
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info) -> bool:
        now = time.perf_counter()
        tracer = self._tracer
        # Tolerate out-of-order exits (generators, exceptions): pop up
        # to and including this span.
        stack = tracer._stack
        while stack:
            live = stack.pop()
            if live is self:
                break
        tracer._close(self, self._start, now - self._start, self._depth)
        return False


class Tracer:
    """Collects the spans of one activation.

    ``spans`` lists completed spans in close order (children precede
    their parents). The tracer itself is cheap to create; one per
    request is the intended granularity.
    """

    __slots__ = ("spans", "_stack", "_created")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[_LiveSpan] = []
        self._created = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **tags) -> _LiveSpan:
        """Open a child span of whatever is currently on the stack."""
        return _LiveSpan(self, name, tags or None)

    def _close(
        self, live: _LiveSpan, start: float, duration: float, depth: int
    ) -> None:
        parent_index: Optional[int] = None
        if depth > 0:
            # Parent is still open; it will close *after* this span, so
            # its final index is at least len(spans)+1. Record a
            # depth-based link instead: the nearest later span with a
            # smaller depth. Resolved lazily by span_tree().
            parent_index = -1
        self.spans.append(
            Span(
                live.name,
                start - self._created,
                duration,
                depth,
                parent_index,
                live.tags,
            )
        )

    def graft(
        self, spans: Sequence[Span], at: float, depth: int = 0
    ) -> int:
        """Adopt *spans* recorded by a foreign tracer (another process).

        The foreign spans keep their durations and relative layout but
        are re-based so the earliest one starts at *at* — seconds in
        **this** tracer's timebase — and every depth is shifted by
        *depth*, placing the whole subtree under whatever local span
        covers ``[at, ...)`` at ``depth - 1``. Cross-process clocks are
        never compared directly: the caller chooses *at* from timings
        it measured itself (e.g. centered inside its ``pool.ipc`` span,
        attributing the pipe cost symmetrically). Returns the number of
        spans adopted.
        """
        if not spans:
            return 0
        offset = at - min(span_.started for span_ in spans)
        for span_ in spans:
            self.spans.append(
                Span(
                    span_.name,
                    span_.started + offset,
                    span_.duration,
                    span_.depth + depth,
                    -1 if (span_.depth + depth) > 0 else None,
                    dict(span_.tags) if span_.tags else None,
                )
            )
        return len(spans)

    # -- reading ------------------------------------------------------------

    def stage_totals(self, since: int = 0) -> dict[str, float]:
        """Total seconds per stage name over ``spans[since:]``.

        Nested stages are reported under their own names; a parent
        span's duration *includes* its children, so totals are not
        additive across nesting levels (see docs/OBSERVABILITY.md).
        """
        return stage_totals(self.spans[since:])

    def stage_samples(self, since: int = 0) -> dict[str, list[float]]:
        """Per-stage lists of individual span durations (seconds)."""
        out: dict[str, list[float]] = {}
        for span_ in self.spans[since:]:
            out.setdefault(span_.name, []).append(span_.duration)
        return out

    def span_tree(self) -> list[Span]:
        """Spans in *open* order with ``parent`` indices resolved."""
        ordered = sorted(
            range(len(self.spans)), key=lambda i: self.spans[i].started
        )
        resolved: list[Span] = []
        open_by_depth: dict[int, int] = {}
        for new_index, original in enumerate(ordered):
            span_ = self.spans[original]
            parent = (
                open_by_depth.get(span_.depth - 1) if span_.depth > 0 else None
            )
            resolved.append(
                Span(
                    span_.name,
                    span_.started,
                    span_.duration,
                    span_.depth,
                    parent,
                    span_.tags,
                )
            )
            open_by_depth[span_.depth] = new_index
        return resolved

    def export_chrome(self, path: Optional[str] = None) -> str:
        """Export the span tree as Chrome trace-event JSON.

        The returned text (also written to *path*, when given) loads
        directly into ``chrome://tracing`` / Perfetto / ``about:tracing``.
        Every span becomes one complete event (``"ph": "X"``) with
        microsecond ``ts``/``dur``; nesting is conveyed by timestamp
        containment on the single thread, exactly as the viewers
        expect. The event category is the first dotted component of the
        stage name (``request``, ``decision``, ``parse``, ...), so
        whole pipeline layers can be toggled at once; span tags land in
        ``args``.
        """
        events = []
        for span_ in self.span_tree():
            event = {
                "name": span_.name,
                "cat": span_.name.split(".", 1)[0],
                "ph": "X",
                "ts": span_.started * 1_000_000,
                "dur": span_.duration * 1_000_000,
                "pid": 1,
                "tid": 1,
            }
            if span_.tags:
                event["args"] = {k: str(v) for k, v in span_.tags.items()}
            events.append(event)
        text = json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=2
        )
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def render(self) -> str:
        """An indented text rendering of the span tree (for humans)."""
        lines = []
        for span_ in self.span_tree():
            lines.append(
                f"{'  ' * span_.depth}{span_.name:<24} "
                f"{span_.duration * 1000:8.3f} ms"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)


def stage_totals(spans: list[Span]) -> dict[str, float]:
    """Sum span durations by stage name (module-level helper)."""
    out: dict[str, float] = {}
    for span_ in spans:
        out[span_.name] = out.get(span_.name, 0.0) + span_.duration
    return out


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this thread/task, or ``None``."""
    return _ACTIVE.get()


def span(name: str, **tags):
    """Open a span on the active tracer — the pipeline's hook.

    With no tracer active this returns a shared no-op context manager:
    one ``ContextVar.get`` and an ``is None`` test, no allocation.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **tags)


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate *tracer* (default: a fresh one) for the with-block."""
    if tracer is None:
        tracer = Tracer()
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def activate(tracer: Tracer):
    """Low-level: set the active tracer; returns the reset token."""
    return _ACTIVE.set(tracer)


def deactivate(token) -> None:
    """Low-level: undo :func:`activate`."""
    _ACTIVE.reset(token)


def reset_tracing() -> None:
    """Forget any active tracer, unconditionally.

    Fork safety: a ``fork()`` clones the parent's ContextVar state, so
    a worker forked while the parent had a tracer active would silently
    record its spans into an object the parent also appends to — two
    processes, one (logically shared, physically copied) tracer. Worker
    boot calls this so the child always starts untraced; per-request
    tracers are then activated explicitly from the shipped
    :class:`TraceContext`.
    """
    _ACTIVE.set(None)
