"""repro.obs — observability for the enforcement pipeline.

Two independent, zero-dependency facilities:

- :mod:`repro.obs.trace` — structured, nestable trace spans recording
  where a request spends its time, stage by stage (parse, bind, label,
  prune, loosen, serialize, cache). Off by default, near-free while
  off.
- :mod:`repro.obs.metrics` — a counter/gauge/histogram registry wired
  to cache hits, guard trips, fault firings, retries and request
  outcomes, exportable as a plain dict or Prometheus text.
- :mod:`repro.obs.fleet` — the cross-process layer: mergeable registry
  snapshots (:class:`FleetView`), sliding-window SLO quantiles
  (:class:`SloTracker`), the Prometheus exposition lint and the
  ``repro top`` dashboard renderer.

This package is a dependency leaf: it imports nothing from the rest of
``repro``, so every layer (parser, evaluator, labeler, server) can hook
into it without cycles. See ``docs/OBSERVABILITY.md`` for the span and
metric vocabularies and worked examples.
"""

from repro.obs.fleet import (
    FleetView,
    SlidingWindow,
    SloTracker,
    lint_prometheus,
    merge_snapshots,
    render_top,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    current_tracer,
    reset_tracing,
    span,
    stage_totals,
    tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FleetView",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "SlidingWindow",
    "SloTracker",
    "Span",
    "TraceContext",
    "Tracer",
    "current_tracer",
    "lint_prometheus",
    "merge_snapshots",
    "render_top",
    "reset_tracing",
    "span",
    "stage_totals",
    "tracing",
]
