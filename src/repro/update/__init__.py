"""repro.update — authorization-checked writes with incremental relabeling.

The subsystem in three layers:

- :mod:`repro.update.ops` — the operation vocabulary (XUpdate-like
  dataclasses), :class:`UpdateRequest`/:class:`UpdateOutcome`, and
  :class:`UpdateDenied`;
- :mod:`repro.update.relabel` — clone-with-node-map snapshots,
  :class:`EditDelta` descriptions of applied edits, and
  :class:`LabelState` — the reusable labeler state that repairs only
  the edited subtree after each operation;
- :mod:`repro.update.engine` — :class:`UpdateEngine`, which selects
  targets, enforces write labels (closed policy: only ``+`` admits a
  mutation), applies the edit, emits deltas and validates the result.

The served entry point is :meth:`repro.server.service.SecureXMLServer.update`,
which adds locking, per-document versions, auditing, metrics and
subtree-granular view-cache invalidation on top.
"""

from repro.update.engine import UpdateEngine, UpdateResult
from repro.update.ops import (
    DeleteNode,
    DeleteSubtree,
    InsertChild,
    InsertSubtree,
    RemoveAttribute,
    ReplaceSubtree,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateOperation,
    UpdateOutcome,
    UpdateRequest,
)
from repro.update.relabel import (
    EditDelta,
    IncrementalUnsupported,
    LabelState,
    clone_with_map,
)

__all__ = [
    "UpdateDenied",
    "SetAttribute",
    "RemoveAttribute",
    "SetText",
    "InsertChild",
    "DeleteNode",
    "ReplaceSubtree",
    "InsertSubtree",
    "DeleteSubtree",
    "UpdateOperation",
    "UpdateRequest",
    "UpdateOutcome",
    "UpdateEngine",
    "UpdateResult",
    "EditDelta",
    "IncrementalUnsupported",
    "LabelState",
    "clone_with_map",
]
