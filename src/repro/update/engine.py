"""Authorization-checked application of update batches.

The enforcement rules (unchanged from the original write path):

- an operation may touch a node only if the node's **write label** is
  ``+`` — writes are always closed-policy: unlabeled means not
  writable, whatever the document's read policy;
- deleting or replacing a subtree requires every node in it to be
  writable — a requester must never destroy content that is hidden
  from them;
- inserting under an element requires the element itself to be
  writable, and a fresh attribute inherits its element's writability;
- the root element may not be deleted or replaced;
- operations apply to a clone of the stored document; if the document
  has a DTD, the result must still validate; only then does the caller
  commit (all-or-nothing semantics — readers of the old tree are never
  disturbed).

What is new is *how* labels are maintained: the engine works on a
:func:`~repro.update.relabel.clone_with_map` clone, keeps a
:class:`~repro.update.relabel.LabelState` that labels targets lazily,
and repairs exactly the edited subtree after each operation
(:meth:`LabelState.apply_delta`) — so mid-batch operations see labels
that reflect earlier edits, and the state can be reused across update
requests by rebasing instead of re-evaluating every authorization
path. When the policy cannot be rebound incrementally the engine falls
back to a full rebind per edit (correct, slower, reported via
``UpdateResult.incremental``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.authz.authorization import Authorization, Sign
from repro.authz.conflict import ConflictPolicy, EPSILON
from repro.core.labeling import SLOTS, ProvenanceRecorder
from repro.dtd.validator import validate
from repro.errors import ReproError, ValidationError
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import SubjectHierarchy
from repro.update.ops import (
    DeleteNode,
    InsertChild,
    RemoveAttribute,
    ReplaceSubtree,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateOperation,
    UpdateOutcome,
    UpdateRequest,
)
from repro.update.relabel import (
    EditDelta,
    IncrementalUnsupported,
    LabelState,
    clone_with_map,
)
from repro.xml.nodes import Document, Element, Node, Text
from repro.xml.parser import parse_fragment
from repro.xml.traversal import node_path, preorder
from repro.xpath.compile import RelativeMode, compile_xpath

__all__ = ["UpdateEngine", "UpdateResult"]


@dataclass
class UpdateResult:
    """Everything one applied batch produced, pre-commit.

    ``document`` is the edited clone (the caller commits it);
    ``node_map`` maps old-tree nodes to their clones (for carrying
    oracle/cache state over); ``deltas`` describe each mutation in
    relabeler terms; ``state`` is the post-edit label state, reusable
    for the next batch against the committed tree.
    """

    document: Document
    outcome: UpdateOutcome
    deltas: tuple[EditDelta, ...]
    state: LabelState
    node_map: dict[Node, Node]
    incremental: bool


class UpdateEngine:
    """Checks and applies update batches against write labels."""

    def __init__(
        self,
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        relative_mode: RelativeMode = "descendant",
        validate_result: bool = True,
    ) -> None:
        self._hierarchy = hierarchy
        self._policy = policy
        self._relative_mode = relative_mode
        self._validate_result = validate_result

    def apply(
        self,
        document: Document,
        request: UpdateRequest,
        instance_auths,
        schema_auths,
    ) -> tuple[Document, UpdateOutcome]:
        """Enforce and apply *request* against *document*.

        Returns ``(new_document, outcome)``; *document* itself is never
        mutated. Raises :class:`UpdateDenied` when any operation touches
        a non-writable node and :class:`ValidationError` when the result
        would no longer conform to the document's DTD.
        """
        result = self.apply_full(document, request, instance_auths, schema_auths)
        return result.document, result.outcome

    def apply_full(
        self,
        document: Document,
        request: UpdateRequest,
        instance_auths,
        schema_auths,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
        state: Optional[LabelState] = None,
        collect_admitted: bool = False,
    ) -> UpdateResult:
        """:meth:`apply` with the full relabeling machinery exposed.

        *state*, when given, must be a :class:`LabelState` bound to
        *document* (e.g. carried over from the previous committed
        batch); it is rebased onto the working clone instead of
        re-evaluating every authorization path. *collect_admitted*
        records, per authorized target, exactly which authorizations
        admitted the write (``outcome.admitted``).
        """
        with span("update.plan"):
            working, node_map = clone_with_map(document)
            if state is not None:
                state.rebase(working, node_map)
            else:
                state = self._build_state(
                    working, instance_auths, schema_auths, limits, deadline
                )
        reverse = {new: old for old, new in node_map.items()}
        max_steps = limits.max_xpath_steps if limits is not None else None
        admitted: Optional[list] = [] if collect_admitted else None
        deltas: list[EditDelta] = []
        incremental = state.stream_safe
        relabeled = 0
        touched = 0
        with span("update.apply"):
            for operation in request.operations:
                count, op_deltas = self._apply_one(
                    working, operation, state, reverse, admitted,
                    max_steps, deadline,
                )
                touched += count
                for delta in op_deltas:
                    deltas.append(delta)
                    try:
                        with span("update.relabel"):
                            relabeled += state.apply_delta(delta)
                    except IncrementalUnsupported:
                        # Full fallback: rebind everything against the
                        # edited tree. Correct for any policy, just not
                        # incremental. The rebind must not replay node-sets
                        # cached against this (now mutated) tree.
                        incremental = False
                        self._invalidate_compiled(instance_auths, schema_auths)
                        state = self._build_state(
                            working, instance_auths, schema_auths,
                            limits, deadline,
                        )
                if deadline is not None:
                    deadline.check("update batch")

        if self._validate_result and working.dtd is not None:
            with span("update.validate"):
                report = validate(working, working.dtd)
                if not report.valid:
                    raise ValidationError(report.violations)

        # The batch mutated `working` in place, but compiled XPaths cache
        # their most recent (context root, node-set) pair — and are shared
        # process-wide by source string. Drop those node-sets so any later
        # bind against the committed tree (full relabel, serving, the next
        # batch) re-evaluates instead of replaying pre-edit selections.
        self._invalidate_compiled(instance_auths, schema_auths)

        outcome = UpdateOutcome(
            applied=True,
            touched_nodes=touched,
            operations=len(request.operations),
            incremental=incremental,
            relabeled_nodes=relabeled,
            admitted=tuple(admitted) if admitted is not None else (),
        )
        return UpdateResult(
            document=working,
            outcome=outcome,
            deltas=tuple(deltas),
            state=state,
            node_map=node_map,
            incremental=incremental,
        )

    def _invalidate_compiled(self, instance_auths, schema_auths) -> None:
        """Drop cached node-sets of every authorization path.

        :class:`~repro.xpath.compile.CompiledXPath` memoizes its last
        (context root, result) pair per compiled path, and compiled paths
        are shared by source string. After an in-place edit the same
        document object no longer yields the same node-set, so the memo
        must go.
        """
        for authorization in (*instance_auths, *schema_auths):
            compiled = authorization.compiled_path(self._relative_mode)
            if compiled is not None:
                compiled.invalidate()

    def _build_state(
        self, working, instance_auths, schema_auths, limits, deadline
    ) -> LabelState:
        return LabelState.build(
            working,
            instance_auths,
            schema_auths,
            self._hierarchy,
            policy=self._policy,
            relative_mode=self._relative_mode,
            limits=limits,
            deadline=deadline,
        )

    # -- per-operation -----------------------------------------------------

    def _apply_one(
        self,
        working: Document,
        operation: UpdateOperation,
        state: LabelState,
        reverse: dict[Node, Node],
        admitted: Optional[list],
        max_steps: Optional[int],
        deadline: Optional[Deadline],
    ) -> tuple[int, list[EditDelta]]:
        targets = self._writable_targets(
            working, operation.target, state, admitted, max_steps, deadline
        )
        deltas: list[EditDelta] = []
        if isinstance(operation, SetAttribute):
            for element in targets:
                self._require_attribute_writable(element, operation.name, state)
                element.set_attribute(operation.name, operation.value)
                deltas.append(
                    EditDelta(
                        "set_attribute",
                        anchor=element,
                        dirty=element,
                        old_nodes=self._old_of(reverse, element),
                    )
                )
            return len(targets), deltas
        if isinstance(operation, RemoveAttribute):
            for element in targets:
                self._require_attribute_writable(element, operation.name, state)
                removed = element.attribute_node(operation.name)
                element.remove_attribute(operation.name)
                deltas.append(
                    EditDelta(
                        "remove_attribute",
                        anchor=element,
                        dirty=element,
                        removed=(removed,) if removed is not None else (),
                        old_nodes=self._old_of(reverse, element),
                    )
                )
            return len(targets), deltas
        if isinstance(operation, SetText):
            for element in targets:
                old_text = [
                    child for child in element.children if isinstance(child, Text)
                ]
                for child in old_text:
                    element.remove(child)
                element.insert(0, Text(operation.text))
                deltas.append(
                    EditDelta(
                        "set_text",
                        anchor=element,
                        dirty=element,
                        removed=tuple(old_text),
                        old_nodes=self._old_of(reverse, element),
                    )
                )
            return len(targets), deltas
        if isinstance(operation, InsertChild):
            for element in targets:
                fragment = parse_fragment(operation.fragment)
                if operation.position is None:
                    element.append(fragment)
                else:
                    element.insert(operation.position, fragment)
                deltas.append(
                    EditDelta("insert", anchor=element, dirty=fragment)
                )
            return len(targets), deltas
        if isinstance(operation, DeleteNode):
            for element in targets:
                self._require_subtree_writable(element, state)
                parent = element.parent
                if isinstance(parent, Document):
                    raise UpdateDenied("the root element may not be deleted")
                if isinstance(parent, Element):
                    parent.remove(element)
                    deltas.append(
                        EditDelta(
                            "delete",
                            anchor=parent,
                            removed=(element,),
                            old_nodes=self._old_of(reverse, element),
                        )
                    )
            return len(targets), deltas
        if isinstance(operation, ReplaceSubtree):
            for element in targets:
                self._require_subtree_writable(element, state)
                parent = element.parent
                if isinstance(parent, Document):
                    raise UpdateDenied("the root element may not be replaced")
                if not isinstance(parent, Element):
                    raise UpdateDenied(
                        f"cannot replace detached node {node_path(element)}"
                    )
                fragment = parse_fragment(operation.fragment)
                index = next(
                    i
                    for i, child in enumerate(parent.children)
                    if child is element
                )
                parent.remove(element)
                parent.insert(index, fragment)
                deltas.append(
                    EditDelta(
                        "replace",
                        anchor=parent,
                        dirty=fragment,
                        removed=(element,),
                        old_nodes=self._old_of(reverse, element),
                    )
                )
            return len(targets), deltas
        raise ReproError(f"unknown operation {type(operation).__name__}")

    @staticmethod
    def _old_of(reverse: dict[Node, Node], node: Node) -> tuple[Node, ...]:
        """The pre-update counterpart of *node*, when it existed before
        the batch (nodes created by an earlier operation have none)."""
        old = reverse.get(node)
        return (old,) if old is not None else ()

    # -- entitlement checks ---------------------------------------------------

    def _writable_targets(
        self,
        working: Document,
        target: str,
        state: LabelState,
        admitted: Optional[list],
        max_steps: Optional[int],
        deadline: Optional[Deadline],
    ) -> list[Element]:
        compiled = compile_xpath(target, self._relative_mode)
        # Earlier operations in the batch may have mutated `working`; a
        # cached node-set for the same root would be stale.
        compiled.invalidate()
        nodes = compiled.select(working, max_steps=max_steps, deadline=deadline)
        elements: list[Element] = []
        for node in nodes:
            if not isinstance(node, Element):
                raise UpdateDenied(
                    f"update target {target!r} selected a non-element node "
                    f"at {node_path(node)}"
                )
            self._require_writable(node, state)
            if admitted is not None:
                admitted.append(
                    (node_path(node), self._admitting_authorizations(state, node))
                )
            elements.append(node)
        return elements

    def _require_writable(self, node: Node, state: LabelState) -> None:
        # Writes are closed-policy regardless of the document's read
        # policy: only an explicit '+' write label admits a mutation.
        if state.label(node).final != "+":
            raise UpdateDenied(f"no write authorization for {node_path(node)}")

    def _require_attribute_writable(
        self, element: Element, name: str, state: LabelState
    ) -> None:
        attribute = element.attribute_node(name)
        if attribute is not None:
            self._require_writable(attribute, state)
        # A new attribute inherits the element's writability, already
        # checked by _writable_targets.

    def _require_subtree_writable(
        self, element: Element, state: LabelState
    ) -> None:
        for node in preorder(element):
            self._require_writable(node, state)

    @staticmethod
    def _admitting_authorizations(
        state: LabelState, node: Node
    ) -> tuple[str, ...]:
        """Exactly which '+' authorizations decided *node*'s write label.

        Re-derives the node's label with a provenance recorder on a
        scratch memo (the shared memo may hold unrecorded entries), then
        follows the final sign to its deciding slot's surviving
        authorizations.
        """
        recorder = ProvenanceRecorder()
        scratch: dict = {}
        with state.labeler.recording(recorder):
            label = state.labeler.label_lazily(node, scratch)
        origin = recorder.final_origin.get(node)
        if origin is None:
            for slot in SLOTS:
                if getattr(label, slot) != EPSILON:
                    origin = recorder.origin_of(node, slot)
                    break
        decision = recorder.decision_at(origin)
        if decision is None:
            return ()
        return tuple(
            authorization.unparse()
            for authorization in decision.winners
            if authorization.sign is Sign.PLUS
        )
