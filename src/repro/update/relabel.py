"""Incremental relabeling after an edit (the fast half of updates).

The labeling model is strictly top-down: a node's label depends only on
the authorization bins along its own root path (propagation never flows
sideways or upwards). An edit therefore invalidates bins and labels
only inside the edited subtree — everything outside keeps its labels,
and relabeling can re-run the normal :class:`~repro.core.labeling.TreeLabeler`
machinery *from the nearest labeled ancestor down* instead of from
scratch.

Two ingredients make that cheap:

1. :func:`clone_with_map` — edits apply to a deep clone (readers keep
   walking the old tree lock-free; the commit is an atomic swap), and
   the clone records an old→new node map so bound labeler state carries
   over by *dict remapping* instead of re-evaluating every
   authorization's XPath.
2. the **stream patterns** of :mod:`repro.stream.paths` — the same
   NFA-compiled form of authorization paths the streaming pipeline
   uses. A pattern's match at a node is a function of the node's root
   path (ancestor names/attributes) alone, which is exactly the
   edit-locality property: to rebind an edited subtree we advance each
   pattern's state down the ancestor chain once and walk just the
   subtree.

When any applicable authorization path falls outside the streamable
subset, :class:`LabelState.apply_delta` raises
:class:`IncrementalUnsupported` and the caller falls back to a full
rebind — correctness is never traded for speed, the fallback is merely
slower (and metered).

The differential property — incremental relabel ≡ full relabel, for
every edit sequence under all four conflict policies — is enforced by
``tests/update/test_incremental.py`` and the hypothesis suite in
``tests/properties/test_update_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import (
    ATTRIBUTE_SLOT_DEGRADE,
    TreeLabeler,
)
from repro.core.labels import Label
from repro.errors import ReproError
from repro.limits import Deadline, ResourceLimits
from repro.stream.paths import (
    StreamPathUnsupported,
    StreamPattern,
    compile_stream_pattern,
)
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import Attribute, Document, Element, Node
from repro.xml.traversal import preorder
from repro.xpath.compile import RelativeMode

__all__ = [
    "IncrementalUnsupported",
    "EditDelta",
    "LabelState",
    "clone_with_map",
    "compile_auth_patterns",
    "rebind_subtree",
    "states_above",
]


class IncrementalUnsupported(ReproError):
    """The applicable policy cannot be rebound incrementally (an
    authorization path is outside the streamable subset)."""


def clone_with_map(document: Document) -> tuple[Document, dict[Node, Node]]:
    """Deep-clone *document*, returning the clone and an old→new map.

    The map covers the document node, every element, attribute and leaf
    node — everything a labeler, oracle or cache may hold memoized
    state against. Iterative, so arbitrarily deep documents never
    exhaust the interpreter stack.
    """
    copy = Document()
    copy.doctype_name = document.doctype_name
    copy.system_id = document.system_id
    copy.dtd = document.dtd
    copy.uri = document.uri
    copy.xml_version = document.xml_version
    copy.encoding = document.encoding
    copy.standalone = document.standalone
    node_map: dict[Node, Node] = {document: copy}
    for child in document.children:
        if isinstance(child, Element):
            copy.append(_clone_element(child, node_map))
        else:
            dup = child.clone(deep=True)
            node_map[child] = dup
            copy.append(dup)
    return copy, node_map


def _clone_element(element: Element, node_map: dict[Node, Node]) -> Element:
    top = Element(element.name)
    node_map[element] = top
    for name, attr in element.attributes.items():
        node_map[attr] = top.set_attribute(name, attr.value)
    stack: list[tuple[Element, Element]] = [(element, top)]
    while stack:
        source, target = stack.pop()
        for child in source.children:
            if isinstance(child, Element):
                dup = Element(child.name)
                for name, attr in child.attributes.items():
                    node_map[attr] = dup.set_attribute(name, attr.value)
                node_map[child] = dup
                target.append(dup)
                stack.append((child, dup))
            else:
                leaf = child.clone(deep=True)
                node_map[child] = leaf
                target.append(leaf)
    return top


@dataclass
class EditDelta:
    """One applied mutation, in terms the relabeler understands.

    ``dirty`` is the (attached, new-tree) subtree whose bins and labels
    must be recomputed; ``removed`` holds detached old-content subtree
    roots whose memoized state should be purged; ``anchor`` is the
    element the change hangs off (for ancestor-chain survivability
    purges on the read side); ``old_nodes`` are the corresponding
    subtree roots in the *pre-update* tree, when the edited region
    existed before the batch (used for before-visibility checks during
    cache invalidation).
    """

    kind: str
    anchor: Optional[Element]
    dirty: Optional[Node] = None
    removed: tuple[Node, ...] = ()
    old_nodes: tuple[Node, ...] = ()


def compile_auth_patterns(
    labeler: TreeLabeler,
) -> Optional[list[tuple[Authorization, str, StreamPattern]]]:
    """Compile every bound authorization's path for subtree rebinding.

    Returns the patterns in the labeler's binding order (instance
    authorizations before schema ones), or ``None`` when any path is
    outside the streamable subset — the caller must then fall back to
    full rebinding.
    """
    patterns: list[tuple[Authorization, str, StreamPattern]] = []
    try:
        for authorization, slot in labeler.authorization_slots():
            pattern = compile_stream_pattern(
                authorization.object.path, labeler.relative_mode
            )
            patterns.append((authorization, slot, pattern))
    except StreamPathUnsupported:
        return None
    return patterns


def states_above(
    patterns: list[tuple[Authorization, str, StreamPattern]],
    element: Element,
    memo: Optional[dict[Element, list[list]]] = None,
) -> list[list]:
    """Each pattern's NFA state at *element*'s parent — i.e. the state
    from which entering *element* is the next transition.

    Without *memo* this costs one pass over the ancestor chain. With
    *memo* (element → per-pattern states *at* that element) the walk
    stops at the nearest memoized ancestor and newly computed states
    are recorded, so repeated edits near each other cost O(1) ancestor
    work. A state memoized at a node stays valid as long as the node's
    root path (ancestor names and attributes) is unchanged — which is
    exactly what holds outside an edit's dirty subtree.
    """
    chain: list[Element] = []
    states: Optional[list[list]] = None
    node = element.parent
    while isinstance(node, Element):
        if memo is not None and node in memo:
            states = memo[node]
            break
        chain.append(node)
        node = node.parent
    if states is None:
        states = [pattern.initial() for (_, _, pattern) in patterns]
    for ancestor in reversed(chain):
        attributes = {
            name: attr.value for name, attr in ancestor.attributes.items()
        }
        states = [
            pattern.advance(state, ancestor.name, attributes)
            for (_, _, pattern), state in zip(patterns, states)
        ]
        if memo is not None:
            memo[ancestor] = states
    return states


def rebind_subtree(
    labeler: TreeLabeler,
    patterns: list[tuple[Authorization, str, StreamPattern]],
    root: Node,
    memo: Optional[dict[Element, list[list]]] = None,
) -> int:
    """Recompute the authorization bins for ``subtree(root)`` in place.

    Every node of the subtree first drops its stale bins, then each
    pattern's automaton walks down from the precomputed ancestor state,
    binning exactly the authorizations whose paths select each element
    or attribute — the same node-sets the DOM evaluation would produce
    over the edited tree, by the stream/DOM equivalence the streaming
    pipeline is built on. Returns the number of (node, authorization)
    bindings made. *memo* (see :func:`states_above`) caches per-element
    pattern states; entries for the subtree are refreshed as it is
    walked.
    """
    bins = labeler.slot_bins()
    for node in preorder(root):
        bins.pop(node, None)
    if not isinstance(root, Element) or not patterns:
        return 0
    bound = 0
    stack: list[tuple[Element, list[list]]] = [
        (root, states_above(patterns, root, memo))
    ]
    while stack:
        element, above = stack.pop()
        attributes = {
            name: attr.value for name, attr in element.attributes.items()
        }
        here: list[list] = []
        for (authorization, slot, pattern), state in zip(patterns, above):
            advanced = pattern.advance(state, element.name, attributes)
            here.append(advanced)
            if pattern.accepts_element(advanced):
                bins.setdefault(element, {}).setdefault(slot, []).append(
                    authorization
                )
                bound += 1
            if pattern.any_attr_active(advanced):
                for name, attr in element.attributes.items():
                    if pattern.matches_attribute(advanced, name):
                        attr_slot = ATTRIBUTE_SLOT_DEGRADE.get(slot, slot)
                        bins.setdefault(attr, {}).setdefault(
                            attr_slot, []
                        ).append(authorization)
                        bound += 1
        if memo is not None:
            memo[element] = here
        for child in element.children:
            if isinstance(child, Element):
                stack.append((child, here))
    return bound


@dataclass
class LabelState:
    """A reusable (labeler, memoized labels, compiled patterns) triple.

    One state follows one document across edits: :meth:`rebase` carries
    it onto the post-edit clone by key remapping, :meth:`apply_delta`
    repairs exactly the edited subtree. ``patterns`` is ``None`` when
    the policy is outside the streamable subset — then every delta
    raises :class:`IncrementalUnsupported` and callers rebuild.
    """

    labeler: TreeLabeler
    labels: dict[Node, Label] = field(default_factory=dict)
    patterns: Optional[list[tuple[Authorization, str, StreamPattern]]] = None
    # element → per-pattern NFA states at that element; valid while the
    # element's root path is unchanged (purged with the dirty subtree).
    pattern_states: dict[Element, list[list]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        document: Document,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        relative_mode: RelativeMode = "descendant",
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> "LabelState":
        labeler = TreeLabeler(
            document,
            instance_auths,
            schema_auths,
            hierarchy,
            policy=policy,
            relative_mode=relative_mode,
            limits=limits,
            deadline=deadline,
        )
        labeler.bind()
        return cls(labeler, {}, compile_auth_patterns(labeler))

    @property
    def stream_safe(self) -> bool:
        return self.patterns is not None

    def label(self, node: Node) -> Label:
        return self.labeler.label_lazily(node, self.labels)

    def rebase(self, document: Document, node_map: dict[Node, Node]) -> None:
        """Carry the state onto a clone of its document (O(memo))."""
        self.labeler.rebase(document, node_map)
        self.labels = {
            node_map[node]: label
            for node, label in self.labels.items()
            if node in node_map
        }
        self.pattern_states = {
            node_map[node]: states
            for node, states in self.pattern_states.items()
            if node in node_map
        }

    def apply_delta(self, delta: EditDelta) -> int:
        """Repair bins and labels for one applied edit.

        Returns the number of nodes relabeled. Raises
        :class:`IncrementalUnsupported` when the policy cannot be
        rebound incrementally (the caller rebuilds from scratch).
        """
        if self.patterns is None:
            raise IncrementalUnsupported(
                "an authorization path is outside the streamable subset"
            )
        bins = self.labeler.slot_bins()
        for removed in delta.removed:
            for node in preorder(removed):
                bins.pop(node, None)
                self.labels.pop(node, None)
                self.pattern_states.pop(node, None)
        relabeled = 0
        if delta.dirty is not None:
            for node in preorder(delta.dirty):
                self.pattern_states.pop(node, None)
            rebind_subtree(
                self.labeler, self.patterns, delta.dirty, self.pattern_states
            )
            for node in preorder(delta.dirty):
                self.labels.pop(node, None)
            relabeled = self.labeler.relabel_subtree(delta.dirty, self.labels)
        return relabeled
