"""The update vocabulary: operations, requests and outcomes.

Write entitlements are ordinary authorization 5-tuples with
``action="write"`` (Definition 3's footnote: "The support of other
actions, like write, update, etc., does not complicate the
authorization model"), labeled by the very same compute-view pass. The
enforcement rule for mutations (closed policy for writes — unlabeled
means not writable) lives in :mod:`repro.update.engine`.

Operations form a small XUpdate-like vocabulary. The subtree-shaped
aliases (:data:`InsertSubtree`, :data:`DeleteSubtree`) name the same
operations by what they do to the tree; :class:`ReplaceSubtree` swaps a
whole subtree for a parsed fragment in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import ReproError
from repro.subjects.hierarchy import Requester

__all__ = [
    "UpdateDenied",
    "SetAttribute",
    "RemoveAttribute",
    "SetText",
    "InsertChild",
    "DeleteNode",
    "ReplaceSubtree",
    "InsertSubtree",
    "DeleteSubtree",
    "UpdateOperation",
    "UpdateRequest",
    "UpdateOutcome",
]


class UpdateDenied(ReproError):
    """The requester lacks write authorization for a touched node."""


@dataclass(frozen=True)
class SetAttribute:
    """Set (create or overwrite) an attribute on every selected element."""

    target: str  # XPath selecting elements
    name: str
    value: str


@dataclass(frozen=True)
class RemoveAttribute:
    """Remove an attribute from every selected element, if present."""

    target: str
    name: str


@dataclass(frozen=True)
class SetText:
    """Replace the text content of every selected element."""

    target: str
    text: str


@dataclass(frozen=True)
class InsertChild:
    """Append a parsed XML fragment under every selected element.

    ``position`` is the child index (``None`` appends at the end).
    """

    target: str
    fragment: str
    position: Optional[int] = None


@dataclass(frozen=True)
class DeleteNode:
    """Delete every selected element (attribute targets are rejected —
    use :class:`RemoveAttribute`)."""

    target: str


@dataclass(frozen=True)
class ReplaceSubtree:
    """Replace every selected element — subtree and all — with a parsed
    fragment, at the same child position.

    Like deletion, replacing requires the *whole* old subtree to be
    writable (a requester must never destroy content hidden from them),
    and the root element may not be replaced.
    """

    target: str
    fragment: str


#: Subtree-shaped aliases for the tree-level operations.
InsertSubtree = InsertChild
DeleteSubtree = DeleteNode

UpdateOperation = Union[
    SetAttribute,
    RemoveAttribute,
    SetText,
    InsertChild,
    DeleteNode,
    ReplaceSubtree,
]


@dataclass(frozen=True)
class UpdateRequest:
    """A batch of operations on one document by one requester."""

    requester: Requester
    uri: str
    operations: tuple[UpdateOperation, ...]
    action: str = "write"

    @classmethod
    def of(cls, requester: Requester, uri: str, *operations: UpdateOperation):
        return cls(requester, uri, tuple(operations))


@dataclass
class UpdateOutcome:
    """What an applied (or rejected) update did.

    The first five fields predate the incremental-relabeling subsystem
    and keep their meaning. ``version`` is the stored document's version
    after the commit (monotonically increasing per document);
    ``incremental`` records whether the post-edit relabeling ran
    incrementally (``relabeled_nodes`` counts the nodes it touched);
    ``cache_kept``/``cache_dropped`` summarize the subtree-granular
    view-cache invalidation; ``admitted`` carries write provenance as
    ``(node_path, (authorization, ...))`` pairs — exactly which
    authorizations admitted each touched target. Structured failures
    (resource guards on the server path) come back with ``applied``
    false and ``error``/``error_kind`` set instead of a traceback.
    """

    applied: bool
    touched_nodes: int = 0
    operations: int = 0
    detail: str = ""
    violations: list[str] = field(default_factory=list)
    version: Optional[int] = None
    incremental: bool = False
    relabeled_nodes: int = 0
    cache_kept: int = 0
    cache_dropped: int = 0
    admitted: tuple = ()
    error: Optional[Exception] = None
    error_kind: Optional[str] = None
