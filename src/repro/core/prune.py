"""The transformation (pruning) step (paper, Section 6.2 and Figure 2).

Two equivalent implementations are provided and cross-checked by tests:

- :func:`build_view` — a non-destructive postorder construction of the
  view tree (what the processor uses: the stored document is never
  mutated);
- :func:`prune_in_place` — the literal ``prune(T, n)`` of Figure 2,
  operating on a (cloned) labeled tree.

Both implement: a node is kept iff its final sign is permitted, or it
has a surviving descendant — "to preserve the structure of the document,
the portion of the document visible to the requester will also include
start and end tags of elements with a negative or undefined label, which
have a descendant with a positive label". Attributes count as children
for survival purposes (they are nodes of the paper's tree model); the
*content* (text) of a non-permitted element is never shown.
"""

from __future__ import annotations

from typing import Optional

from repro.core.labels import Label
from repro.dtd.loosen import loosen
from repro.obs.trace import span
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

__all__ = ["build_view", "prune_in_place"]


def build_view(
    document: Document | Element,
    labels: dict[Node, Label],
    open_policy: bool = False,
    loosen_dtd: bool = True,
) -> Document:
    """Construct the requester's view as a new document.

    Parameters
    ----------
    document:
        The labeled original (untouched).
    labels:
        The labeling result for every node of *document*.
    open_policy:
        Under the open policy an ε final sign counts as a permission
        (Section 6.2); the default is the paper's closed policy.
    loosen_dtd:
        Attach the loosened DTD to the view (Section 7: the view is
        valid w.r.t. — and shipped with — the loosened DTD).
    """
    if isinstance(document, Document):
        root = document.root
        view = document.clone(deep=False)
        view.children = []
    else:
        root = document
        view = Document()
    if loosen_dtd and view.dtd is not None:
        with span("dtd.loosen"):
            view.dtd = loosen(view.dtd)
    if root is None:
        return view
    with span("prune"):
        built = _build_element(root, labels, open_policy)
    if built is not None:
        view.append(built)
    else:
        # Nothing visible: the view is an empty document (no DOCTYPE
        # either — even the root element's existence is hidden).
        view.doctype_name = None
        view.system_id = None
    return view


def _build_element(
    element: Element, labels: dict[Node, Label], open_policy: bool
) -> Optional[Element]:
    """Postorder construction of the visible copy of *element*.

    Iterative (explicit postorder over elements) so deep documents
    never exhaust the Python stack.
    """
    built: dict[Element, Optional[Element]] = {}
    for node in _postorder_elements(element):
        label = labels.get(node)
        permitted = label is not None and label.permitted_under(open_policy)

        kept_attributes: list[Attribute] = []
        for attribute in node.attributes.values():
            attr_label = labels.get(attribute)
            if attr_label is not None and attr_label.permitted_under(open_policy):
                kept_attributes.append(attribute)

        kept_children: list[Node] = []
        for child in node.children:
            if isinstance(child, Element):
                child_copy = built[child]
                if child_copy is not None:
                    kept_children.append(child_copy)
            elif isinstance(child, (Text, Comment, ProcessingInstruction)):
                # Content is visible only when the element itself is
                # permitted (a structural survivor shows bare tags only).
                if permitted:
                    kept_children.append(child.clone())

        if not permitted and not kept_attributes and not kept_children:
            built[node] = None
            continue
        copy = Element(node.name)
        for attribute in kept_attributes:
            copy.set_attribute(attribute.name, attribute.value)
        for child in kept_children:
            copy.append(child)
        built[node] = copy
    return built[element]


def _postorder_elements(root: Element):
    """Yield the elements under (and including) *root*, children first."""
    stack: list[tuple[Element, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        for child in reversed(node.children):
            if isinstance(child, Element):
                stack.append((child, False))


def prune_in_place(
    tree: Document | Element,
    labels: dict[Node, Label],
    open_policy: bool = False,
) -> None:
    """Figure 2's ``prune(T, n)``: postorder removal on *tree* itself.

    *labels* must be keyed by the nodes of *tree* (use this on a clone,
    transferring labels, or on a tree you own). Text/comment/PI nodes of
    non-permitted elements are removed as well — they are the "values"
    of the paper's tree model and share their parent's sign.
    """
    root = tree.root if isinstance(tree, Document) else tree
    if root is None:
        return
    survived = _prune_element(root, labels, open_policy)
    if not survived and isinstance(tree, Document):
        tree.remove(root)
        tree.doctype_name = None
        tree.system_id = None


def _prune_element(
    element: Element, labels: dict[Node, Label], open_policy: bool
) -> bool:
    """Postorder in-place pruning; returns whether *element* survives."""
    survived: dict[Element, bool] = {}
    for node in _postorder_elements(element):
        label = labels.get(node)
        permitted = label is not None and label.permitted_under(open_policy)

        for attribute in list(node.attributes.values()):
            attr_label = labels.get(attribute)
            if attr_label is None or not attr_label.permitted_under(open_policy):
                node.remove_attribute(attribute.name)

        for child in list(node.children):
            if isinstance(child, Element):
                if not survived[child]:
                    node.remove(child)
            elif not permitted:
                node.remove(child)

        survived[node] = permitted or bool(node.attributes) or bool(node.children)
    return survived[element]
