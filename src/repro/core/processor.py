"""The security processor (paper, Section 7).

"Its execution cycle consists of four basic steps": parsing, tree
labeling, transformation (pruning) and unparsing.
:class:`SecurityProcessor` implements that cycle over the substrate
packages and reports per-step timings, which benchmark C3 uses to show
where the time goes.

The coarse :class:`StepTimings` predate the tracing layer and remain
for API stability; under an active :func:`repro.obs.tracing` block the
same cycle additionally emits structured spans (``parse.xml``,
``label``, ``prune``, ``dtd.loosen``, ``serialize``) with finer nesting
— see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import TreeLabeler
from repro.core.prune import build_view
from repro.core.view import ViewResult
from repro.dtd.loosen import loosen
from repro.dtd.model import DTD
from repro.dtd.serializer import serialize_dtd
from repro.dtd.validator import validate
from repro.errors import ValidationError
from repro.obs.trace import span
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import Document
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.traversal import count_nodes
from repro.xpath.compile import RelativeMode

__all__ = ["ProcessorOutput", "SecurityProcessor", "StepTimings"]


@dataclass
class StepTimings:
    """Wall-clock seconds spent in each of the four processor steps."""

    parse: float = 0.0
    label: float = 0.0
    transform: float = 0.0
    unparse: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.label + self.transform + self.unparse

    def as_dict(self) -> dict[str, float]:
        return {
            "parse": self.parse,
            "label": self.label,
            "transform": self.transform,
            "unparse": self.unparse,
            "total": self.total,
        }


@dataclass
class ProcessorOutput:
    """The processor's product: view text, loosened DTD, diagnostics."""

    xml_text: str
    loosened_dtd: Optional[DTD]
    loosened_dtd_text: Optional[str]
    view: ViewResult
    timings: StepTimings = field(default_factory=StepTimings)


class SecurityProcessor:
    """Server-side on-line transformation of XML documents.

    Parameters mirror the knobs of :func:`repro.core.view.compute_view`;
    one processor instance is configured per document policy (the paper
    allows different policies on one server, but "a single policy
    applies to each specific document").
    """

    def __init__(
        self,
        hierarchy: Optional[SubjectHierarchy] = None,
        policy: Optional[ConflictPolicy] = None,
        open_policy: bool = False,
        relative_mode: RelativeMode = "descendant",
        validate_input: bool = False,
    ) -> None:
        self._hierarchy = hierarchy if hierarchy is not None else SubjectHierarchy()
        self._policy = policy
        self._open_policy = open_policy
        self._relative_mode = relative_mode
        self._validate_input = validate_input

    def process_text(
        self,
        xml_text: str,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        uri: Optional[str] = None,
        dtd: Optional[DTD] = None,
    ) -> ProcessorOutput:
        """Run the full four-step cycle on raw document text."""
        timings = StepTimings()

        # Step 1: parsing (syntax check + compilation to an object tree).
        started = time.perf_counter()
        document = parse_document(xml_text, uri=uri)
        if dtd is not None and document.dtd is None:
            document.dtd = dtd
        if self._validate_input and document.dtd is not None:
            report = validate(document)
            if not report.valid:
                raise ValidationError(report.violations)
        timings.parse = time.perf_counter() - started

        output = self.process_document(document, instance_auths, schema_auths)
        output.timings.parse = timings.parse
        return output

    def process_document(
        self,
        document: Document,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
    ) -> ProcessorOutput:
        """Steps 2-4 on an already parsed document."""
        timings = StepTimings()

        # Step 2: tree labeling.
        started = time.perf_counter()
        labeler = TreeLabeler(
            document,
            instance_auths,
            schema_auths,
            self._hierarchy,
            policy=self._policy,
            relative_mode=self._relative_mode,
        )
        labeling = labeler.run()
        timings.label = time.perf_counter() - started

        # Step 3: transformation (pruning), preserving validity w.r.t.
        # the loosened DTD.
        started = time.perf_counter()
        view_document = build_view(
            document,
            labeling.labels,
            open_policy=self._open_policy,
            loosen_dtd=True,
        )
        timings.transform = time.perf_counter() - started

        # Step 4: unparsing.
        started = time.perf_counter()
        with span("serialize"):
            xml_text = serialize(view_document, doctype=False)
            loosened = view_document.dtd
            if loosened is None and document.dtd is not None:
                loosened = loosen(document.dtd)
            loosened_text = serialize_dtd(loosened) if loosened is not None else None
        timings.unparse = time.perf_counter() - started

        total = count_nodes(document.root) if document.root is not None else 0
        visible = (
            count_nodes(view_document.root)
            if view_document.root is not None
            else 0
        )
        view = ViewResult(
            document=view_document,
            labels=labeling.labels,
            instance_auths=list(instance_auths),
            schema_auths=list(schema_auths),
            total_nodes=total,
            visible_nodes=visible,
        )
        return ProcessorOutput(
            xml_text=xml_text,
            loosened_dtd=loosened,
            loosened_dtd_text=loosened_text,
            view=view,
            timings=timings,
        )
