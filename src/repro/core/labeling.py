"""The tree-labeling pass of the compute-view algorithm (Figure 2).

Given a document and the applicable instance-level (Axml) and
schema-level (Adtd) authorizations for one requester, :class:`TreeLabeler`
computes a :class:`~repro.core.labels.Label` for every element,
attribute and text node:

1. **initial_label** — each authorization's path expression is evaluated
   once against the document; for every selected node the authorization
   is binned into its label slot (L/R/LW/RW for instance authorizations,
   LD/RD for schema ones). Per node and slot, authorizations with
   non-most-specific subjects are discarded and the conflict policy
   resolves the surviving signs (the paper's step 1b/1c, with
   denials-take-precedence as the default policy).
2. **label** — a preorder walk propagates signs downward with
   most-specific-object overriding. The propagation rules follow the
   paper's prose; see DESIGN.md ("Faithfulness notes") for the exact
   reconstruction, in particular the paired blocking of R/RW.

Text nodes (the paper's "values") inherit their parent's final sign.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.authz.authorization import AuthType, Authorization
from repro.authz.conflict import ConflictPolicy, DenialsTakePrecedence, EPSILON
from repro.core.labels import Label, first_def
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import Attribute, Document, Element, Node
from repro.xpath.compile import RelativeMode

__all__ = [
    "TreeLabeler",
    "LabelingResult",
    "ProvenanceRecorder",
    "SlotDecision",
    "SLOTS",
    "INSTANCE_SLOT",
    "SCHEMA_SLOT",
    "ATTRIBUTE_SLOT_DEGRADE",
    "most_specific",
    "resolve_slot_sign",
    "propagate_element_label",
    "propagate_attribute_label",
]

#: The six label slots, in final-sign priority order.
SLOTS = ("L", "R", "LD", "RD", "LW", "RW")

#: Instance-level authorization type -> slot.
INSTANCE_SLOT = {
    AuthType.LOCAL: "L",
    AuthType.RECURSIVE: "R",
    AuthType.LOCAL_WEAK: "LW",
    AuthType.RECURSIVE_WEAK: "RW",
}

#: Schema-level authorization type -> slot. Weak types are meaningless at
#: the schema level (strength only inverts instance/schema priority), so
#: they degrade to their strong counterparts.
SCHEMA_SLOT = {
    AuthType.LOCAL: "LD",
    AuthType.RECURSIVE: "RD",
    AuthType.LOCAL_WEAK: "LD",
    AuthType.RECURSIVE_WEAK: "RD",
}

#: On attributes — terminal nodes with "no propagation possible"
#: (Section 6.1) — recursive slots degrade to their local counterparts,
#: so an R authorization naming an attribute directly behaves like the
#: L it effectively is.
ATTRIBUTE_SLOT_DEGRADE = {"R": "L", "RW": "LW", "RD": "LD"}

# Backwards-compatible private aliases.
_INSTANCE_SLOT = INSTANCE_SLOT
_SCHEMA_SLOT = SCHEMA_SLOT

#: Shared empty attribute view for predicate-free dispatch steps.
_NO_ATTRS: dict[str, str] = {}


def most_specific(
    authorizations: list[Authorization], hierarchy: SubjectHierarchy
) -> list[Authorization]:
    """Step 1b: discard authorizations whose subject is strictly
    dominated by another applicable authorization's subject."""
    return [
        a
        for a in authorizations
        if not any(
            other is not a
            and hierarchy.strictly_dominates(other.subject, a.subject)
            for other in authorizations
        )
    ]


def resolve_slot_sign(
    authorizations: list[Authorization],
    hierarchy: SubjectHierarchy,
    policy: ConflictPolicy,
) -> str:
    """Resolve the sign of one label slot (paper's steps 1b/1c).

    Keeps the authorizations whose subject is not strictly dominated by
    another applicable authorization's subject, then lets *policy*
    resolve the surviving signs. Shared by the DOM labeler and the
    streaming labeler so both backends agree sign-for-sign.
    """
    if len(authorizations) == 1:
        return authorizations[0].sign.value
    survivors = most_specific(authorizations, hierarchy)
    return policy.resolve([a.sign for a in survivors])


def propagate_element_label(label: Label, parent: Label) -> None:
    """Element propagation (paper prose, Section 6.1).

    The recursive pair (R, RW) propagates from the parent only when the
    node carries no recursive authorization of either strength — "most
    specific overrides", with a node's weak recursive authorization also
    blocking the parent's strong one. Schema recursion propagates
    independently. Local signs never propagate to sub-elements.
    """
    if label.R == EPSILON and label.RW == EPSILON:
        label.R = parent.R
        label.RW = parent.RW
    label.RD = first_def(label.RD, parent.RD)
    label.compute_final()


def propagate_attribute_label(label: Label, parent: Label) -> None:
    """Attribute propagation (DESIGN.md decision 2).

    R/RW/RD are always ε on attributes. The parent contributes, in
    order local-before-recursive at each level: instance-strong
    (L_p, R_p), schema (LD_p, RD_p) and weak (LW_p, RW_p) signs. An
    attribute's own weak authorization blocks parent *instance*
    propagation but still yields to schema signs.
    """
    own_weak = label.LW
    label.LD = first_def(label.LD, parent.LD, parent.RD)
    label.LW = first_def(label.LW, parent.LW, parent.RW)
    if own_weak != EPSILON:
        label.final = first_def(label.L, label.LD, own_weak)
    else:
        label.final = first_def(
            label.L, parent.L, parent.R, label.LD, label.LW
        )
    # Recursive slots stay ε: attributes are terminal nodes.


@dataclass
class SlotDecision:
    """Provenance of one directly-decided label slot on one node.

    ``candidates`` are every authorization binned into the slot,
    ``winners`` the subset surviving the most-specific-subject filter,
    ``overridden`` the eliminated ones. ``sign`` is the conflict
    policy's verdict over the winners' signs (possibly ε when the
    policy dissolves the conflict).
    """

    slot: str
    sign: str
    candidates: list[Authorization]
    winners: list[Authorization]
    overridden: list[Authorization]


class ProvenanceRecorder:
    """Collects per-node decision provenance during one labeling run.

    Pass an instance as ``TreeLabeler(recorder=...)`` and the labeler
    records, for every node it labels:

    - ``decisions[node][slot]`` — the :class:`SlotDecision` for every
      slot that had candidate authorizations (the paper's step 1b/1c,
      captured rather than discarded);
    - ``origins[node][slot]`` — ``(origin_node, origin_slot)`` for
      every non-ε slot: the node/slot where the sign was decided
      directly. Propagated slots point at the ancestor's origin, so
      lookups are O(1) with no ancestor walks;
    - ``final_origin[node]`` — the origin of the node's *final* sign
      (``None`` when the final is ε);
    - ``blocked[node]`` — the parent's recursive slots whose
      propagation was blocked by this node's own recursive
      authorization (the "most specific overrides" rule, including a
      weak label blocking a strong parent);
    - ``attr_inputs[node]`` — for attributes, the
      ``(own_weak_sign, parent_instance_sign)`` pair feeding the
      special attribute final-sign formula (DESIGN.md decision 2).

    The recorder is write-only during the run; the explain engine
    (:mod:`repro.core.explain`) turns it into per-node explanations.
    When no recorder is attached the labeler pays a single
    ``is None`` test per node — the disabled path is benchmarked to
    stay under 1 % overhead (``BENCH_PR4.json``).
    """

    __slots__ = (
        "decisions",
        "origins",
        "final_origin",
        "blocked",
        "attr_inputs",
        "nodes_recorded",
    )

    def __init__(self) -> None:
        self.decisions: dict[Node, dict[str, SlotDecision]] = {}
        self.origins: dict[Node, dict[str, tuple[Node, str]]] = {}
        self.final_origin: dict[Node, Optional[tuple[Node, str]]] = {}
        self.blocked: dict[Node, tuple[str, ...]] = {}
        self.attr_inputs: dict[Node, tuple[str, str]] = {}
        self.nodes_recorded = 0

    # -- lookups (used during propagation and by the explain engine) -------

    def origin_of(self, node: Node, slot: str) -> tuple[Node, str]:
        """Where *node*'s *slot* value was decided directly."""
        by_slot = self.origins.get(node)
        if by_slot is not None:
            found = by_slot.get(slot)
            if found is not None:
                return found
        return (node, slot)

    def decision_at(
        self, origin: Optional[tuple[Node, str]]
    ) -> Optional[SlotDecision]:
        """The :class:`SlotDecision` behind an origin pair, if any."""
        if origin is None:
            return None
        node, slot = origin
        by_slot = self.decisions.get(node)
        return by_slot.get(slot) if by_slot is not None else None

    def record_element_final(self, node: Node, label: Label) -> None:
        """Record the origin of an element's final sign (first non-ε
        slot in priority order)."""
        for slot in SLOTS:
            if getattr(label, slot) != EPSILON:
                self.final_origin[node] = self.origin_of(node, slot)
                return
        self.final_origin[node] = None


@dataclass
class LabelingResult:
    """Labels per node, plus bookkeeping used by tests and benchmarks."""

    labels: dict[Node, Label]
    evaluated_authorizations: int = 0
    labeled_nodes: int = 0

    def final(self, node: Node) -> str:
        label = self.labels.get(node)
        return label.final if label is not None else EPSILON

    def counts(self) -> dict[str, int]:
        """How many nodes ended '+', '-' and ε (for reports)."""
        out = {"+": 0, "-": 0, EPSILON: 0}
        for label in self.labels.values():
            out[label.final] += 1
        return out


class TreeLabeler:
    """One labeling run: a document against two authorization sets.

    Parameters
    ----------
    document:
        The requested document (not mutated).
    instance_auths:
        Axml — authorizations attached to the document's URI, already
        filtered for the requester.
    schema_auths:
        Adtd — authorizations attached to the DTD's URI, already
        filtered for the requester. Their path expressions are evaluated
        against the instance document (DESIGN.md decision 6).
    hierarchy:
        The subject hierarchy (for the most-specific-subject filter).
    policy:
        Conflict-resolution policy; defaults to denials-take-precedence.
    relative_mode:
        How relative path expressions anchor (DESIGN.md decision 5).
    limits:
        Optional :class:`~repro.limits.ResourceLimits`; caps the XPath
        step budget of each authorization's path evaluation.
    deadline:
        Optional shared wall-clock :class:`~repro.limits.Deadline`,
        checked after every authorization evaluation and periodically
        during the labeling walk.
    recorder:
        Optional :class:`ProvenanceRecorder`. When given, the run
        records per-node decision provenance (candidates, winners,
        conflict verdicts, propagation origins); when ``None`` (the
        default) the only cost is one ``is None`` test per node.
    """

    #: Labeled nodes between two deadline checks in the main walk.
    _DEADLINE_STRIDE = 1024

    def __init__(
        self,
        document: Document | Element,
        instance_auths: list[Authorization],
        schema_auths: list[Authorization],
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        relative_mode: RelativeMode = "descendant",
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
        recorder: Optional[ProvenanceRecorder] = None,
    ) -> None:
        self._document = document
        self._root = (
            document.root if isinstance(document, Document) else document
        )
        self._instance_auths = instance_auths
        self._schema_auths = schema_auths
        self._hierarchy = hierarchy
        self._policy = policy if policy is not None else DenialsTakePrecedence()
        self._relative_mode = relative_mode
        self._max_steps = limits.max_xpath_steps if limits is not None else None
        self._deadline = (
            deadline if deadline is not None and not deadline.unbounded else None
        )
        self._recorder = recorder
        # node -> slot -> authorizations covering that node
        self._node_slot_auths: dict[Node, dict[str, list[Authorization]]] = {}
        self._evaluated = 0
        self._bound = False

    # -- public ------------------------------------------------------------

    def run(self) -> LabelingResult:
        """Label the whole tree; returns labels for every node."""
        with span("label"):
            return self._run()

    def bind(self) -> "TreeLabeler":
        """Evaluate and bin every authorization path (idempotent).

        This is the shared first half of :meth:`run`: after it, each
        node's per-slot candidate authorizations are known and single
        nodes can be labeled on demand via :meth:`label_lazily` without
        walking the whole tree — the basis of the virtual-view
        visibility oracle (:mod:`repro.rewrite`).
        """
        if not self._bound:
            with span("label.bind"):
                self._bin_authorizations()
            self._bound = True
        return self

    def label_lazily(self, node: Node, labels: dict[Node, Label]) -> Label:
        """Label *node* on demand, reusing *labels* as the shared memo.

        Labels exactly match :meth:`run`'s: the node's unlabeled
        ancestors are labeled first (signs propagate root-down), each
        via the same ``initial_label``/propagation functions the full
        walk uses. Amortized O(1) per node once ancestors are memoized.
        """
        self.bind()
        found = labels.get(node)
        if found is not None:
            return found
        # Climb to the nearest labeled ancestor (or the root).
        chain: list[Node] = []
        current = node
        while True:
            parent = current.parent
            if parent is None or isinstance(parent, Document):
                break
            chain.append(current)
            current = parent
            if current in labels:
                break
        if current not in labels:
            root_label = self._initial_label(current)
            root_label.compute_final()
            labels[current] = root_label
        for item in reversed(chain):
            labels[item] = self._label_node(item, labels[item.parent])
        return labels[node]

    # -- incremental relabeling support (repro.update) ---------------------

    def slot_bins(self) -> dict[Node, dict[str, list[Authorization]]]:
        """The mutable node → slot → candidate-authorizations binning.

        Binds first if needed. The update subsystem edits this mapping
        in place when it rebinds an edited subtree through the compiled
        stream patterns (:mod:`repro.update.relabel`); everyone else
        should treat it as read-only.
        """
        self.bind()
        return self._node_slot_auths

    def authorization_slots(self) -> Iterator[tuple[Authorization, str]]:
        """``(authorization, slot)`` pairs in binding order — instance
        authorizations first, then schema ones, exactly as
        :meth:`bind` bins them."""
        for authorization in self._instance_auths:
            yield authorization, _INSTANCE_SLOT[authorization.type]
        for authorization in self._schema_auths:
            yield authorization, _SCHEMA_SLOT[authorization.type]

    @property
    def relative_mode(self) -> RelativeMode:
        return self._relative_mode

    def rebase(self, document: Document | Element, node_map: dict) -> None:
        """Re-anchor a *bound* labeler onto a cloned tree.

        *node_map* maps every node of the current tree to its clone
        (see :func:`repro.update.relabel.clone_with_map`). The bound
        authorization bins are carried over by key remapping — no path
        expression is re-evaluated, which is what makes incremental
        relabeling cheap. Nodes absent from the map (none, for a full
        clone) simply drop their bins.
        """
        self.bind()
        self._document = document
        self._root = (
            document.root if isinstance(document, Document) else document
        )
        remapped: dict[Node, dict[str, list[Authorization]]] = {}
        for node, slots in self._node_slot_auths.items():
            new = node_map.get(node)
            if new is not None:
                remapped[new] = slots
        self._node_slot_auths = remapped

    def relabel_subtree(self, root: Node, labels: dict[Node, Label]) -> int:
        """Eagerly (re)label *root* and its whole subtree into *labels*.

        Overwrites any memoized entries — this is the "re-run the
        labeler from the nearest labeled ancestor down" step after an
        edit invalidated a subtree's labels (the ancestors' labels are
        unaffected by construction: a node's label depends only on the
        bins along its own root path). Returns the number of nodes
        labeled.
        """
        self.bind()
        parent = root.parent
        if parent is None or isinstance(parent, Document):
            label = self._initial_label(root)
            label.compute_final()
            labels[root] = label
            if self._recorder is not None and isinstance(root, Element):
                self._recorder.record_element_final(root, label)
        else:
            parent_label = labels.get(parent)
            if parent_label is None:
                parent_label = self.label_lazily(parent, labels)
            labels[root] = self._label_node(root, parent_label)
        count = 1
        if isinstance(root, Element):
            stack: list[tuple[Node, Element]] = []
            self._push_children(root, stack)
            while stack:
                node, node_parent = stack.pop()
                labels[node] = self._label_node(node, labels[node_parent])
                count += 1
                if isinstance(node, Element):
                    self._push_children(node, stack)
        return count

    @contextmanager
    def recording(self, recorder: ProvenanceRecorder):
        """Temporarily attach *recorder* for provenance-aware lazy
        labeling (used by the update path to capture exactly which
        authorization admitted a write). Not thread-safe: callers must
        hold whatever lock serializes access to this labeler."""
        previous = self._recorder
        self._recorder = recorder
        try:
            yield self
        finally:
            self._recorder = previous

    def _run(self) -> LabelingResult:
        labels: dict[Node, Label] = {}
        root = self._root
        if root is None:
            return LabelingResult(labels)
        self.bind()

        with span("label.propagate"):
            # Figure 2 steps 4-5: initial label of the root, final by
            # first_def.
            root_label = self._initial_label(root)
            root_label.compute_final()
            labels[root] = root_label
            if self._recorder is not None:
                self._recorder.record_element_final(root, root_label)
                self._recorder.nodes_recorded += 1

            # Step 6: label(c, r) for each child (attributes included:
            # the paper's tree model hangs attributes off their
            # element).
            stack: list[tuple[Node, Element]] = []
            self._push_children(root, stack)
            deadline = self._deadline
            labeled = 0
            while stack:
                node, parent = stack.pop()
                parent_label = labels[parent]
                label = self._label_node(node, parent_label)
                labels[node] = label
                if isinstance(node, Element):
                    self._push_children(node, stack)
                if deadline is not None:
                    labeled += 1
                    if labeled % self._DEADLINE_STRIDE == 0:
                        deadline.check("tree labeling")
        return LabelingResult(labels, self._evaluated, len(labels))

    # -- authorization binning ------------------------------------------------

    def _bin_authorizations(self) -> None:
        if self._bin_via_nfa():
            return
        root_context: Node = self._document
        for authorization in self._instance_auths:
            slot = _INSTANCE_SLOT[authorization.type]
            self._bin_one(authorization, slot, root_context)
        for authorization in self._schema_auths:
            slot = _SCHEMA_SLOT[authorization.type]
            self._bin_one(authorization, slot, root_context)

    def _bin_via_nfa(self) -> bool:
        """Bind every authorization in ONE tree walk, when possible.

        All paths are compiled to the streaming NFA matchers in *exact*
        mode (:func:`repro.stream.paths.compile_stream_pattern`); a
        single preorder walk then advances the joint
        :class:`~repro.stream.paths.PatternDispatch` state per element
        and bins every accepting authorization — the per-node slot
        lists come out in the same order the per-authorization XPath
        evaluations would have produced (instance list first, then
        schema, both in list order). Any path outside the exactly-
        streamable subset returns ``False`` and the legacy one-XPath-
        per-authorization binning runs instead.
        """
        if not isinstance(self._document, Document):
            # An Element context anchors absolute paths differently;
            # keep the evaluator's semantics for that rare case.
            return False
        # Deferred import: repro.stream imports this module at load time.
        from repro.stream.paths import (
            PatternDispatch,
            StreamPathUnsupported,
            compile_stream_pattern,
        )

        entries: list[tuple[Authorization, str]] = []
        patterns = []
        try:
            for authorization, slot in self.authorization_slots():
                patterns.append(
                    compile_stream_pattern(
                        authorization.object.path, self._relative_mode, exact=True
                    )
                )
                entries.append((authorization, slot))
        except StreamPathUnsupported:
            return False
        self._evaluated += len(entries)
        root = self._root
        if root is None or not entries:
            return True
        dispatch = PatternDispatch(patterns)
        bins = self._node_slot_auths
        degrade = self._ATTRIBUTE_SLOT
        deadline = self._deadline
        stack: list[tuple[Element, object]] = [(root, dispatch.initial)]
        visited = 0
        while stack:
            element, parent_state = stack.pop()
            attributes = element.attributes
            if attributes and parent_state.preds:
                values = {
                    name: attribute.value
                    for name, attribute in attributes.items()
                }
            else:
                values = _NO_ATTRS
            state = dispatch.advance(parent_state, element.name, values)
            if state.accepts:
                slots = bins.get(element)
                if slots is None:
                    slots = {}
                    bins[element] = slots
                for index in state.accepts:
                    authorization, slot = entries[index]
                    slots.setdefault(slot, []).append(authorization)
            if attributes and state.attr_entries:
                for index, tails in state.attr_entries:
                    authorization, slot = entries[index]
                    slot = degrade.get(slot, slot)
                    for name, attribute in attributes.items():
                        for tail in tails:
                            if tail is None or tail == name:
                                attr_slots = bins.get(attribute)
                                if attr_slots is None:
                                    attr_slots = {}
                                    bins[attribute] = attr_slots
                                attr_slots.setdefault(slot, []).append(
                                    authorization
                                )
                                break
            for child in element.children:
                if isinstance(child, Element):
                    stack.append((child, state))
            if deadline is not None:
                visited += 1
                if visited % self._DEADLINE_STRIDE == 0:
                    deadline.check("authorization binding")
        return True

    _ATTRIBUTE_SLOT = ATTRIBUTE_SLOT_DEGRADE

    def _bin_one(self, authorization: Authorization, slot: str, context: Node) -> None:
        nodes = authorization.select_nodes(
            context,
            self._relative_mode,
            max_steps=self._max_steps,
            deadline=self._deadline,
        )
        self._evaluated += 1
        if self._deadline is not None:
            self._deadline.check("authorization evaluation")
        for node in nodes:
            node_slot = slot
            if isinstance(node, Attribute):
                node_slot = self._ATTRIBUTE_SLOT.get(slot, slot)
            slots = self._node_slot_auths.get(node)
            if slots is None:
                slots = {}
                self._node_slot_auths[node] = slots
            slots.setdefault(node_slot, []).append(authorization)

    # -- initial_label ------------------------------------------------------------

    def _initial_label(self, node: Node) -> Label:
        """Paper's initial_label(n): per-slot most-specific filtering and
        conflict resolution."""
        if self._recorder is not None:
            return self._initial_label_recorded(node)
        label = Label()
        slots = self._node_slot_auths.get(node)
        if not slots:
            return label
        for slot, authorizations in slots.items():
            sign = self._resolve_slot(authorizations)
            setattr(label, slot, sign)
        return label

    def _initial_label_recorded(self, node: Node) -> Label:
        """initial_label(n) with full provenance: same signs as the fast
        path, plus per-slot candidates/winners/overridden and direct
        origins on the recorder."""
        recorder = self._recorder
        label = Label()
        slots = self._node_slot_auths.get(node)
        if not slots:
            return label
        decisions: dict[str, SlotDecision] = {}
        origins: dict[str, tuple[Node, str]] = {}
        for slot, authorizations in slots.items():
            if len(authorizations) == 1:
                winners = list(authorizations)
                overridden: list[Authorization] = []
                sign = authorizations[0].sign.value
            else:
                winners = most_specific(authorizations, self._hierarchy)
                overridden = [a for a in authorizations if a not in winners]
                sign = self._policy.resolve([a.sign for a in winners])
            setattr(label, slot, sign)
            decisions[slot] = SlotDecision(
                slot, sign, list(authorizations), winners, overridden
            )
            if sign != EPSILON:
                origins[slot] = (node, slot)
        recorder.decisions[node] = decisions
        if origins:
            recorder.origins[node] = origins
        return label

    def _resolve_slot(self, authorizations: list[Authorization]) -> str:
        return resolve_slot_sign(authorizations, self._hierarchy, self._policy)

    def _most_specific(
        self, authorizations: list[Authorization]
    ) -> list[Authorization]:
        return most_specific(authorizations, self._hierarchy)

    # -- label(n, p) ------------------------------------------------------------

    def _label_node(self, node: Node, parent_label: Label) -> Label:
        if self._recorder is not None:
            return self._label_node_recorded(node, parent_label)
        label = self._initial_label(node)
        if isinstance(node, Attribute):
            self._propagate_to_attribute(label, parent_label)
        elif isinstance(node, Element):
            self._propagate_to_element(label, parent_label)
        else:
            # Text/comment/PI nodes ("values"): visibility follows the
            # parent element's final sign.
            label.final = parent_label.final
        return label

    _propagate_to_element = staticmethod(propagate_element_label)
    _propagate_to_attribute = staticmethod(propagate_attribute_label)

    # -- label(n, p) with provenance ------------------------------------------

    def _label_node_recorded(self, node: Node, parent_label: Label) -> Label:
        """The recorded twin of :meth:`_label_node`: identical signs,
        plus propagation origins / blocked-slot / attribute-input
        provenance. The walk only visits children of elements, so
        ``node.parent`` is the labeled parent."""
        recorder = self._recorder
        parent = node.parent
        label = self._initial_label_recorded(node)
        if isinstance(node, Attribute):
            self._propagate_attribute_recorded(
                recorder, node, parent, label, parent_label
            )
        elif isinstance(node, Element):
            self._propagate_element_recorded(
                recorder, node, parent, label, parent_label
            )
        else:
            label.final = parent_label.final
            recorder.final_origin[node] = recorder.final_origin.get(parent)
        recorder.nodes_recorded += 1
        return label

    @staticmethod
    def _propagate_element_recorded(
        recorder: ProvenanceRecorder,
        node: Node,
        parent: Node,
        label: Label,
        parent_label: Label,
    ) -> None:
        """:func:`propagate_element_label` plus origin bookkeeping."""
        own_r, own_rw, own_rd = label.R, label.RW, label.RD
        propagate_element_label(label, parent_label)
        origins = recorder.origins.setdefault(node, {})
        if own_r == EPSILON and own_rw == EPSILON:
            if label.R != EPSILON:
                origins["R"] = recorder.origin_of(parent, "R")
            if label.RW != EPSILON:
                origins["RW"] = recorder.origin_of(parent, "RW")
        elif parent_label.R != EPSILON or parent_label.RW != EPSILON:
            # The node's own recursive authorization (of either
            # strength) blocked the parent's pair — "most specific
            # overrides", a weak label overriding a strong one
            # included.
            recorder.blocked[node] = tuple(
                slot
                for slot in ("R", "RW")
                if getattr(parent_label, slot) != EPSILON
            )
        if own_rd == EPSILON and label.RD != EPSILON:
            origins["RD"] = recorder.origin_of(parent, "RD")
        if not origins:
            del recorder.origins[node]
        recorder.record_element_final(node, label)

    @staticmethod
    def _propagate_attribute_recorded(
        recorder: ProvenanceRecorder,
        node: Node,
        parent: Node,
        label: Label,
        parent_label: Label,
    ) -> None:
        """:func:`propagate_attribute_label` plus origin bookkeeping,
        including the parent instance sign that can decide an
        attribute's final without touching any of its own slots."""
        origins = recorder.origins.setdefault(node, {})
        own_weak = label.LW
        own_ld = label.LD
        label.LD = first_def(own_ld, parent_label.LD, parent_label.RD)
        if own_ld == EPSILON and label.LD != EPSILON:
            source = "LD" if parent_label.LD != EPSILON else "RD"
            origins["LD"] = recorder.origin_of(parent, source)
        label.LW = first_def(own_weak, parent_label.LW, parent_label.RW)
        if own_weak == EPSILON and label.LW != EPSILON:
            source = "LW" if parent_label.LW != EPSILON else "RW"
            origins["LW"] = recorder.origin_of(parent, source)
        parent_instance = first_def(parent_label.L, parent_label.R)
        recorder.attr_inputs[node] = (own_weak, parent_instance)
        if own_weak != EPSILON:
            label.final = first_def(label.L, label.LD, own_weak)
            if label.L != EPSILON:
                recorder.final_origin[node] = recorder.origin_of(node, "L")
            elif label.LD != EPSILON:
                recorder.final_origin[node] = origins.get("LD", (node, "LD"))
            else:
                recorder.final_origin[node] = (node, "LW")
        else:
            label.final = first_def(
                label.L, parent_label.L, parent_label.R, label.LD, label.LW
            )
            if label.L != EPSILON:
                recorder.final_origin[node] = recorder.origin_of(node, "L")
            elif parent_label.L != EPSILON:
                recorder.final_origin[node] = recorder.origin_of(parent, "L")
            elif parent_label.R != EPSILON:
                recorder.final_origin[node] = recorder.origin_of(parent, "R")
            elif label.LD != EPSILON:
                recorder.final_origin[node] = origins.get("LD", (node, "LD"))
            elif label.LW != EPSILON:
                recorder.final_origin[node] = origins.get("LW", (node, "LW"))
            else:
                recorder.final_origin[node] = None
        if not origins:
            del recorder.origins[node]

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _push_children(element: Element, stack: list[tuple[Node, Element]]) -> None:
        for attribute in element.attributes.values():
            stack.append((attribute, element))
        for child in element.children:
            stack.append((child, element))
