"""Decision explanation: *why* is this node visible (or not)?

Policy debugging is the first thing an administrator of this model
needs: with propagation, overriding, weak types and two specification
levels, "why can Tom see this?" has a non-obvious answer. This module
re-runs the labeling for one requester with provenance tracking and
renders, per node:

- the final sign and which label slot decided it,
- for slots set directly: every authorization that survived the
  most-specific-subject filter (and the ones it eliminated),
- for inherited slots: which ancestor the sign propagated from,
- why the node is/isn't in the emitted view (own sign vs structural
  survivor).

Entry points: :func:`explain` (one node) and :func:`explain_view`
(whole-document report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy, EPSILON
from repro.authz.store import AuthorizationStore
from repro.core.labeling import SLOTS, TreeLabeler
from repro.core.labels import Label
from repro.errors import ReproError
from repro.subjects.hierarchy import Requester
from repro.xml.nodes import Document, Element, Node
from repro.xml.traversal import node_path, preorder
from repro.xpath.compile import RelativeMode, compile_xpath

__all__ = ["SlotOrigin", "NodeExplanation", "explain", "explain_view", "TracingLabeler"]


@dataclass
class SlotOrigin:
    """Where one slot's sign came from."""

    slot: str
    sign: str
    #: "direct" (authorizations on the node), "inherited" (propagated
    #: from an ancestor) or "none".
    kind: str
    winners: list[Authorization] = field(default_factory=list)
    overridden: list[Authorization] = field(default_factory=list)
    inherited_from: Optional[Node] = None

    def describe(self) -> str:
        if self.kind == "none":
            return f"{self.slot}: ε"
        if self.kind == "direct":
            winners = "; ".join(a.unparse() for a in self.winners) or "(policy)"
            text = f"{self.slot}: {self.sign} from {winners}"
            if self.overridden:
                text += (
                    " [overrode: "
                    + "; ".join(a.unparse() for a in self.overridden)
                    + "]"
                )
            return text
        source = node_path(self.inherited_from) if self.inherited_from else "?"
        return f"{self.slot}: {self.sign} inherited from {source}"


@dataclass
class NodeExplanation:
    """The full story for one node."""

    path: str
    final: str
    deciding_slot: Optional[str]
    origins: list[SlotOrigin]
    in_view: bool
    structural_only: bool  # kept only because a descendant is visible

    def describe(self) -> str:
        lines = [f"{self.path}: final={self.final}"]
        if self.deciding_slot:
            deciding = next(
                origin for origin in self.origins if origin.slot == self.deciding_slot
            )
            lines.append(f"  decided by {deciding.describe()}")
        elif self.final != EPSILON:
            # Attributes can receive their final sign straight from the
            # parent element's composed instance signs (no slot records it).
            lines.append(
                f"  decided by the parent element's sign ({self.final})"
            )
        else:
            lines.append("  no authorization applies (ε)")
        for origin in self.origins:
            if origin.slot != self.deciding_slot and origin.kind != "none":
                lines.append(f"  also {origin.describe()}")
        if self.in_view and self.structural_only:
            lines.append(
                "  in view as a bare tag only (a descendant is visible)"
            )
        elif self.in_view:
            lines.append("  in view")
        else:
            lines.append("  not in view")
        return "\n".join(lines)


class TracingLabeler(TreeLabeler):
    """A TreeLabeler that records per-slot provenance."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # node -> slot -> ("direct", winners, overridden)
        self.direct: dict[Node, dict[str, tuple[list, list]]] = {}
        # node -> slot -> ancestor the value propagated from
        self.inherited: dict[Node, dict[str, Node]] = {}
        self._current_parent: Optional[Node] = None
        self._parents: dict[Node, Node] = {}

    # -- provenance capture ---------------------------------------------------

    def _initial_label(self, node):  # type: ignore[override]
        label = Label()
        slots = self._node_slot_auths.get(node)
        if not slots:
            return label
        per_slot: dict[str, tuple[list, list]] = {}
        for slot, authorizations in slots.items():
            survivors = self._most_specific(authorizations)
            overridden = [a for a in authorizations if a not in survivors]
            sign = self._policy.resolve([a.sign for a in survivors])
            setattr(label, slot, sign)
            if sign != EPSILON:
                per_slot[slot] = (survivors, overridden)
        if per_slot:
            self.direct[node] = per_slot
        return label

    def _label_node(self, node, parent_label):  # type: ignore[override]
        before = self._initial_label(node)
        snapshot = {slot: getattr(before, slot) for slot in SLOTS}
        label = super()._label_node(node, parent_label)
        parent = self._parents.get(node)
        changed = {
            slot: getattr(label, slot)
            for slot in SLOTS
            if getattr(label, slot) != snapshot[slot]
            and getattr(label, slot) != EPSILON
        }
        if changed and parent is not None:
            record = self.inherited.setdefault(node, {})
            for slot in changed:
                record[slot] = self._find_propagation_source(parent, slot)
        return label

    def run(self):  # type: ignore[override]
        # Build a parent map first (the base class walks with a stack).
        root = self._root
        if root is not None:
            for node in preorder(root):
                if isinstance(node, Element):
                    for attribute in node.attributes.values():
                        self._parents[attribute] = node
                    for child in node.children:
                        self._parents[child] = node
        return super().run()

    def _find_propagation_source(self, parent: Node, slot: str) -> Node:
        """The nearest ancestor-or-self of *parent* that set *slot*
        directly (attributes inherit via composed slots; approximate to
        the nearest ancestor carrying any direct recursive sign)."""
        current: Optional[Node] = parent
        while current is not None:
            direct = self.direct.get(current, {})
            if slot in direct:
                return current
            # Attribute slots compose from recursive parents.
            if slot in ("LD", "LW") and any(
                composed in direct for composed in (slot, "RD", "RW", "L", "R")
            ):
                return current
            current = self._parents.get(current)
        return parent


def explain(
    document: Document,
    target: str | Node,
    requester: Requester,
    store: AuthorizationStore,
    dtd_uri: Optional[str] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    action: str = "read",
) -> NodeExplanation:
    """Explain the decision for one node (an XPath string or a node).

    Raises :class:`ReproError` when the path selects no node or more
    than one (explanations are per node — refine the path).
    """
    if isinstance(target, str):
        nodes = compile_xpath(target, relative_mode).select(document)
        if len(nodes) != 1:
            raise ReproError(
                f"explain() needs exactly one node; {target!r} selected "
                f"{len(nodes)}"
            )
        node = nodes[0]
    else:
        node = target
    report = explain_view(
        document,
        requester,
        store,
        dtd_uri=dtd_uri,
        policy=policy,
        open_policy=open_policy,
        relative_mode=relative_mode,
        action=action,
    )
    found = report.get(node)
    if found is None:
        raise ReproError("target node does not belong to the document")
    return found


def explain_view(
    document: Document,
    requester: Requester,
    store: AuthorizationStore,
    dtd_uri: Optional[str] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    action: str = "read",
) -> dict[Node, NodeExplanation]:
    """Explanations for every node of *document* under one request."""
    uri = document.uri or ""
    instance = store.applicable(requester, uri, action) if uri else []
    resolved = dtd_uri or (document.dtd.uri if document.dtd else None) or document.system_id
    schema = store.applicable(requester, resolved, action) if resolved else []
    labeler = TracingLabeler(
        document,
        instance,
        schema,
        store.hierarchy,
        policy=policy,
        relative_mode=relative_mode,
    )
    result = labeler.run()
    labels = result.labels

    # Visibility including structural survival.
    visible_subtree: dict[Node, bool] = {}
    root = document.root
    if root is not None:
        for node in _postorder(root):
            own = labels[node].permitted_under(open_policy)
            child_visible = False
            if isinstance(node, Element):
                child_visible = any(
                    visible_subtree.get(child, False)
                    for child in list(node.attributes.values()) + node.children
                )
            visible_subtree[node] = own or child_visible

    explanations: dict[Node, NodeExplanation] = {}
    for node, label in labels.items():
        origins: list[SlotOrigin] = []
        deciding: Optional[str] = None
        for slot in SLOTS:
            sign = getattr(label, slot)
            direct = labeler.direct.get(node, {}).get(slot)
            inherited = labeler.inherited.get(node, {}).get(slot)
            if direct is not None:
                winners, overridden = direct
                origins.append(SlotOrigin(slot, sign, "direct", winners, overridden))
            elif inherited is not None and sign != EPSILON:
                origins.append(
                    SlotOrigin(slot, sign, "inherited", inherited_from=inherited)
                )
            else:
                origins.append(SlotOrigin(slot, sign, "none" if sign == EPSILON else "direct"))
            if deciding is None and sign != EPSILON and sign == label.final:
                deciding = slot
        own_visible = label.permitted_under(open_policy)
        in_view = visible_subtree.get(node, own_visible)
        explanations[node] = NodeExplanation(
            path=node_path(node),
            final=label.final,
            deciding_slot=deciding,
            origins=origins,
            in_view=in_view,
            structural_only=in_view and not own_visible,
        )
    return explanations


def _postorder(root: Element):
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        if isinstance(node, Element):
            for child in reversed(node.children):
                stack.append((child, False))
            for attribute in reversed(list(node.attributes.values())):
                stack.append((attribute, False))