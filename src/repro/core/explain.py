"""Decision explanation: *why* is this node visible (or not)?

Policy debugging is the first thing an administrator of this model
needs: with propagation, overriding, weak types and two specification
levels, "why can Tom see this?" has a non-obvious answer. This module
runs the labeling with a :class:`~repro.core.labeling.ProvenanceRecorder`
attached and turns the recorded evidence into, per node:

- the final sign and which label slot decided it,
- for slots set directly: every candidate authorization, the ones that
  survived the most-specific-subject filter and the ones it eliminated,
- for inherited slots: the exact ancestor/slot the sign propagated from
  (recorded during propagation — no heuristics),
- whether the node's own recursive authorization blocked the parent's
  (a weak label overriding a strong one included), and whether a weak
  sign was itself overridden by a higher-priority slot,
- why the node is/isn't in the emitted view (own sign vs structural
  survivor), and the winning authorizations behind the final sign.

Entry points: :func:`explain` (one node), :func:`explain_view` /
:func:`explain_from_auths` (whole-document :class:`Explanation`), and
``SecureXMLServer.explain`` for the server facade. An
:class:`Explanation` carries enough evidence to *re-derive* every
node's final sign without re-running the labeler —
:meth:`Explanation.rederive_final` — which the differential test suite
checks against :class:`~repro.core.labeling.LabelingResult` under all
four conflict policies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy, DenialsTakePrecedence, EPSILON
from repro.authz.store import AuthorizationStore
from repro.core.labeling import SLOTS, ProvenanceRecorder, TreeLabeler
from repro.core.labels import first_def
from repro.errors import ReproError
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.xml.nodes import Attribute, Document, Element, Node
from repro.xml.traversal import node_path
from repro.xpath.compile import RelativeMode, compile_xpath

__all__ = [
    "SlotOrigin",
    "NodeExplanation",
    "Explanation",
    "explain",
    "explain_view",
    "explain_from_auths",
    "TracingLabeler",
]


@dataclass
class SlotOrigin:
    """Where one slot's sign came from."""

    slot: str
    sign: str
    #: "direct" (authorizations on the node), "inherited" (propagated
    #: from an ancestor) or "none".
    kind: str
    winners: list[Authorization] = field(default_factory=list)
    overridden: list[Authorization] = field(default_factory=list)
    inherited_from: Optional[Node] = None

    def describe(self) -> str:
        if self.kind == "none":
            return f"{self.slot}: ε"
        if self.kind == "direct":
            winners = "; ".join(a.unparse() for a in self.winners) or "(policy)"
            text = f"{self.slot}: {self.sign} from {winners}"
            if self.overridden:
                text += (
                    " [overrode: "
                    + "; ".join(a.unparse() for a in self.overridden)
                    + "]"
                )
            return text
        source = node_path(self.inherited_from) if self.inherited_from else "?"
        text = f"{self.slot}: {self.sign} inherited from {source}"
        if self.winners:
            text += " (granted by " + "; ".join(
                a.unparse() for a in self.winners
            ) + ")"
        return text

    def as_dict(self) -> dict:
        out: dict = {"slot": self.slot, "sign": self.sign, "kind": self.kind}
        if self.winners:
            out["winners"] = [a.unparse() for a in self.winners]
        if self.overridden:
            out["overridden"] = [a.unparse() for a in self.overridden]
        if self.inherited_from is not None:
            out["inherited_from"] = node_path(self.inherited_from)
        return out


@dataclass
class NodeExplanation:
    """The full story for one node."""

    path: str
    final: str
    deciding_slot: Optional[str]
    origins: list[SlotOrigin]
    in_view: bool
    structural_only: bool  # kept only because a descendant is visible
    #: The explained node itself ("element" / "attribute" / "value").
    node: Optional[Node] = None
    node_kind: str = "element"
    #: The node/slot where the final sign was decided directly
    #: (``None`` when the final is ε). ``source_path`` names the node.
    source_path: Optional[str] = None
    source_slot: Optional[str] = None
    #: The authorizations behind the final sign (empty for ε finals).
    winning: list[Authorization] = field(default_factory=list)
    #: Parent recursive slots this node's own recursive authorization
    #: blocked from propagating (weak-over-strong included).
    blocked: tuple[str, ...] = ()
    #: The node carried a weak sign that lost to a stronger slot.
    weak_overridden: bool = False
    #: Attribute-only inputs of the final-sign formula (ε otherwise).
    own_weak_sign: str = EPSILON
    parent_instance_sign: str = EPSILON

    def describe(self) -> str:
        lines = [f"{self.path}: final={self.final}"]
        if self.deciding_slot:
            deciding = next(
                origin for origin in self.origins if origin.slot == self.deciding_slot
            )
            lines.append(f"  decided by {deciding.describe()}")
        elif self.final != EPSILON:
            # Attributes can receive their final sign straight from the
            # parent element's composed instance signs (no slot records it).
            source = self.source_path or "?"
            winners = "; ".join(a.unparse() for a in self.winning)
            lines.append(
                f"  decided by the parent element's sign ({self.final}),"
                f" from {source}"
                + (f" [{winners}]" if winners else "")
            )
        else:
            lines.append("  no authorization applies (ε)")
        for origin in self.origins:
            if origin.slot != self.deciding_slot and origin.kind != "none":
                lines.append(f"  also {origin.describe()}")
        if self.blocked:
            lines.append(
                "  blocked the parent's recursive sign"
                f" ({', '.join(self.blocked)}) with its own recursive"
                " authorization"
            )
        if self.weak_overridden:
            lines.append("  its weak sign was overridden by a stronger slot")
        if self.in_view and self.structural_only:
            lines.append(
                "  in view as a bare tag only (a descendant is visible)"
            )
        elif self.in_view:
            lines.append("  in view")
        else:
            lines.append("  not in view")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        out: dict = {
            "path": self.path,
            "kind": self.node_kind,
            "final": self.final,
            "deciding_slot": self.deciding_slot,
            "in_view": self.in_view,
            "structural_only": self.structural_only,
            "origins": [o.as_dict() for o in self.origins if o.kind != "none"],
        }
        if self.source_path is not None:
            out["source"] = {"path": self.source_path, "slot": self.source_slot}
        if self.winning:
            out["winning"] = [a.unparse() for a in self.winning]
        if self.blocked:
            out["blocked_parent_slots"] = list(self.blocked)
        if self.weak_overridden:
            out["weak_overridden"] = True
        if self.node_kind == "attribute":
            out["own_weak_sign"] = self.own_weak_sign
            out["parent_instance_sign"] = self.parent_instance_sign
        return out


class Explanation:
    """Structured decision provenance for one (document, requester) pair.

    Behaves as a read-only mapping ``node -> NodeExplanation`` covering
    every node of the document, plus request metadata, optional
    ``targets`` (the nodes an XPath narrowed the question to), a
    human-readable :meth:`describe` rendering and a JSON-safe
    :meth:`as_dict` / :meth:`to_json`.

    :meth:`rederive_final` recomputes any node's final sign from the
    recorded evidence alone (no labeler, no authorizations) — the
    differential guarantee the test suite enforces.
    """

    def __init__(
        self,
        nodes: dict[Node, NodeExplanation],
        uri: str = "",
        requester: str = "",
        action: str = "read",
        policy: str = "DenialsTakePrecedence",
        open_policy: bool = False,
        targets: Optional[list[Node]] = None,
    ) -> None:
        self._nodes = nodes
        self.uri = uri
        self.requester = requester
        self.action = action
        self.policy = policy
        self.open_policy = open_policy
        self.targets: list[Node] = list(targets) if targets else []
        #: Per-stage seconds when produced through the traced facade.
        self.timings: dict[str, float] = {}

    # -- mapping protocol ----------------------------------------------------

    def __getitem__(self, node: Node) -> NodeExplanation:
        return self._nodes[node]

    def get(self, node: Node, default=None):
        return self._nodes.get(node, default)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def keys(self):
        return self._nodes.keys()

    def values(self):
        return self._nodes.values()

    def items(self):
        return self._nodes.items()

    # -- derived views -------------------------------------------------------

    @property
    def target_explanations(self) -> list[NodeExplanation]:
        return [self._nodes[node] for node in self.targets if node in self._nodes]

    @property
    def visible_nodes(self) -> int:
        return sum(1 for ne in self._nodes.values() if ne.in_view)

    def rederive_final(self, node: Node) -> str:
        """Recompute *node*'s final sign from this explanation alone.

        Elements fold their six recorded slot signs with ``first_def``;
        attributes replay the attribute formula from the recorded
        ``own_weak_sign`` / ``parent_instance_sign`` inputs; values
        (text/comment/PI) take their parent element's re-derived sign.
        """
        ne = self._nodes[node]
        if ne.node_kind == "value":
            return self.rederive_final(node.parent)
        signs = {origin.slot: origin.sign for origin in ne.origins}
        if ne.node_kind == "attribute":
            if ne.own_weak_sign != EPSILON:
                return first_def(signs["L"], signs["LD"], ne.own_weak_sign)
            return first_def(
                signs["L"], ne.parent_instance_sign, signs["LD"], signs["LW"]
            )
        return first_def(*(signs[slot] for slot in SLOTS))

    # -- renderings ----------------------------------------------------------

    def describe(self, max_nodes: Optional[int] = None) -> str:
        """Per-node decision chains; ``targets`` only when set."""
        chosen = (
            self.target_explanations
            if self.targets
            else list(self._nodes.values())
        )
        if max_nodes is not None:
            chosen = chosen[:max_nodes]
        header = (
            f"explanation for {self.requester or 'anonymous'}"
            f" on {self.uri or '(document)'}"
            f" [{self.policy}{', open' if self.open_policy else ''}]"
        )
        return "\n".join([header] + [ne.describe() for ne in chosen])

    def as_dict(self) -> dict:
        return {
            "uri": self.uri,
            "requester": self.requester,
            "action": self.action,
            "policy": self.policy,
            "open_policy": self.open_policy,
            "targets": [node_path(node) for node in self.targets],
            "visible_nodes": self.visible_nodes,
            "total_nodes": len(self._nodes),
            "nodes": [ne.as_dict() for ne in self._nodes.values()],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), ensure_ascii=False, indent=indent)


class TracingLabeler(TreeLabeler):
    """A TreeLabeler with provenance recording always on.

    Kept as the historical name for "labeler that records provenance";
    today it is a thin shim over ``TreeLabeler(recorder=...)``. The
    ``direct`` / ``inherited`` views mirror the pre-recorder API.
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("recorder", ProvenanceRecorder())
        super().__init__(*args, **kwargs)

    @property
    def recorder(self) -> ProvenanceRecorder:
        return self._recorder

    @property
    def direct(self) -> dict[Node, dict[str, tuple[list, list]]]:
        """node -> slot -> (winners, overridden), non-ε direct slots."""
        out: dict[Node, dict[str, tuple[list, list]]] = {}
        for node, decisions in self._recorder.decisions.items():
            per_slot = {
                slot: (decision.winners, decision.overridden)
                for slot, decision in decisions.items()
                if decision.sign != EPSILON
            }
            if per_slot:
                out[node] = per_slot
        return out

    @property
    def inherited(self) -> dict[Node, dict[str, Node]]:
        """node -> slot -> ancestor the slot's sign propagated from."""
        out: dict[Node, dict[str, Node]] = {}
        for node, origins in self._recorder.origins.items():
            per_slot = {
                slot: origin_node
                for slot, (origin_node, _slot) in origins.items()
                if origin_node is not node
            }
            if per_slot:
                out[node] = per_slot
        return out


def explain(
    document: Document,
    target: str | Node,
    requester: Requester,
    store: AuthorizationStore,
    dtd_uri: Optional[str] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    action: str = "read",
) -> NodeExplanation:
    """Explain the decision for one node (an XPath string or a node).

    Raises :class:`ReproError` when the path selects no node or more
    than one (explanations are per node — refine the path).
    """
    if isinstance(target, str):
        nodes = compile_xpath(target, relative_mode).select(document)
        if len(nodes) != 1:
            raise ReproError(
                f"explain() needs exactly one node; {target!r} selected "
                f"{len(nodes)}"
            )
        node = nodes[0]
    else:
        node = target
    report = explain_view(
        document,
        requester,
        store,
        dtd_uri=dtd_uri,
        policy=policy,
        open_policy=open_policy,
        relative_mode=relative_mode,
        action=action,
    )
    found = report.get(node)
    if found is None:
        raise ReproError("target node does not belong to the document")
    return found


def explain_view(
    document: Document,
    requester: Requester,
    store: AuthorizationStore,
    dtd_uri: Optional[str] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    action: str = "read",
) -> Explanation:
    """Explanations for every node of *document* under one request."""
    uri = document.uri or ""
    instance = store.applicable(requester, uri, action) if uri else []
    resolved = dtd_uri or (document.dtd.uri if document.dtd else None) or document.system_id
    schema = store.applicable(requester, resolved, action) if resolved else []
    return explain_from_auths(
        document,
        instance,
        schema,
        store.hierarchy,
        policy=policy,
        open_policy=open_policy,
        relative_mode=relative_mode,
        uri=uri,
        requester=str(requester),
        action=action,
    )


def explain_from_auths(
    document: Document,
    instance_auths: list[Authorization],
    schema_auths: list[Authorization],
    hierarchy: SubjectHierarchy,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    uri: str = "",
    requester: str = "",
    action: str = "read",
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> Explanation:
    """Build an :class:`Explanation` from pre-selected authorization
    sets — the worker behind :func:`explain_view` and the server
    facade's ``explain()``."""
    chosen_policy = policy if policy is not None else DenialsTakePrecedence()
    recorder = ProvenanceRecorder()
    labeler = TreeLabeler(
        document,
        instance_auths,
        schema_auths,
        hierarchy,
        policy=chosen_policy,
        relative_mode=relative_mode,
        limits=limits,
        deadline=deadline,
        recorder=recorder,
    )
    with span("decision.label"):
        result = labeler.run()
    with span("decision.assemble"):
        nodes = _assemble(document, result.labels, recorder, open_policy)
    return Explanation(
        nodes,
        uri=uri or (document.uri or ""),
        requester=requester,
        action=action,
        policy=type(chosen_policy).__name__,
        open_policy=open_policy,
    )


def _assemble(
    document: Document,
    labels: dict,
    recorder: ProvenanceRecorder,
    open_policy: bool,
) -> dict[Node, NodeExplanation]:
    """Turn one run's recorded provenance into per-node explanations."""
    # Visibility including structural survival (the pruning outcome).
    visible_subtree: dict[Node, bool] = {}
    root = document.root
    if root is not None:
        for node in _postorder(root):
            own = labels[node].permitted_under(open_policy)
            child_visible = False
            if isinstance(node, Element):
                child_visible = any(
                    visible_subtree.get(child, False)
                    for child in list(node.attributes.values()) + node.children
                )
            visible_subtree[node] = own or child_visible

    explanations: dict[Node, NodeExplanation] = {}
    for node, label in labels.items():
        decisions = recorder.decisions.get(node, {})
        origin_map = recorder.origins.get(node, {})
        origins: list[SlotOrigin] = []
        deciding: Optional[str] = None
        for slot in SLOTS:
            sign = getattr(label, slot)
            decision = decisions.get(slot)
            origin = origin_map.get(slot)
            if decision is not None and (origin is None or origin[0] is node):
                kind = "direct" if decision.candidates else "none"
                origins.append(
                    SlotOrigin(
                        slot, sign, kind, decision.winners, decision.overridden
                    )
                )
            elif origin is not None and origin[0] is not node and sign != EPSILON:
                source_decision = recorder.decision_at(origin)
                origins.append(
                    SlotOrigin(
                        slot,
                        sign,
                        "inherited",
                        winners=(
                            list(source_decision.winners)
                            if source_decision is not None
                            else []
                        ),
                        overridden=(
                            list(source_decision.overridden)
                            if source_decision is not None
                            else []
                        ),
                        inherited_from=origin[0],
                    )
                )
            else:
                origins.append(
                    SlotOrigin(
                        slot, sign, "none" if sign == EPSILON else "direct"
                    )
                )
            if deciding is None and sign != EPSILON and sign == label.final:
                deciding = slot
        final_origin = recorder.final_origin.get(node)
        source_decision = recorder.decision_at(final_origin)
        winning = list(source_decision.winners) if source_decision else []
        blocked = recorder.blocked.get(node, ())
        own_weak, parent_instance = recorder.attr_inputs.get(
            node, (EPSILON, EPSILON)
        )
        weak_sign = first_def(label.LW, label.RW)
        weak_overridden = (
            weak_sign != EPSILON
            and final_origin is not None
            and final_origin[1] not in ("LW", "RW")
        )
        if isinstance(node, Attribute):
            node_kind = "attribute"
        elif isinstance(node, Element):
            node_kind = "element"
        else:
            node_kind = "value"
        own_visible = label.permitted_under(open_policy)
        in_view = visible_subtree.get(node, own_visible)
        explanations[node] = NodeExplanation(
            path=node_path(node),
            final=label.final,
            deciding_slot=deciding,
            origins=origins,
            in_view=in_view,
            structural_only=in_view and not own_visible,
            node=node,
            node_kind=node_kind,
            source_path=(
                node_path(final_origin[0]) if final_origin is not None else None
            ),
            source_slot=final_origin[1] if final_origin is not None else None,
            winning=winning,
            blocked=tuple(blocked),
            weak_overridden=weak_overridden,
            own_weak_sign=own_weak,
            parent_instance_sign=parent_instance,
        )
    return explanations


def _postorder(root: Element):
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        if isinstance(node, Element):
            for child in reversed(node.children):
                stack.append((child, False))
            for attribute in reversed(list(node.attributes.values())):
                stack.append((attribute, False))
