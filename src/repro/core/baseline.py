"""Naive per-node view computation — the benchmark baseline.

The paper's contribution is that one preorder pass computes every node's
sign ("a recursive propagation algorithm ... ensures fast on-line
computation"). The obvious alternative computes each node's sign from
first principles by walking its ancestor chain, i.e. O(nodes × depth)
instead of O(nodes). This module implements that baseline with
*identical semantics* (the equivalence is property-tested), so the
benchmark comparison isolates exactly the algorithmic idea.
"""

from __future__ import annotations

from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy, DenialsTakePrecedence, EPSILON
from repro.core.labeling import TreeLabeler
from repro.core.labels import Label
from repro.core.prune import build_view
from repro.core.view import ViewResult
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import Attribute, Document, Element, Node
from repro.xml.traversal import count_nodes, preorder
from repro.xpath.compile import RelativeMode

__all__ = ["NaiveLabeler", "compute_view_naive"]


class NaiveLabeler(TreeLabeler):
    """Per-node sign computation with an ancestor walk per node.

    Reuses the parent class's authorization binning and initial_label
    (the XPath work is identical in both algorithms — the comparison is
    about the propagation strategy), but derives each node's final sign
    independently, re-walking its ancestor chain.
    """

    def run(self):  # type: ignore[override]
        from repro.core.labeling import LabelingResult

        labels: dict[Node, Label] = {}
        root = self._root
        if root is None:
            return LabelingResult(labels)
        self._bin_authorizations()

        # Cache of *initial* labels (pre-propagation) per node; the
        # naive part is the per-node ancestor walk below, not redundant
        # conflict resolution.
        initial: dict[Node, Label] = {}

        def initial_of(node: Node) -> Label:
            found = initial.get(node)
            if found is None:
                found = self._initial_label(node)
                initial[node] = found
            return found

        for node in preorder(root):
            labels[node] = self._naive_label(node, root, initial_of)
        return LabelingResult(labels, self._evaluated, len(labels))

    # -- per-node derivation ------------------------------------------------

    def _naive_label(self, node: Node, root: Element, initial_of) -> Label:
        if isinstance(node, Element):
            return self._naive_element(node, root, initial_of)
        if isinstance(node, Attribute):
            return self._naive_attribute(node, root, initial_of)
        # Text/comment/PI: parent element's final sign.
        parent = node.parent
        label = Label()
        if isinstance(parent, Element):
            label.final = self._naive_element(parent, root, initial_of).final
        return label

    def _naive_element(self, element: Element, root: Element, initial_of) -> Label:
        own = initial_of(element)
        label = Label(own.L, own.R, own.LD, own.RD, own.LW, own.RW)
        # Effective recursive pair: nearest ancestor-or-self carrying any
        # recursive instance authorization (paired blocking).
        r_eff, rw_eff = self._effective_recursive(element, root, initial_of)
        label.R = r_eff
        label.RW = rw_eff
        # Effective schema recursion: nearest ancestor-or-self with RD.
        label.RD = self._effective_rd(element, root, initial_of)
        label.compute_final()
        return label

    def _effective_recursive(
        self, element: Element, root: Element, initial_of
    ) -> tuple[str, str]:
        current: Optional[Node] = element
        while isinstance(current, Element):
            own = initial_of(current)
            if own.R != EPSILON or own.RW != EPSILON:
                return own.R, own.RW
            if current is root:
                break
            current = current.parent
        return EPSILON, EPSILON

    def _effective_rd(self, element: Element, root: Element, initial_of) -> str:
        current: Optional[Node] = element
        while isinstance(current, Element):
            own = initial_of(current)
            if own.RD != EPSILON:
                return own.RD
            if current is root:
                break
            current = current.parent
        return EPSILON

    def _naive_attribute(self, attribute: Attribute, root: Element, initial_of) -> Label:
        own = initial_of(attribute)
        label = Label(own.L, own.R, own.LD, own.RD, own.LW, own.RW)
        parent = attribute.element
        if parent is None:
            label.compute_final()
            return label
        parent_label = self._naive_element(parent, root, initial_of)
        self._propagate_to_attribute(label, parent_label)
        return label


def compute_view_naive(
    document: Document,
    instance_auths: list[Authorization],
    schema_auths: list[Authorization],
    hierarchy: Optional[SubjectHierarchy] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
) -> ViewResult:
    """compute_view using the naive per-node baseline labeler."""
    labeler = NaiveLabeler(
        document,
        instance_auths,
        schema_auths,
        hierarchy if hierarchy is not None else SubjectHierarchy(),
        policy=policy if policy is not None else DenialsTakePrecedence(),
        relative_mode=relative_mode,
    )
    labeling = labeler.run()
    view = build_view(document, labeling.labels, open_policy=open_policy)
    total = count_nodes(document.root) if document.root is not None else 0
    visible = count_nodes(view.root) if view.root is not None else 0
    return ViewResult(
        document=view,
        labels=labeling.labels,
        instance_auths=list(instance_auths),
        schema_auths=list(schema_auths),
        total_nodes=total,
        visible_nodes=visible,
    )
