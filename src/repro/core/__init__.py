"""Core: the paper's compute-view algorithm and security processor.

Public surface::

    from repro.core import (
        compute_view, compute_view_from_auths, compute_view_naive,
        TreeLabeler, NaiveLabeler, Label, first_def,
        build_view, prune_in_place, SecurityProcessor,
    )
"""

from repro.core.baseline import NaiveLabeler, compute_view_naive
from repro.core.explain import (
    Explanation,
    NodeExplanation,
    SlotOrigin,
    TracingLabeler,
    explain,
    explain_from_auths,
    explain_view,
)
from repro.core.labeling import (
    SLOTS,
    LabelingResult,
    ProvenanceRecorder,
    SlotDecision,
    TreeLabeler,
)
from repro.core.labels import EPSILON, MINUS, PLUS, Label, first_def
from repro.core.processor import ProcessorOutput, SecurityProcessor, StepTimings
from repro.core.prune import build_view, prune_in_place
from repro.core.view import ViewResult, compute_view, compute_view_from_auths

__all__ = [
    "EPSILON",
    "Explanation",
    "Label",
    "LabelingResult",
    "MINUS",
    "NaiveLabeler",
    "NodeExplanation",
    "PLUS",
    "ProcessorOutput",
    "ProvenanceRecorder",
    "SLOTS",
    "SecurityProcessor",
    "SlotDecision",
    "SlotOrigin",
    "StepTimings",
    "TracingLabeler",
    "TreeLabeler",
    "ViewResult",
    "build_view",
    "compute_view",
    "compute_view_from_auths",
    "compute_view_naive",
    "explain",
    "explain_from_auths",
    "explain_view",
    "first_def",
    "prune_in_place",
]
