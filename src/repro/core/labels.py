"""Node labels for the tree-labeling process (paper, Section 6.1).

Each node carries a 6-tuple ⟨L, R, LD, RD, LW, RW⟩ over the domain
{'+', '-', 'ε'}:

====  ==========================================================
L     Local, instance level
R     Recursive, instance level
LD    Local, DTD (schema) level
RD    Recursive, DTD (schema) level
LW    Local Weak, instance level
RW    Recursive Weak, instance level
====  ==========================================================

(Weak types exist only at the instance level: "the strength of the
authorization is only used to invert the priority between instance and
schema authorizations".)

The paper overwrites L with the winning sign at the end of each node's
visit; we keep the per-type signs intact and store the winner in a
separate :attr:`Label.final` field, which makes the propagation rules
(which read the parent's *pre-overwrite* local sign) direct to express.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.authz.conflict import EPSILON

__all__ = ["Label", "first_def", "PLUS", "MINUS", "EPSILON"]

PLUS = "+"
MINUS = "-"


def first_def(*signs: str) -> str:
    """The first sign in *signs* different from ε (paper's first_def).

    Returns ε when every argument is ε.
    """
    for sign in signs:
        if sign != EPSILON:
            return sign
    return EPSILON


@dataclass
class Label:
    """The 6-tuple of one node plus the computed final sign."""

    L: str = EPSILON
    R: str = EPSILON
    LD: str = EPSILON
    RD: str = EPSILON
    LW: str = EPSILON
    RW: str = EPSILON
    final: str = EPSILON

    def as_tuple(self) -> tuple[str, str, str, str, str, str]:
        return (self.L, self.R, self.LD, self.RD, self.LW, self.RW)

    def compute_final(self) -> str:
        """first_def over the six slots in priority order (Section 6.1):
        instance-strong, then schema, then weak."""
        self.final = first_def(self.L, self.R, self.LD, self.RD, self.LW, self.RW)
        return self.final

    @property
    def permitted(self) -> bool:
        """Closed-policy reading of the final sign."""
        return self.final == PLUS

    def permitted_under(self, open_policy: bool) -> bool:
        """Open policy treats ε as a permission, closed as a denial."""
        if self.final == PLUS:
            return True
        return open_policy and self.final == EPSILON

    def __str__(self) -> str:
        slots = ",".join(self.as_tuple())
        return f"⟨{slots}⟩→{self.final}"
