"""compute-view: the paper's Algorithm 6.1, end to end.

:func:`compute_view` runs the complete Figure 2 pipeline for one
requester and one document: select Axml and Adtd from the authorization
store, label the tree (:mod:`repro.core.labeling`), prune it
(:mod:`repro.core.prune`) and return the requester's view together with
the labeling, ready for unparsing by the processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy
from repro.authz.store import AuthorizationStore
from repro.core.labeling import LabelingResult, TreeLabeler
from repro.core.labels import Label
from repro.core.prune import build_view
from repro.limits import Deadline, ResourceLimits
from repro.obs.trace import span
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.xml.nodes import Document, Node
from repro.xml.traversal import count_nodes
from repro.xpath.compile import RelativeMode

__all__ = ["ViewResult", "compute_view", "compute_view_from_auths"]


@dataclass
class ViewResult:
    """Everything produced by one compute-view run."""

    document: Document
    labels: dict[Node, Label]
    instance_auths: list[Authorization] = field(default_factory=list)
    schema_auths: list[Authorization] = field(default_factory=list)
    total_nodes: int = 0
    visible_nodes: int = 0

    @property
    def empty(self) -> bool:
        return self.document.root is None

    @property
    def hidden_nodes(self) -> int:
        return self.total_nodes - self.visible_nodes

    def summary(self) -> str:
        return (
            f"view: {self.visible_nodes}/{self.total_nodes} nodes visible, "
            f"{len(self.instance_auths)} instance + "
            f"{len(self.schema_auths)} schema authorizations applied"
        )


def compute_view(
    document: Document,
    requester: Requester,
    store: AuthorizationStore,
    dtd_uri: Optional[str] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    action: str = "read",
    loosen_dtd: bool = True,
    at: Optional[float] = None,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> ViewResult:
    """The view of *requester* on *document* (paper, Figure 2).

    Parameters
    ----------
    document:
        The requested document; its ``uri`` selects the instance-level
        authorizations.
    requester:
        The authenticated (user, IP, hostname) triple.
    store:
        The server's authorization set and subject hierarchy.
    dtd_uri:
        The URI the document's DTD is published under (step 2's
        ``dtd(URI)``); defaults to the attached DTD's ``uri`` or the
        DOCTYPE SYSTEM identifier.
    policy:
        Conflict-resolution policy (default: denials take precedence).
    open_policy:
        ε as permission (open) instead of denial (closed, the default).
    relative_mode:
        Anchoring of relative path expressions (DESIGN.md decision 5).
    action:
        The requested action; the paper uses ``read``.
    loosen_dtd:
        Attach the loosened DTD to the returned view.
    limits, deadline:
        Optional resource guards threaded into labeling and pruning
        (see :mod:`repro.limits`); a tripped guard raises
        :class:`~repro.errors.LimitExceeded` or
        :class:`~repro.errors.DeadlineExceeded`.
    """
    uri = document.uri or ""
    with span("authz.bind"):
        instance_auths = (
            store.applicable(requester, uri, action, at=at) if uri else []
        )
        resolved_dtd_uri = _resolve_dtd_uri(document, dtd_uri)
        schema_auths = (
            store.applicable(requester, resolved_dtd_uri, action, at=at)
            if resolved_dtd_uri
            else []
        )
    return compute_view_from_auths(
        document,
        instance_auths,
        schema_auths,
        store.hierarchy,
        policy=policy,
        open_policy=open_policy,
        relative_mode=relative_mode,
        loosen_dtd=loosen_dtd,
        limits=limits,
        deadline=deadline,
    )


def compute_view_from_auths(
    document: Document,
    instance_auths: list[Authorization],
    schema_auths: list[Authorization],
    hierarchy: Optional[SubjectHierarchy] = None,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    loosen_dtd: bool = True,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> ViewResult:
    """compute-view with the authorization sets already selected.

    Useful when the caller has no store (tests, benchmarks) or wants to
    inject synthetic Axml/Adtd directly. *instance_auths* and
    *schema_auths* must already be filtered for the requester.
    """
    if deadline is None and limits is not None:
        deadline = limits.deadline()
    if deadline is not None:
        deadline.check("compute-view")
    labeler = TreeLabeler(
        document,
        instance_auths,
        schema_auths,
        hierarchy if hierarchy is not None else SubjectHierarchy(),
        policy=policy,
        relative_mode=relative_mode,
        limits=limits,
        deadline=deadline,
    )
    labeling: LabelingResult = labeler.run()
    if deadline is not None:
        deadline.check("view pruning")
    view = build_view(
        document, labeling.labels, open_policy=open_policy, loosen_dtd=loosen_dtd
    )
    total = count_nodes(document.root) if document.root is not None else 0
    visible = count_nodes(view.root) if view.root is not None else 0
    return ViewResult(
        document=view,
        labels=labeling.labels,
        instance_auths=list(instance_auths),
        schema_auths=list(schema_auths),
        total_nodes=total,
        visible_nodes=visible,
    )


def _resolve_dtd_uri(document: Document, dtd_uri: Optional[str]) -> Optional[str]:
    if dtd_uri is not None:
        return dtd_uri
    if document.dtd is not None and document.dtd.uri:
        return document.dtd.uri
    return document.system_id
