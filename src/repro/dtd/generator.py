"""Random generation of valid instances from a DTD.

Benchmarks and property tests need documents "of the same schema [that]
may widely differ in the number and structure of elements" (Section 2).
:class:`InstanceGenerator` walks a DTD's content models and emits valid
documents, with knobs for target size, repetition factors and recursion
depth. Generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ReproError
from repro.xml.nodes import Document, Element, Text
from repro.dtd.model import (
    AttributeDecl,
    AttributeType,
    ChoiceParticle,
    ContentModel,
    DTD,
    DefaultKind,
    ModelKind,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)

__all__ = ["InstanceGenerator", "generate_instance"]

_WORDS = (
    "access", "control", "model", "secure", "document", "query", "server",
    "policy", "schema", "element", "subject", "object", "view", "label",
    "markup", "semantics", "web", "data", "internal", "public",
)


class InstanceGenerator:
    """Generates valid documents conforming to a DTD.

    Parameters
    ----------
    dtd:
        The schema to generate from.
    seed:
        Seed for the internal PRNG (generation is reproducible).
    repeat_factor:
        Expected number of repetitions chosen for ``*`` / ``+``
        particles (geometric-ish distribution capped at 4x).
    max_depth:
        Hard recursion cut-off: below this depth the generator always
        picks absence/minimal branches, guaranteeing termination on
        recursive DTDs.
    optional_probability:
        Chance of materializing a ``?`` particle or implied attribute.
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        repeat_factor: float = 1.5,
        max_depth: int = 30,
        optional_probability: float = 0.5,
    ) -> None:
        if repeat_factor < 0:
            raise ReproError("repeat_factor must be non-negative")
        self._dtd = dtd
        self._rng = random.Random(seed)
        self._repeat_factor = repeat_factor
        self._max_depth = max_depth
        self._optional_probability = optional_probability
        self._id_counter = 0
        self._issued_ids: list[str] = []

    # -- public API -----------------------------------------------------------

    def document(self, root: Optional[str] = None, uri: Optional[str] = None) -> Document:
        """Generate one document; *root* defaults to a root candidate."""
        if root is None:
            root = self._dtd.root_candidates()[0]
        self._issued_ids.clear()
        element = self.element(root)
        document = Document()
        document.doctype_name = root
        document.dtd = self._dtd
        document.uri = uri
        document.append(element)
        return document

    def element(self, name: str, depth: int = 0) -> Element:
        """Generate one element subtree for declaration *name*."""
        decl = self._dtd.element(name)
        if decl is None:
            raise ReproError(f"element {name!r} is not declared in the DTD")
        element = Element(name)
        for attr_decl in decl.attributes.values():
            self._maybe_attribute(element, attr_decl)
        self._fill_content(element, decl.content, depth)
        return element

    # -- internals -----------------------------------------------------------

    def _maybe_attribute(self, element: Element, decl: AttributeDecl) -> None:
        if decl.default_kind is DefaultKind.IMPLIED:
            if self._rng.random() >= self._optional_probability:
                return
        if decl.default_kind is DefaultKind.FIXED:
            element.set_attribute(decl.name, decl.default_value or "")
            return
        if (
            decl.default_kind is DefaultKind.DEFAULT
            and self._rng.random() < 0.5
            and decl.default_value is not None
        ):
            element.set_attribute(decl.name, decl.default_value)
            return
        element.set_attribute(decl.name, self._attribute_value(decl))

    def _attribute_value(self, decl: AttributeDecl) -> str:
        kind = decl.type
        if kind in (AttributeType.ENUMERATION, AttributeType.NOTATION):
            return self._rng.choice(decl.enumeration)
        if kind is AttributeType.ID:
            self._id_counter += 1
            new_id = f"id{self._id_counter}"
            self._issued_ids.append(new_id)
            return new_id
        if kind in (AttributeType.IDREF, AttributeType.IDREFS):
            if self._issued_ids:
                return self._rng.choice(self._issued_ids)
            # No ID issued yet: issue one implicitly-consistent token;
            # validator tolerance is exercised separately in tests.
            self._id_counter += 1
            new_id = f"id{self._id_counter}"
            self._issued_ids.append(new_id)
            return new_id
        if kind in (AttributeType.NMTOKEN, AttributeType.NMTOKENS):
            return self._rng.choice(_WORDS)
        return self._phrase(1, 3)

    def _phrase(self, low: int, high: int) -> str:
        count = self._rng.randint(low, high)
        return " ".join(self._rng.choice(_WORDS) for _ in range(count))

    def _fill_content(self, element: Element, model: ContentModel, depth: int) -> None:
        if model.kind is ModelKind.EMPTY:
            return
        if model.kind is ModelKind.ANY:
            element.append(Text(self._phrase(1, 4)))
            return
        if model.kind is ModelKind.MIXED:
            element.append(Text(self._phrase(1, 5)))
            if model.mixed_names and depth < self._max_depth:
                for _ in range(self._repetitions(minimum=0)):
                    child_name = self._rng.choice(model.mixed_names)
                    element.append(self.element(child_name, depth + 1))
                    element.append(Text(self._phrase(0, 2)))
            return
        assert model.particle is not None
        self._emit_particle(element, model.particle, depth)

    def _emit_particle(self, element: Element, particle: Particle, depth: int) -> None:
        occurrence = particle.occurrence
        if occurrence is Occurrence.OPTIONAL:
            if depth >= self._max_depth or self._rng.random() >= self._optional_probability:
                return
            count = 1
        elif occurrence is Occurrence.ZERO_OR_MORE:
            count = 0 if depth >= self._max_depth else self._repetitions(minimum=0)
        elif occurrence is Occurrence.ONE_OR_MORE:
            count = 1 if depth >= self._max_depth else self._repetitions(minimum=1)
        else:
            count = 1
        for _ in range(count):
            self._emit_once(element, particle, depth)

    def _emit_once(self, element: Element, particle: Particle, depth: int) -> None:
        if isinstance(particle, NameParticle):
            element.append(self.element(particle.name, depth + 1))
        elif isinstance(particle, SequenceParticle):
            for item in particle.items:
                self._emit_particle(element, item, depth)
        elif isinstance(particle, ChoiceParticle):
            choice = self._pick_branch(particle, depth)
            self._emit_particle(element, choice, depth)
        else:  # pragma: no cover - exhaustive
            raise TypeError(type(particle).__name__)

    def _pick_branch(self, particle: ChoiceParticle, depth: int) -> Particle:
        if depth >= self._max_depth:
            # Prefer a branch that can be empty, if any, to terminate.
            for item in particle.items:
                if item.occurrence.allows_absence:
                    return item
        return self._rng.choice(particle.items)

    def _repetitions(self, minimum: int) -> int:
        count = minimum
        # Geometric-ish: each extra repetition is progressively less likely.
        probability = min(0.95, self._repeat_factor / (self._repeat_factor + 1.0))
        while count < minimum + int(4 * self._repeat_factor) + 1:
            if self._rng.random() >= probability:
                break
            count += 1
        return count


def generate_instance(
    dtd: DTD,
    seed: int = 0,
    root: Optional[str] = None,
    uri: Optional[str] = None,
    repeat_factor: float = 1.5,
) -> Document:
    """One-shot convenience wrapper around :class:`InstanceGenerator`."""
    generator = InstanceGenerator(dtd, seed=seed, repeat_factor=repeat_factor)
    return generator.document(root=root, uri=uri)
