"""The labeled-tree representation of a DTD (paper, Figure 1b).

"A DTD is represented as a labeled tree containing a node for each
attribute and element in the DTD. There is an arc between elements and
each element/attribute belonging to them, labeled with the cardinality of
the relationship. Elements are represented as circles and attributes as
squares."

:func:`dtd_tree` builds that tree (recursion through the content model,
with cycle cut-off for recursive DTDs) and :func:`render_tree` draws it
as indented ASCII, which the quickstart example prints to regenerate
Figure 1(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dtd.model import DTD, ModelKind, NameParticle, Particle

__all__ = ["DTDTreeNode", "dtd_tree", "render_tree"]


@dataclass
class DTDTreeNode:
    """One node of the DTD tree.

    Attributes
    ----------
    name:
        Element or attribute name.
    kind:
        ``"element"`` (circle) or ``"attribute"`` (square).
    cardinality:
        Label of the arc from the parent: ``""``, ``"?"``, ``"*"`` or
        ``"+"`` for elements; attributes use ``""`` when required and
        ``"?"`` when implied (an attribute occurs at most once).
    recursive:
        True when this element already appears on the path from the root
        (the subtree is not expanded again).
    """

    name: str
    kind: str
    cardinality: str = ""
    children: list["DTDTreeNode"] = field(default_factory=list)
    recursive: bool = False

    def element_count(self) -> int:
        own = 1 if self.kind == "element" else 0
        return own + sum(child.element_count() for child in self.children)

    def attribute_count(self) -> int:
        own = 1 if self.kind == "attribute" else 0
        return own + sum(child.attribute_count() for child in self.children)


def dtd_tree(dtd: DTD, root: Optional[str] = None) -> DTDTreeNode:
    """Build the labeled tree of *dtd* starting from *root*.

    When *root* is omitted, the first root candidate (an element never
    referenced as a child) is used.
    """
    if root is None:
        candidates = dtd.root_candidates()
        root = candidates[0]
    return _build(dtd, root, "", path=())


def _build(dtd: DTD, name: str, cardinality: str, path: tuple[str, ...]) -> DTDTreeNode:
    node = DTDTreeNode(name, "element", cardinality)
    if name in path:
        node.recursive = True
        return node
    decl = dtd.element(name)
    if decl is None:
        return node
    for attr in decl.attributes.values():
        node.children.append(
            DTDTreeNode(attr.name, "attribute", "" if attr.required else "?")
        )
    model = decl.content
    if model.kind is ModelKind.MIXED:
        for child_name in model.mixed_names:
            node.children.append(_build(dtd, child_name, "*", path + (name,)))
    elif model.kind is ModelKind.CHILDREN and model.particle is not None:
        for child_name, card in _particle_children(model.particle, ""):
            node.children.append(_build(dtd, child_name, card, path + (name,)))
    return node


def _particle_children(
    particle: Particle, outer: str
) -> list[tuple[str, str]]:
    """Flatten a particle to (name, effective-cardinality) pairs.

    Nested group occurrences compose: a name occurring once inside a
    ``*`` group is effectively ``*``; ``?`` inside ``+`` is ``*``; etc.
    """
    combined = _combine(outer, particle.occurrence.value)
    if isinstance(particle, NameParticle):
        return [(particle.name, combined)]
    pairs: list[tuple[str, str]] = []
    for item in particle.items:
        pairs.extend(_particle_children(item, combined))
    return pairs


_CARD_ORDER = {"": 0, "?": 1, "+": 2, "*": 3}


def _combine(outer: str, inner: str) -> str:
    """Compose two occurrence indicators (outer group, inner particle)."""
    if outer == "" or outer == inner:
        return inner
    if inner == "":
        return outer
    if {outer, inner} == {"?", "+"}:
        return "*"
    # Any combination involving '*' is '*'; '?'+'?'='?', '+'+'+'='+'
    if "*" in (outer, inner):
        return "*"
    return inner if _CARD_ORDER[inner] > _CARD_ORDER[outer] else outer


def render_tree(node: DTDTreeNode, indent: str = "", is_last: bool = True) -> str:
    """Render the tree as ASCII, one node per line.

    Elements print as ``(name)`` (circles), attributes as ``[name]``
    (squares); the arc label (cardinality) precedes the node.
    """
    lines: list[str] = []
    _render(node, "", True, lines, is_root=True)
    return "\n".join(lines)


def _render(
    node: DTDTreeNode,
    prefix: str,
    is_last: bool,
    lines: list[str],
    is_root: bool = False,
) -> None:
    shape = f"({node.name})" if node.kind == "element" else f"[{node.name}]"
    if node.recursive:
        shape += " (recursive)"
    label = f"{node.cardinality} " if node.cardinality else ""
    if is_root:
        lines.append(shape)
        child_prefix = ""
    else:
        connector = "`--" if is_last else "|--"
        lines.append(f"{prefix}{connector}{label}{shape}")
        child_prefix = prefix + ("   " if is_last else "|  ")
    for index, child in enumerate(node.children):
        _render(child, child_prefix, index == len(node.children) - 1, lines)
