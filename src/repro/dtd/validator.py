"""Validation of documents against a DTD.

The paper's processor parses "a valid XML document" (Section 7, step 1)
and guarantees the emitted view is "valid with respect to the loosened
version of its original DTD" (step 3). This module provides both checks:

- :func:`validate` — full validation returning a :class:`ValidationReport`
  (or raising :class:`~repro.errors.ValidationError`);
- :func:`apply_defaults` — injects declared attribute defaults into a
  parsed document, as a validating parser would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ValidationError
from repro.xml.chars import is_name, is_nmtoken
from repro.xml.nodes import Document, Element, Node, Text
from repro.xml.traversal import iter_elements, node_path
from repro.dtd.content_model import explain_mismatch, match_children
from repro.dtd.model import (
    AttributeDecl,
    AttributeType,
    DTD,
    DefaultKind,
    ElementDecl,
    ModelKind,
)

__all__ = [
    "ValidationReport",
    "validate",
    "apply_defaults",
    "normalize_attributes",
    "lint_dtd",
]


def lint_dtd(dtd: DTD) -> list[str]:
    """Static checks on a DTD itself (not on any instance).

    Reports:

    - non-deterministic content models (an XML 1.0 compatibility
      error, e.g. ``(a?, a)``);
    - child names referenced in a content model but never declared;
    - more than one ID attribute on one element (forbidden by the spec).
    """
    from repro.dtd.content_model import check_deterministic

    problems: list[str] = []
    for name, decl in dtd.elements.items():
        offender = check_deterministic(decl.content)
        if offender is not None:
            problems.append(
                f"element {name!r}: content model {decl.content.unparse()} is "
                f"not deterministic (ambiguous on <{offender}>)"
            )
        for child in sorted(decl.content.allowed_child_names()):
            if dtd.element(child) is None:
                problems.append(
                    f"element {name!r}: child <{child}> is never declared"
                )
        id_attrs = [
            attr.name
            for attr in decl.attributes.values()
            if attr.type is AttributeType.ID
        ]
        if len(id_attrs) > 1:
            problems.append(
                f"element {name!r}: more than one ID attribute "
                f"({', '.join(id_attrs)})"
            )
    return problems


@dataclass
class ValidationReport:
    """Outcome of validating one document against one DTD."""

    violations: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.violations

    def add(self, node: Node, message: str) -> None:
        self.violations.append(f"{node_path(node)}: {message}")

    def raise_if_invalid(self) -> None:
        if self.violations:
            raise ValidationError(self.violations)

    def __bool__(self) -> bool:  # truthiness == validity, reads naturally
        return self.valid


def validate(
    document: Document | Element,
    dtd: Optional[DTD] = None,
    raise_on_error: bool = False,
    check_ids: bool = True,
) -> ValidationReport:
    """Validate *document* against *dtd*.

    Parameters
    ----------
    document:
        A document (its attached ``dtd`` is used when *dtd* is omitted)
        or a bare element subtree.
    dtd:
        The DTD to validate against; overrides the attached one.
    raise_on_error:
        Raise :class:`ValidationError` instead of returning a failing
        report.
    check_ids:
        Perform ID-uniqueness and IDREF-resolution checks.
    """
    report = ValidationReport()
    if dtd is None and isinstance(document, Document):
        dtd = document.dtd
    if dtd is None:
        report.violations.append("no DTD available to validate against")
        if raise_on_error:
            report.raise_if_invalid()
        return report

    root: Optional[Element]
    if isinstance(document, Document):
        root = document.root
        if root is None:
            report.violations.append("document has no root element")
        elif document.doctype_name and root.name != document.doctype_name:
            report.violations.append(
                f"root element <{root.name}> does not match DOCTYPE "
                f"{document.doctype_name!r}"
            )
    else:
        root = document

    ids_seen: dict[str, Element] = {}
    idrefs: list[tuple[Element, str]] = []
    if root is not None:
        for element in iter_elements(root):
            decl = dtd.element(element.name)
            if decl is None:
                report.add(element, f"element <{element.name}> is not declared")
                continue
            _check_content(element, decl, report)
            _check_attributes(element, decl, report, ids_seen, idrefs)

    if check_ids:
        for element, ref in idrefs:
            if ref not in ids_seen:
                report.add(element, f"IDREF {ref!r} does not match any ID")

    if raise_on_error:
        report.raise_if_invalid()
    return report


def _check_content(element: Element, decl: ElementDecl, report: ValidationReport) -> None:
    model = decl.content
    child_names = [child.name for child in element.child_elements()]
    has_text = any(
        isinstance(child, Text) and child.data.strip() for child in element.children
    )
    if model.kind is ModelKind.EMPTY:
        if element.children:
            report.add(element, "declared EMPTY but has content")
        return
    if model.kind is ModelKind.ANY:
        return
    if model.kind is ModelKind.MIXED:
        if not match_children(model, child_names):
            report.add(element, explain_mismatch(model, child_names))
        return
    # CHILDREN model: no significant character data allowed.
    if has_text:
        report.add(element, "element content may not contain character data")
    if not match_children(model, child_names):
        report.add(element, explain_mismatch(model, child_names))


def _check_attributes(
    element: Element,
    decl: ElementDecl,
    report: ValidationReport,
    ids_seen: dict[str, Element],
    idrefs: list[tuple[Element, str]],
) -> None:
    for attr_name, attr in element.attributes.items():
        attr_decl = decl.attributes.get(attr_name)
        if attr_decl is None:
            report.add(
                element,
                f"attribute {attr_name!r} is not declared for <{element.name}>",
            )
            continue
        _check_attribute_value(element, attr_decl, attr.value, report, ids_seen, idrefs)
    for attr_decl in decl.attributes.values():
        if attr_decl.required and not element.has_attribute(attr_decl.name):
            report.add(
                element,
                f"required attribute {attr_decl.name!r} is missing",
            )


def _check_attribute_value(
    element: Element,
    attr_decl: AttributeDecl,
    value: str,
    report: ValidationReport,
    ids_seen: dict[str, Element],
    idrefs: list[tuple[Element, str]],
) -> None:
    name = attr_decl.name
    kind = attr_decl.type
    if attr_decl.default_kind is DefaultKind.FIXED and value != attr_decl.default_value:
        report.add(
            element,
            f"attribute {name!r} is #FIXED to {attr_decl.default_value!r} "
            f"but has value {value!r}",
        )
    if kind is AttributeType.CDATA:
        return
    if kind in (AttributeType.ENUMERATION, AttributeType.NOTATION):
        if value not in attr_decl.enumeration:
            report.add(
                element,
                f"attribute {name!r} value {value!r} not in "
                f"{list(attr_decl.enumeration)!r}",
            )
        return
    if kind is AttributeType.ID:
        if not is_name(value):
            report.add(element, f"ID attribute {name!r} value {value!r} is not a name")
        elif value in ids_seen:
            report.add(element, f"duplicate ID {value!r}")
        else:
            ids_seen[value] = element
        return
    if kind is AttributeType.IDREF:
        if not is_name(value):
            report.add(
                element, f"IDREF attribute {name!r} value {value!r} is not a name"
            )
        else:
            idrefs.append((element, value))
        return
    if kind is AttributeType.IDREFS:
        tokens = value.split()
        if not tokens:
            report.add(element, f"IDREFS attribute {name!r} is empty")
        for token in tokens:
            if not is_name(token):
                report.add(
                    element, f"IDREFS attribute {name!r} token {token!r} is not a name"
                )
            else:
                idrefs.append((element, token))
        return
    if kind in (AttributeType.ENTITY,):
        if not is_name(value):
            report.add(
                element, f"ENTITY attribute {name!r} value {value!r} is not a name"
            )
        return
    if kind is AttributeType.ENTITIES:
        for token in value.split() or [""]:
            if not is_name(token):
                report.add(
                    element,
                    f"ENTITIES attribute {name!r} token {token!r} is not a name",
                )
        return
    if kind is AttributeType.NMTOKEN:
        if not is_nmtoken(value):
            report.add(
                element, f"NMTOKEN attribute {name!r} value {value!r} is not a token"
            )
        return
    if kind is AttributeType.NMTOKENS:
        for token in value.split() or [""]:
            if not is_nmtoken(token):
                report.add(
                    element,
                    f"NMTOKENS attribute {name!r} token {token!r} is not a token",
                )
        return


def normalize_attributes(
    document: Document | Element, dtd: Optional[DTD] = None
) -> int:
    """Tokenized-type attribute-value normalization (XML 1.0 §3.3.3).

    A validating parser further normalizes attribute values whose
    declared type is *not* CDATA: leading/trailing spaces are stripped
    and internal space runs collapse to a single space. Our parser is
    non-validating, so this is an explicit post-pass like
    :func:`apply_defaults`. Returns the number of values changed.
    """
    if dtd is None and isinstance(document, Document):
        dtd = document.dtd
    if dtd is None:
        return 0
    root = document.root if isinstance(document, Document) else document
    if root is None:
        return 0
    changed = 0
    for element in iter_elements(root):
        decl = dtd.element(element.name)
        if decl is None:
            continue
        for attr_name, attr in element.attributes.items():
            attr_decl = decl.attributes.get(attr_name)
            if attr_decl is None or attr_decl.type is AttributeType.CDATA:
                continue
            normalized = " ".join(attr.value.split())
            if normalized != attr.value:
                attr.value = normalized
                changed += 1
    return changed


def apply_defaults(document: Document | Element, dtd: Optional[DTD] = None) -> int:
    """Add declared default/fixed attribute values missing from elements.

    Returns the number of attributes added. A validating parser performs
    this augmentation; ours keeps it as an explicit post-pass so parsed
    trees stay byte-faithful unless the caller opts in.
    """
    if dtd is None and isinstance(document, Document):
        dtd = document.dtd
    if dtd is None:
        return 0
    root = document.root if isinstance(document, Document) else document
    if root is None:
        return 0
    added = 0
    for element in iter_elements(root):
        decl = dtd.element(element.name)
        if decl is None:
            continue
        for attr_decl in decl.attributes.values():
            has_default = attr_decl.default_kind in (
                DefaultKind.DEFAULT,
                DefaultKind.FIXED,
            )
            if has_default and not element.has_attribute(attr_decl.name):
                element.set_attribute(attr_decl.name, attr_decl.default_value or "")
                added += 1
    return added
