"""DTD substrate: parser, model, validator, loosening, tree, generator.

Public surface::

    from repro.dtd import (
        parse_dtd, validate, apply_defaults, loosen, dtd_tree, render_tree,
        generate_instance, DTD, ElementDecl, AttributeDecl, ContentModel,
    )
"""

from repro.dtd.content_model import (
    ContentAutomaton,
    check_deterministic,
    compile_model,
    match_children,
)
from repro.dtd.generator import InstanceGenerator, generate_instance
from repro.dtd.loosen import loosen, validate_against_loosened
from repro.dtd.model import (
    AttributeDecl,
    AttributeType,
    ChoiceParticle,
    ContentModel,
    DTD,
    DefaultKind,
    ElementDecl,
    ModelKind,
    NameParticle,
    Occurrence,
    SequenceParticle,
)
from repro.dtd.parser import parse_content_model, parse_dtd
from repro.dtd.serializer import serialize_dtd, serialize_element_decl
from repro.dtd.tree import DTDTreeNode, dtd_tree, render_tree
from repro.dtd.validator import (
    ValidationReport,
    apply_defaults,
    lint_dtd,
    normalize_attributes,
    validate,
)

__all__ = [
    "AttributeDecl",
    "AttributeType",
    "ChoiceParticle",
    "ContentAutomaton",
    "ContentModel",
    "DTD",
    "DTDTreeNode",
    "DefaultKind",
    "ElementDecl",
    "InstanceGenerator",
    "ModelKind",
    "NameParticle",
    "Occurrence",
    "SequenceParticle",
    "ValidationReport",
    "apply_defaults",
    "check_deterministic",
    "compile_model",
    "dtd_tree",
    "generate_instance",
    "lint_dtd",
    "loosen",
    "match_children",
    "normalize_attributes",
    "parse_content_model",
    "parse_dtd",
    "render_tree",
    "serialize_dtd",
    "serialize_element_decl",
    "validate",
    "validate_against_loosened",
]
