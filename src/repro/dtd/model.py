"""Object model for Document Type Definitions.

A :class:`DTD` holds element declarations (with their content models),
attribute-list declarations, and entity declarations — the components the
paper uses (Section 2; entities/notations are parsed but, as in the
paper, not part of the authorization model).

Content models are an AST mirroring the extended-BNF notation of DTDs:

- :class:`NameParticle` — a child element name;
- :class:`SequenceParticle` — ``(a, b, c)``;
- :class:`ChoiceParticle` — ``(a | b | c)``;

each carrying an *occurrence* indicator: ``""`` exactly once, ``"?"``
zero-or-one, ``"*"`` zero-or-more, ``"+"`` one-or-more. The special
models ``EMPTY``, ``ANY`` and mixed content ``(#PCDATA | a | ...)*`` are
represented by :class:`ContentModel` kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Union

__all__ = [
    "Occurrence",
    "NameParticle",
    "SequenceParticle",
    "ChoiceParticle",
    "Particle",
    "ModelKind",
    "ContentModel",
    "AttributeType",
    "DefaultKind",
    "AttributeDecl",
    "ElementDecl",
    "DTD",
]


class Occurrence(str, Enum):
    """Occurrence indicator of a content particle."""

    ONCE = ""
    OPTIONAL = "?"
    ZERO_OR_MORE = "*"
    ONE_OR_MORE = "+"

    @property
    def allows_absence(self) -> bool:
        return self in (Occurrence.OPTIONAL, Occurrence.ZERO_OR_MORE)

    @property
    def allows_repetition(self) -> bool:
        return self in (Occurrence.ZERO_OR_MORE, Occurrence.ONE_OR_MORE)

    def loosened(self) -> "Occurrence":
        """The occurrence after DTD loosening: absence always allowed."""
        if self is Occurrence.ONCE:
            return Occurrence.OPTIONAL
        if self is Occurrence.ONE_OR_MORE:
            return Occurrence.ZERO_OR_MORE
        return self


@dataclass
class NameParticle:
    """A single child element name with an occurrence indicator."""

    name: str
    occurrence: Occurrence = Occurrence.ONCE

    def unparse(self) -> str:
        return f"{self.name}{self.occurrence.value}"

    def loosened(self) -> "NameParticle":
        return NameParticle(self.name, self.occurrence.loosened())

    def names(self) -> Iterator[str]:
        yield self.name


@dataclass
class SequenceParticle:
    """An ordered group ``(p1, p2, ...)`` with an occurrence indicator."""

    items: list["Particle"]
    occurrence: Occurrence = Occurrence.ONCE

    def unparse(self) -> str:
        inner = ", ".join(item.unparse() for item in self.items)
        return f"({inner}){self.occurrence.value}"

    def loosened(self) -> "SequenceParticle":
        return SequenceParticle(
            [item.loosened() for item in self.items], self.occurrence.loosened()
        )

    def names(self) -> Iterator[str]:
        for item in self.items:
            yield from item.names()


@dataclass
class ChoiceParticle:
    """An alternative group ``(p1 | p2 | ...)`` with an occurrence."""

    items: list["Particle"]
    occurrence: Occurrence = Occurrence.ONCE

    def unparse(self) -> str:
        inner = " | ".join(item.unparse() for item in self.items)
        return f"({inner}){self.occurrence.value}"

    def loosened(self) -> "ChoiceParticle":
        # Loosening the group is enough to allow absence, but loosening
        # the branches too keeps the transformation uniform ("define as
        # optional all the elements ... marked as required").
        return ChoiceParticle(
            [item.loosened() for item in self.items], self.occurrence.loosened()
        )

    def names(self) -> Iterator[str]:
        for item in self.items:
            yield from item.names()


Particle = Union[NameParticle, SequenceParticle, ChoiceParticle]


class ModelKind(Enum):
    """The four flavours of element content in XML 1.0."""

    EMPTY = "EMPTY"
    ANY = "ANY"
    MIXED = "MIXED"
    CHILDREN = "CHILDREN"


@dataclass
class ContentModel:
    """The declared content of an element.

    ``kind == CHILDREN`` uses :attr:`particle`; ``kind == MIXED`` uses
    :attr:`mixed_names` (possibly empty for pure ``(#PCDATA)``).
    """

    kind: ModelKind
    particle: Optional[Particle] = None
    mixed_names: tuple[str, ...] = ()

    def unparse(self) -> str:
        if self.kind is ModelKind.EMPTY:
            return "EMPTY"
        if self.kind is ModelKind.ANY:
            return "ANY"
        if self.kind is ModelKind.MIXED:
            if not self.mixed_names:
                return "(#PCDATA)"
            names = " | ".join(self.mixed_names)
            return f"(#PCDATA | {names})*"
        assert self.particle is not None
        rendered = self.particle.unparse()
        # A bare name particle needs the grammar's mandatory parentheses:
        # '<!ELEMENT a (b+)>', never '<!ELEMENT a b+>'.
        if isinstance(self.particle, NameParticle):
            return f"({rendered})"
        return rendered

    def loosened(self) -> "ContentModel":
        """The content model after loosening (Section 6.2).

        Child particles become omissible; EMPTY/ANY/mixed models already
        allow absence of any specific child, so they are unchanged.
        """
        if self.kind is ModelKind.CHILDREN:
            assert self.particle is not None
            particle = self.particle.loosened()
            # Guarantee the whole content may be absent (a fully pruned
            # element must still be valid as a bare tag).
            if particle.occurrence is Occurrence.ONCE:
                particle = _with_occurrence(particle, Occurrence.OPTIONAL)
            return ContentModel(ModelKind.CHILDREN, particle)
        return self

    def allowed_child_names(self) -> set[str]:
        """Every element name that may appear as a direct child."""
        if self.kind is ModelKind.MIXED:
            return set(self.mixed_names)
        if self.kind is ModelKind.CHILDREN and self.particle is not None:
            return set(self.particle.names())
        return set()


def _with_occurrence(particle: Particle, occurrence: Occurrence) -> Particle:
    if isinstance(particle, NameParticle):
        return NameParticle(particle.name, occurrence)
    if isinstance(particle, SequenceParticle):
        return SequenceParticle(particle.items, occurrence)
    return ChoiceParticle(particle.items, occurrence)


class AttributeType(Enum):
    """Declared attribute types (tokenized types beyond those used by
    the paper are included for completeness)."""

    CDATA = "CDATA"
    ID = "ID"
    IDREF = "IDREF"
    IDREFS = "IDREFS"
    ENTITY = "ENTITY"
    ENTITIES = "ENTITIES"
    NMTOKEN = "NMTOKEN"
    NMTOKENS = "NMTOKENS"
    NOTATION = "NOTATION"
    ENUMERATION = "ENUMERATION"


class DefaultKind(Enum):
    """Attribute default declarations (Section 2 of the paper)."""

    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = ""  # a plain default value


@dataclass
class AttributeDecl:
    """One attribute definition inside an ``<!ATTLIST>``."""

    name: str
    type: AttributeType
    default_kind: DefaultKind
    default_value: Optional[str] = None
    enumeration: tuple[str, ...] = ()

    @property
    def required(self) -> bool:
        return self.default_kind is DefaultKind.REQUIRED

    def loosened(self) -> "AttributeDecl":
        """Required attributes become implied; others are unchanged."""
        if self.default_kind is DefaultKind.REQUIRED:
            return AttributeDecl(
                self.name, self.type, DefaultKind.IMPLIED, None, self.enumeration
            )
        return self

    def unparse(self) -> str:
        if self.type is AttributeType.ENUMERATION:
            type_text = "(" + " | ".join(self.enumeration) + ")"
        elif self.type is AttributeType.NOTATION:
            type_text = "NOTATION (" + " | ".join(self.enumeration) + ")"
        else:
            type_text = self.type.value
        if self.default_kind is DefaultKind.FIXED:
            default = f'#FIXED "{self.default_value}"'
        elif self.default_kind is DefaultKind.DEFAULT:
            default = f'"{self.default_value}"'
        else:
            default = self.default_kind.value
        return f"{self.name} {type_text} {default}"


@dataclass
class ElementDecl:
    """An ``<!ELEMENT>`` declaration plus its attribute list."""

    name: str
    content: ContentModel
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)

    def loosened(self) -> "ElementDecl":
        return ElementDecl(
            self.name,
            self.content.loosened(),
            {name: attr.loosened() for name, attr in self.attributes.items()},
        )


@dataclass
class DTD:
    """A parsed Document Type Definition.

    Attributes
    ----------
    elements:
        Element declarations keyed by name.
    general_entities:
        ``<!ENTITY name "value">`` declarations (made available to the
        XML parser for reference expansion).
    parameter_entities:
        ``<!ENTITY % name "value">`` declarations (expanded at DTD parse
        time only, as the spec requires).
    notations:
        Notation names (declaration bodies are not modelled; the paper
        excludes them from the authorization model).
    uri:
        Where this DTD lives; authorization objects reference it.
    """

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    general_entities: dict[str, str] = field(default_factory=dict)
    parameter_entities: dict[str, str] = field(default_factory=dict)
    notations: dict[str, str] = field(default_factory=dict)
    uri: Optional[str] = None

    def element(self, name: str) -> Optional[ElementDecl]:
        return self.elements.get(name)

    def declare_element(self, decl: ElementDecl) -> ElementDecl:
        self.elements[decl.name] = decl
        return decl

    def root_candidates(self) -> list[str]:
        """Element names never referenced as children — likely roots.

        A DTD does not name its root (the DOCTYPE does); this heuristic
        is used by the instance generator and the tree renderer.
        """
        referenced: set[str] = set()
        for decl in self.elements.values():
            referenced |= decl.content.allowed_child_names()
        roots = [name for name in self.elements if name not in referenced]
        return roots or list(self.elements)

    def loosened(self) -> "DTD":
        """The loosened DTD of Section 6.2.

        Every element marked required in a content model becomes
        optional and every ``#REQUIRED`` attribute becomes ``#IMPLIED``,
        so views with pruned nodes remain valid and requesters cannot
        tell security pruning from genuinely absent data.
        """
        return DTD(
            elements={
                name: decl.loosened() for name, decl in self.elements.items()
            },
            general_entities=dict(self.general_entities),
            parameter_entities=dict(self.parameter_entities),
            notations=dict(self.notations),
            uri=self.uri,
        )
