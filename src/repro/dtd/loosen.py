"""DTD loosening (paper, Section 6.2).

"Loosening a DTD simply means to define as optional all the elements and
attributes marked as required in the original DTD. The DTD loosening
prevents users from detecting whether information was hidden by the
security enforcement or simply missing in the original document."

The transformation itself lives on the model classes
(:meth:`repro.dtd.model.DTD.loosened` and friends); this module provides
the public entry point plus helpers tying loosening to view emission.
"""

from __future__ import annotations

from typing import Optional

from repro.xml.nodes import Document
from repro.dtd.model import DTD
from repro.dtd.validator import ValidationReport, validate

__all__ = ["loosen", "validate_against_loosened"]


def loosen(dtd: DTD) -> DTD:
    """Return the loosened version of *dtd* (the input is not mutated).

    - every child particle marked exactly-once becomes ``?`` and every
      ``+`` becomes ``*`` (absence always allowed);
    - every ``#REQUIRED`` attribute becomes ``#IMPLIED``.
    """
    return dtd.loosened()


def validate_against_loosened(
    view: Document, dtd: Optional[DTD] = None
) -> ValidationReport:
    """Validate a computed *view* against the loosened version of *dtd*.

    This is the guarantee of Section 7 step 3: "this pruning preserves
    the validity of the document with respect to the loosened version of
    its original DTD". IDREF checks are skipped: pruning may legitimately
    remove the element an IDREF pointed to, and revealing that the target
    existed would leak hidden information.
    """
    if dtd is None:
        dtd = view.dtd
    if dtd is None:
        report = ValidationReport()
        report.violations.append("no DTD available to loosen")
        return report
    return validate(view, loosen(dtd), check_ids=False)
