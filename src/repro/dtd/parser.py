"""Parser for Document Type Definitions.

Accepts the body of a DTD — either a standalone external subset or the
internal subset between ``[`` and ``]`` of a DOCTYPE declaration — and
produces a :class:`repro.dtd.model.DTD`.

Supported declarations:

- ``<!ELEMENT name content-model>`` with ``EMPTY``, ``ANY``, mixed
  content ``(#PCDATA | a | b)*`` and full children models with nested
  sequences/choices and ``? * +`` occurrence indicators;
- ``<!ATTLIST name (attr type default)*>`` with all ten attribute types
  and the four default kinds;
- ``<!ENTITY name "value">`` and parameter entities
  ``<!ENTITY % name "value">`` (parameter entities are expanded inside
  subsequent declarations, with cycle detection);
- ``<!NOTATION name SYSTEM "...">`` (recorded by name only);
- comments and processing instructions (skipped).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DTDLimitExceeded, DTDSyntaxError
from repro.limits import ResourceLimits
from repro.xml.chars import WHITESPACE, is_name, is_name_char, is_name_start_char, is_nmtoken
from repro.dtd.model import (
    AttributeDecl,
    AttributeType,
    ChoiceParticle,
    ContentModel,
    DTD,
    DefaultKind,
    ElementDecl,
    ModelKind,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)

__all__ = ["parse_dtd", "parse_content_model", "DTDParser"]

_MAX_PE_EXPANSIONS = 10_000


def _resolve_char_refs(value: str) -> str:
    """Expand ``&#NN;`` / ``&#xHH;`` in an entity value.

    The XML spec includes character references in entity literal values
    at declaration time, while general-entity references stay textual
    (they expand lazily at the point of use).
    """
    if "&#" not in value:
        return value
    out: list[str] = []
    i = 0
    while i < len(value):
        if value.startswith("&#", i):
            end = value.find(";", i)
            if end != -1:
                body = value[i + 2 : end]
                try:
                    code = int(body[1:], 16) if body[:1] in "xX" else int(body)
                    out.append(chr(code))
                    i = end + 1
                    continue
                except ValueError:
                    pass
        out.append(value[i])
        i += 1
    return "".join(out)


def parse_dtd(
    text: str, uri: Optional[str] = None, limits: Optional[ResourceLimits] = None
) -> DTD:
    """Parse DTD *text* into a :class:`DTD` object.

    Raises
    ------
    DTDSyntaxError
        On any syntactic problem, duplicate element declaration, or
        parameter-entity expansion cycle.
    DTDLimitExceeded
        When *limits* caps the input size or parameter-entity expansion
        count and the input exceeds it (also a :class:`DTDSyntaxError`).
    """
    dtd = DTDParser(text, limits=limits).parse()
    dtd.uri = uri
    return dtd


def parse_content_model(text: str) -> ContentModel:
    """Parse a content-model fragment such as ``(a, (b | c)*, d?)``.

    Exposed for tests and for programmatic DTD construction.
    """
    parser = DTDParser(text)
    model = parser._parse_content_model()
    parser._skip_space()
    if parser._pos < parser._len:
        parser._fail("trailing input after content model")
    return model


class DTDParser:
    """Single-use parser over a DTD subset string."""

    def __init__(self, text: str, limits: Optional[ResourceLimits] = None) -> None:
        if (
            limits is not None
            and limits.max_input_bytes is not None
            and len(text) > limits.max_input_bytes
        ):
            raise DTDLimitExceeded(
                f"DTD is {len(text)} characters, over the "
                f"{limits.max_input_bytes}-character input limit",
                limit="max_input_bytes",
                value=len(text),
                maximum=limits.max_input_bytes,
            )
        if "\r" in text:
            text = text.replace("\r\n", "\n").replace("\r", "\n")
        self._text = text
        self._pos = 0
        self._len = len(text)
        self._dtd = DTD()
        self._pe_expansions = 0
        self._max_pe_expansions = (
            limits.max_entity_expansions
            if limits is not None and limits.max_entity_expansions is not None
            else _MAX_PE_EXPANSIONS
        )
        self._declared_elements: set[str] = set()

    # -- scanning helpers ---------------------------------------------------

    def _fail(self, message: str, pos: Optional[int] = None) -> None:
        index = self._pos if pos is None else pos
        line = self._text.count("\n", 0, index) + 1
        column = index - self._text.rfind("\n", 0, index)
        raise DTDSyntaxError(message, line, column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < self._len else ""

    def _starts_with(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _expect(self, token: str) -> None:
        if not self._starts_with(token):
            self._fail(f"expected {token!r}")
        self._pos += len(token)

    def _skip_space(self, required: bool = False) -> None:
        start = self._pos
        while self._pos < self._len:
            ch = self._text[self._pos]
            if ch in WHITESPACE:
                self._pos += 1
            elif ch == "%" and is_name_start_char(self._peek(1)):
                self._expand_parameter_entity()
            else:
                break
        if required and self._pos == start:
            self._fail("expected whitespace")

    def _expand_parameter_entity(self) -> None:
        start = self._pos
        self._pos += 1  # '%'
        name = self._read_name()
        if self._peek() != ";":
            self._fail("unterminated parameter-entity reference", start)
        self._pos += 1
        replacement = self._dtd.parameter_entities.get(name)
        if replacement is None:
            self._fail(f"unknown parameter entity %{name};", start)
        self._pe_expansions += 1
        if self._pe_expansions > self._max_pe_expansions:
            line = self._text.count("\n", 0, start) + 1
            column = start - self._text.rfind("\n", 0, start)
            raise DTDLimitExceeded(
                "parameter-entity expansion limit exceeded (cycle?)",
                line,
                column,
                limit="max_entity_expansions",
                value=self._pe_expansions,
                maximum=self._max_pe_expansions,
            )
        # Splice the replacement text in place, padded with spaces as the
        # spec requires for declarations.
        self._text = (
            self._text[:start] + " " + replacement + " " + self._text[self._pos :]
        )
        self._len = len(self._text)
        self._pos = start

    def _read_name(self) -> str:
        start = self._pos
        if self._pos >= self._len or not is_name_start_char(self._text[self._pos]):
            self._fail("expected a name")
        self._pos += 1
        while self._pos < self._len and is_name_char(self._text[self._pos]):
            self._pos += 1
        return self._text[start : self._pos]

    def _read_nmtoken(self) -> str:
        start = self._pos
        while self._pos < self._len and is_name_char(self._text[self._pos]):
            self._pos += 1
        token = self._text[start : self._pos]
        if not is_nmtoken(token):
            self._fail("expected a name token", start)
        return token

    def _read_quoted(self) -> str:
        quote = self._peek()
        if quote not in "'\"":
            self._fail("expected a quoted literal")
        self._pos += 1
        end = self._text.find(quote, self._pos)
        if end == -1:
            self._fail("unterminated literal")
        value = self._text[self._pos : end]
        self._pos = end + 1
        return value

    # -- declarations ----------------------------------------------------------

    def parse(self) -> DTD:
        while True:
            self._skip_space()
            if self._pos >= self._len:
                return self._dtd
            if self._starts_with("<!--"):
                self._skip_comment()
            elif self._starts_with("<!ELEMENT"):
                self._parse_element_decl()
            elif self._starts_with("<!ATTLIST"):
                self._parse_attlist_decl()
            elif self._starts_with("<!ENTITY"):
                self._parse_entity_decl()
            elif self._starts_with("<!NOTATION"):
                self._parse_notation_decl()
            elif self._starts_with("<?"):
                self._skip_pi()
            else:
                self._fail("expected a markup declaration")

    def _skip_comment(self) -> None:
        start = self._pos
        end = self._text.find("-->", self._pos + 4)
        if end == -1:
            self._fail("unterminated comment", start)
        self._pos = end + 3

    def _skip_pi(self) -> None:
        start = self._pos
        end = self._text.find("?>", self._pos + 2)
        if end == -1:
            self._fail("unterminated processing instruction", start)
        self._pos = end + 2

    def _parse_element_decl(self) -> None:
        self._expect("<!ELEMENT")
        self._skip_space(required=True)
        name = self._read_name()
        # ATTLIST may pre-create the entry; a second <!ELEMENT> for the
        # same name is an error.
        if name in self._declared_elements:
            self._fail(f"duplicate declaration of element {name!r}")
        self._declared_elements.add(name)
        self._skip_space(required=True)
        model = self._parse_content_model()
        self._skip_space()
        self._expect(">")
        existing = self._dtd.elements.get(name)
        if existing is not None:
            existing.content = model
        else:
            self._dtd.declare_element(ElementDecl(name, model))

    def _parse_content_model(self) -> ContentModel:
        if self._starts_with("EMPTY"):
            self._pos += 5
            return ContentModel(ModelKind.EMPTY)
        if self._starts_with("ANY"):
            self._pos += 3
            return ContentModel(ModelKind.ANY)
        if self._peek() != "(":
            self._fail("expected a content model")
        # Look ahead for mixed content.
        save = self._pos
        self._pos += 1
        self._skip_space()
        if self._starts_with("#PCDATA"):
            self._pos += 7
            return self._parse_mixed_tail()
        self._pos = save
        particle = self._parse_group()
        return ContentModel(ModelKind.CHILDREN, particle)

    def _parse_mixed_tail(self) -> ContentModel:
        names: list[str] = []
        while True:
            self._skip_space()
            ch = self._peek()
            if ch == ")":
                self._pos += 1
                if names:
                    if self._peek() != "*":
                        self._fail("mixed content with names must end with ')*'")
                    self._pos += 1
                elif self._peek() == "*":
                    self._pos += 1
                return ContentModel(ModelKind.MIXED, mixed_names=tuple(names))
            if ch != "|":
                self._fail("expected '|' or ')' in mixed content")
            self._pos += 1
            self._skip_space()
            name = self._read_name()
            if name in names:
                self._fail(f"duplicate name {name!r} in mixed content")
            names.append(name)

    def _parse_group(self) -> Particle:
        """Parse a parenthesized group ``( cp (sep cp)* )`` + occurrence."""
        self._expect("(")
        items: list[Particle] = []
        separator: Optional[str] = None
        while True:
            self._skip_space()
            items.append(self._parse_cp())
            self._skip_space()
            ch = self._peek()
            if ch == ")":
                self._pos += 1
                break
            if ch not in "|,":
                self._fail("expected ',', '|' or ')' in content model")
            if separator is None:
                separator = ch
            elif ch != separator:
                self._fail("cannot mix ',' and '|' in one group")
            self._pos += 1
        occurrence = self._read_occurrence()
        if separator == "|":
            return ChoiceParticle(items, occurrence)
        if len(items) == 1 and occurrence is Occurrence.ONCE:
            return items[0]
        return SequenceParticle(items, occurrence)

    def _parse_cp(self) -> Particle:
        if self._peek() == "(":
            return self._parse_group()
        name = self._read_name()
        return NameParticle(name, self._read_occurrence())

    def _read_occurrence(self) -> Occurrence:
        ch = self._peek()
        if ch == "?":
            self._pos += 1
            return Occurrence.OPTIONAL
        if ch == "*":
            self._pos += 1
            return Occurrence.ZERO_OR_MORE
        if ch == "+":
            self._pos += 1
            return Occurrence.ONE_OR_MORE
        return Occurrence.ONCE

    # -- ATTLIST -----------------------------------------------------------------

    _SIMPLE_ATTR_TYPES = (
        ("IDREFS", AttributeType.IDREFS),
        ("IDREF", AttributeType.IDREF),
        ("ID", AttributeType.ID),
        ("ENTITIES", AttributeType.ENTITIES),
        ("ENTITY", AttributeType.ENTITY),
        ("NMTOKENS", AttributeType.NMTOKENS),
        ("NMTOKEN", AttributeType.NMTOKEN),
        ("CDATA", AttributeType.CDATA),
    )

    def _parse_attlist_decl(self) -> None:
        self._expect("<!ATTLIST")
        self._skip_space(required=True)
        element_name = self._read_name()
        decl = self._dtd.elements.get(element_name)
        if decl is None:
            # ATTLIST may legally precede the ELEMENT declaration; create
            # a placeholder with ANY content, replaced when ELEMENT shows up.
            decl = self._dtd.declare_element(
                ElementDecl(element_name, ContentModel(ModelKind.ANY))
            )
        while True:
            before = self._pos
            self._skip_space()
            if self._peek() == ">":
                self._pos += 1
                return
            if before == self._pos:
                self._fail("expected whitespace before attribute definition")
            attr = self._parse_attribute_def()
            # Later redefinitions of the same attribute are ignored (XML
            # 1.0: "the first declaration is binding").
            decl.attributes.setdefault(attr.name, attr)

    def _parse_attribute_def(self) -> AttributeDecl:
        name = self._read_name()
        self._skip_space(required=True)
        attr_type, enumeration = self._parse_attribute_type()
        self._skip_space(required=True)
        default_kind, default_value = self._parse_default_decl(attr_type, enumeration)
        return AttributeDecl(name, attr_type, default_kind, default_value, enumeration)

    def _parse_attribute_type(self) -> tuple[AttributeType, tuple[str, ...]]:
        for token, attr_type in self._SIMPLE_ATTR_TYPES:
            if self._starts_with(token):
                after = self._peek(len(token))
                if after == "" or not is_name_char(after):
                    self._pos += len(token)
                    return attr_type, ()
        if self._starts_with("NOTATION"):
            self._pos += 8
            self._skip_space(required=True)
            return AttributeType.NOTATION, self._parse_enumeration(names_only=True)
        if self._peek() == "(":
            return AttributeType.ENUMERATION, self._parse_enumeration(names_only=False)
        self._fail("expected an attribute type")
        raise AssertionError  # unreachable; _fail always raises

    def _parse_enumeration(self, names_only: bool) -> tuple[str, ...]:
        self._expect("(")
        values: list[str] = []
        while True:
            self._skip_space()
            token = self._read_name() if names_only else self._read_nmtoken()
            if token in values:
                self._fail(f"duplicate token {token!r} in enumeration")
            values.append(token)
            self._skip_space()
            ch = self._peek()
            if ch == ")":
                self._pos += 1
                return tuple(values)
            if ch != "|":
                self._fail("expected '|' or ')' in enumeration")
            self._pos += 1

    def _parse_default_decl(
        self, attr_type: AttributeType, enumeration: tuple[str, ...]
    ) -> tuple[DefaultKind, Optional[str]]:
        if self._starts_with("#REQUIRED"):
            self._pos += 9
            return DefaultKind.REQUIRED, None
        if self._starts_with("#IMPLIED"):
            self._pos += 8
            return DefaultKind.IMPLIED, None
        if self._starts_with("#FIXED"):
            self._pos += 6
            self._skip_space(required=True)
            value = self._read_quoted()
            self._check_default_against_type(value, attr_type, enumeration)
            return DefaultKind.FIXED, value
        value = self._read_quoted()
        self._check_default_against_type(value, attr_type, enumeration)
        return DefaultKind.DEFAULT, value

    def _check_default_against_type(
        self, value: str, attr_type: AttributeType, enumeration: tuple[str, ...]
    ) -> None:
        if attr_type in (AttributeType.ENUMERATION, AttributeType.NOTATION):
            if value not in enumeration:
                self._fail(
                    f"default value {value!r} is not among the enumerated tokens"
                )
        elif attr_type in (AttributeType.ID, AttributeType.IDREF, AttributeType.ENTITY):
            if not is_name(value):
                self._fail(f"default value {value!r} is not a valid name")

    # -- ENTITY / NOTATION ----------------------------------------------------------

    def _parse_entity_decl(self) -> None:
        self._expect("<!ENTITY")
        self._skip_space(required=True)
        is_parameter = False
        if self._peek() == "%":
            self._pos += 1
            is_parameter = True
            self._skip_space(required=True)
        name = self._read_name()
        self._skip_space(required=True)
        if self._starts_with("SYSTEM") or self._starts_with("PUBLIC"):
            # External entities: record an empty replacement (no network
            # access in this library; see DESIGN.md non-goals).
            if self._starts_with("PUBLIC"):
                self._pos += 6
                self._skip_space(required=True)
                self._read_quoted()
            else:
                self._pos += 6
            self._skip_space(required=True)
            self._read_quoted()
            self._skip_space()
            if self._starts_with("NDATA"):
                self._pos += 5
                self._skip_space(required=True)
                self._read_name()
                self._skip_space()
            value = ""
        else:
            value = _resolve_char_refs(self._read_quoted())
            self._skip_space()
        self._expect(">")
        store = (
            self._dtd.parameter_entities if is_parameter else self._dtd.general_entities
        )
        # First declaration is binding.
        store.setdefault(name, value)

    def _parse_notation_decl(self) -> None:
        self._expect("<!NOTATION")
        self._skip_space(required=True)
        name = self._read_name()
        self._skip_space(required=True)
        if self._starts_with("PUBLIC"):
            self._pos += 6
            self._skip_space(required=True)
            identifier = self._read_quoted()
            self._skip_space()
            if self._peek() in "'\"":
                identifier = self._read_quoted()
        elif self._starts_with("SYSTEM"):
            self._pos += 6
            self._skip_space(required=True)
            identifier = self._read_quoted()
        else:
            self._fail("expected SYSTEM or PUBLIC in notation declaration")
            raise AssertionError  # unreachable
        self._skip_space()
        self._expect(">")
        self._dtd.notations.setdefault(name, identifier)
