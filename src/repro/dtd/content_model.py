"""Content-model matching via Glushkov position automata.

A DTD children model such as ``(manager, (paper | report)*, fund?)`` is a
regular expression over element names. To validate an element's child
sequence we compile the model, once per element declaration, into a
Glushkov automaton: every *occurrence* of a name in the expression
becomes a position; the automaton's states are positions, with

- ``first``  — positions that can start a match,
- ``follow(p)`` — positions that can follow position ``p``,
- ``last``   — positions that can end a match,
- ``nullable`` — whether the empty sequence matches.

Matching a child sequence is then a simple NFA simulation over sets of
positions, linear in the sequence length (times the automaton fan-out).
The compiled automaton is cached on first use per :class:`ContentModel`
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dtd.model import (
    ChoiceParticle,
    ContentModel,
    ModelKind,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)

__all__ = [
    "ContentAutomaton",
    "compile_model",
    "match_children",
    "explain_mismatch",
    "check_deterministic",
]


@dataclass
class _Glushkov:
    """first/last/follow computation result for one particle."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


@dataclass
class ContentAutomaton:
    """A compiled children content model.

    Attributes
    ----------
    names:
        Position -> element name at that position.
    first:
        Start positions.
    follow:
        Position -> set of possible successor positions.
    last:
        Accepting positions.
    nullable:
        Whether the empty child sequence is accepted.
    """

    names: tuple[str, ...]
    first: frozenset[int]
    follow: tuple[frozenset[int], ...]
    last: frozenset[int]
    nullable: bool
    # name -> positions carrying that name, precomputed for the simulation
    positions_by_name: dict[str, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.positions_by_name:
            by_name: dict[str, set[int]] = {}
            for position, name in enumerate(self.names):
                by_name.setdefault(name, set()).add(position)
            self.positions_by_name = {
                name: frozenset(positions) for name, positions in by_name.items()
            }

    def matches(self, sequence: Sequence[str]) -> bool:
        """Whether the element-name *sequence* conforms to the model."""
        return self._run(sequence)[0]

    def _run(self, sequence: Sequence[str]) -> tuple[bool, int]:
        """Simulate; returns (accepted, index of first failing item).

        When accepted, the failing index is ``len(sequence)``.
        """
        if not sequence:
            return self.nullable, 0
        current = self.first
        for index, name in enumerate(sequence):
            allowed = self.positions_by_name.get(name)
            if allowed is None:
                return False, index
            current = current & allowed
            if not current:
                return False, index
            next_states: set[int] = set()
            for position in current:
                next_states |= self.follow[position]
            previous, current = current, frozenset(next_states)
            if index == len(sequence) - 1:
                return bool(previous & self.last), len(sequence)
        return False, len(sequence)  # pragma: no cover - loop always returns

    def expected_after(self, sequence: Sequence[str], upto: int) -> set[str]:
        """Element names acceptable at position *upto* given the prefix.

        Used to build actionable validation messages ("expected one of
        {paper, fund} after 'manager'").
        """
        current = self.first
        for name in sequence[:upto]:
            allowed = self.positions_by_name.get(name, frozenset())
            current = current & allowed
            if not current:
                return set()
            next_states: set[int] = set()
            for position in current:
                next_states |= self.follow[position]
            current = frozenset(next_states)
        return {self.names[position] for position in current}


def compile_model(model: ContentModel) -> Optional[ContentAutomaton]:
    """Compile *model* to an automaton (``None`` for EMPTY/ANY/MIXED).

    The result is memoized on the model object (attribute
    ``_automaton``), so repeated validation of large documents pays the
    construction cost once per declaration.
    """
    if model.kind is not ModelKind.CHILDREN or model.particle is None:
        return None
    cached = getattr(model, "_automaton", None)
    if cached is not None:
        return cached
    builder = _Builder()
    info = builder.build(model.particle)
    automaton = ContentAutomaton(
        names=tuple(builder.names),
        first=info.first,
        follow=tuple(frozenset(s) for s in builder.follow),
        last=info.last,
        nullable=info.nullable,
    )
    # Caching on a dataclass instance: plain attribute, underscore-private.
    object.__setattr__(model, "_automaton", automaton)
    return automaton


class _Builder:
    """Recursive Glushkov construction over the particle AST."""

    def __init__(self) -> None:
        self.names: list[str] = []
        self.follow: list[set[int]] = []

    def build(self, particle: Particle) -> _Glushkov:
        info = self._build_base(particle)
        return self._apply_occurrence(info, particle.occurrence)

    def _build_base(self, particle: Particle) -> _Glushkov:
        if isinstance(particle, NameParticle):
            position = len(self.names)
            self.names.append(particle.name)
            self.follow.append(set())
            only = frozenset((position,))
            return _Glushkov(nullable=False, first=only, last=only)
        if isinstance(particle, ChoiceParticle):
            nullable = False
            first: set[int] = set()
            last: set[int] = set()
            for item in particle.items:
                info = self.build(item)
                nullable = nullable or info.nullable
                first |= info.first
                last |= info.last
            return _Glushkov(nullable, frozenset(first), frozenset(last))
        if isinstance(particle, SequenceParticle):
            nullable = True
            first: set[int] = set()
            last: set[int] = set()
            previous_last: set[int] = set()
            for index, item in enumerate(particle.items):
                info = self.build(item)
                for position in previous_last:
                    self.follow[position] |= info.first
                if index == 0:
                    first = set(info.first)
                elif nullable:
                    first |= info.first
                if info.nullable:
                    previous_last |= info.last
                    last |= info.last
                else:
                    previous_last = set(info.last)
                    last = set(info.last)
                nullable = nullable and info.nullable
            return _Glushkov(nullable, frozenset(first), frozenset(last))
        raise TypeError(f"unknown particle type: {type(particle).__name__}")

    def _apply_occurrence(self, info: _Glushkov, occurrence: Occurrence) -> _Glushkov:
        if occurrence is Occurrence.ONCE:
            return info
        if occurrence is Occurrence.OPTIONAL:
            return _Glushkov(True, info.first, info.last)
        # '*' and '+': last positions loop back to first positions.
        for position in info.last:
            self.follow[position] |= info.first
        nullable = info.nullable or occurrence is Occurrence.ZERO_OR_MORE
        return _Glushkov(nullable, info.first, info.last)


def match_children(model: ContentModel, child_names: Sequence[str]) -> bool:
    """Whether *child_names* (in order) conforms to *model*.

    EMPTY accepts only the empty sequence; ANY accepts everything; MIXED
    accepts any interleaving restricted to the declared names (text is
    checked separately by the validator).
    """
    if model.kind is ModelKind.EMPTY:
        return not child_names
    if model.kind is ModelKind.ANY:
        return True
    if model.kind is ModelKind.MIXED:
        allowed = set(model.mixed_names)
        return all(name in allowed for name in child_names)
    automaton = compile_model(model)
    assert automaton is not None
    return automaton.matches(child_names)


def check_deterministic(model: ContentModel) -> Optional[str]:
    """Return the offending element name if *model* is ambiguous.

    XML 1.0 (section 3.2.1, "deterministic content models") requires
    that an element in the document can match only one position of the
    model without look-ahead. In Glushkov terms the model is
    deterministic iff no two positions carrying the same name coexist in
    ``first`` or in any ``follow`` set. ``(a?, a)`` and ``((a|b)*, a)``
    are the classic violations.

    Returns ``None`` for deterministic (or EMPTY/ANY/mixed) models.
    """
    automaton = compile_model(model)
    if automaton is None:
        return None  # EMPTY/ANY/MIXED are trivially deterministic

    def duplicate_name(positions) -> Optional[str]:
        seen: set[str] = set()
        for position in positions:
            name = automaton.names[position]
            if name in seen:
                return name
            seen.add(name)
        return None

    offender = duplicate_name(automaton.first)
    if offender is not None:
        return offender
    for follow_set in automaton.follow:
        offender = duplicate_name(follow_set)
        if offender is not None:
            return offender
    return None


def explain_mismatch(model: ContentModel, child_names: Sequence[str]) -> str:
    """A human-readable reason why *child_names* fails *model*."""
    if model.kind is ModelKind.EMPTY:
        return f"declared EMPTY but has child elements {list(child_names)!r}"
    if model.kind is ModelKind.MIXED:
        allowed = set(model.mixed_names)
        bad = sorted({name for name in child_names if name not in allowed})
        return f"mixed content allows {sorted(allowed)!r} but found {bad!r}"
    automaton = compile_model(model)
    assert automaton is not None
    accepted, index = automaton._run(child_names)
    if accepted:
        return "content matches"
    expected = sorted(automaton.expected_after(child_names, index))
    if index >= len(child_names):
        return (
            f"content ended too early; expected one of {expected!r} "
            f"to continue {model.unparse()}"
        )
    found = child_names[index]
    return (
        f"child #{index + 1} is <{found}> but the model {model.unparse()} "
        f"expects one of {expected!r} there"
    )
