"""Serialization of DTD objects back to declaration syntax.

Used to emit the loosened DTD that accompanies a computed view
(Section 6.2: the view "together with the loosened DTD, can then be
transmitted to the user") and to round-trip DTDs in tests.
"""

from __future__ import annotations

from repro.dtd.model import DTD, ElementDecl

__all__ = ["serialize_dtd", "serialize_element_decl"]


def serialize_element_decl(decl: ElementDecl, indent: str = "") -> str:
    """Render one element declaration (plus its ATTLIST, if any)."""
    lines = [f"{indent}<!ELEMENT {decl.name} {decl.content.unparse()}>"]
    if decl.attributes:
        body = "\n".join(
            f"{indent}          {attr.unparse()}" for attr in decl.attributes.values()
        )
        lines.append(f"{indent}<!ATTLIST {decl.name}\n{body}>")
    return "\n".join(lines)


def serialize_dtd(dtd: DTD, indent: str = "") -> str:
    """Render a full DTD as markup declarations, one per line."""
    lines: list[str] = []
    for name, value in dtd.parameter_entities.items():
        lines.append(f'{indent}<!ENTITY % {name} "{_escape_entity(value)}">')
    for name, value in dtd.general_entities.items():
        lines.append(f'{indent}<!ENTITY {name} "{_escape_entity(value)}">')
    for decl in dtd.elements.values():
        lines.append(serialize_element_decl(decl, indent))
    for name, identifier in dtd.notations.items():
        lines.append(f'{indent}<!NOTATION {name} SYSTEM "{identifier}">')
    return "\n".join(lines)


def _escape_entity(value: str) -> str:
    return value.replace("&", "&#38;").replace('"', "&#34;").replace("%", "&#37;")
