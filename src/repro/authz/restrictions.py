"""Credential, time- and history-based restrictions.

The paper's closing future-work list (Section 8): "the enforcement of
credentials and history- and time-based restrictions on access". These
are orthogonal filters layered on top of subject applicability:

- :class:`ValidityWindow` — an authorization holds only between
  ``not_before`` and ``not_after`` (epoch seconds, either open-ended);
- :class:`CredentialClause` — a predicate over the requester's
  presented credentials (attribute/value pairs established at
  authentication time, e.g. ``role=physician``); all clauses of an
  authorization must be satisfied (conjunction, like the paper's XPath
  conditions);
- :class:`HistoryLimit` — at most N granted accesses per requester per
  document within a sliding window; enforced by the server against its
  audit log (history lives server-side, exactly where the paper's
  architecture keeps all state).

All three default to "unrestricted" so the base model is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import AuthorizationError

__all__ = ["ValidityWindow", "CredentialClause", "HistoryLimit"]


@dataclass(frozen=True)
class ValidityWindow:
    """A half-open-ended time interval in epoch seconds."""

    not_before: Optional[float] = None
    not_after: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.not_before is not None
            and self.not_after is not None
            and self.not_before > self.not_after
        ):
            raise AuthorizationError(
                "validity window ends before it starts "
                f"({self.not_before} > {self.not_after})"
            )

    def active(self, at: float) -> bool:
        """Whether the window covers time *at*."""
        if self.not_before is not None and at < self.not_before:
            return False
        if self.not_after is not None and at > self.not_after:
            return False
        return True


_OPS = ("=", "!=", ">=", "<=", "contains", "present")


@dataclass(frozen=True)
class CredentialClause:
    """One predicate over a requester credential.

    Operators: ``=``, ``!=`` (string comparison), ``>=``, ``<=``
    (numeric comparison; non-numeric values fail the clause),
    ``contains`` (substring), and ``present`` (the key exists,
    ``value`` ignored). A missing key fails every operator except
    ``!=``.
    """

    key: str
    op: str = "present"
    value: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise AuthorizationError(
                f"unknown credential operator {self.op!r} (known: {_OPS})"
            )
        if not self.key:
            raise AuthorizationError("credential clause requires a key")

    def satisfied(self, credentials: Mapping[str, str]) -> bool:
        actual = credentials.get(self.key)
        if self.op == "present":
            return actual is not None
        if self.op == "!=":
            return actual != self.value
        if actual is None:
            return False
        if self.op == "=":
            return actual == self.value
        if self.op == "contains":
            return self.value in actual
        try:
            left = float(actual)
            right = float(self.value)
        except ValueError:
            return False
        return left >= right if self.op == ">=" else left <= right


@dataclass(frozen=True)
class HistoryLimit:
    """At most *max_accesses* granted reads within *window_seconds*."""

    max_accesses: int
    window_seconds: float

    def __post_init__(self) -> None:
        if self.max_accesses < 1:
            raise AuthorizationError("history limit must allow at least 1 access")
        if self.window_seconds <= 0:
            raise AuthorizationError("history window must be positive")
