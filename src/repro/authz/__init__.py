"""Authorization model: 5-tuples, store, XACL markup, conflict policies.

Public surface::

    from repro.authz import (
        Authorization, AuthObject, AuthType, Sign, AuthorizationStore,
        parse_xacl, serialize_xacl,
        DenialsTakePrecedence, PermissionsTakePrecedence,
        NothingTakesPrecedence, MajorityTakesPrecedence, policy_by_name,
    )
"""

from repro.authz.authorization import (
    READ,
    AuthObject,
    AuthType,
    Authorization,
    Sign,
)
from repro.authz.conflict import (
    EPSILON,
    ConflictPolicy,
    DenialsTakePrecedence,
    MajorityTakesPrecedence,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
    policy_by_name,
)
from repro.authz.restrictions import CredentialClause, HistoryLimit, ValidityWindow
from repro.authz.store import AuthorizationStore
from repro.authz.xacl import XACL_DTD, parse_xacl, serialize_xacl, xacl_document

__all__ = [
    "AuthObject",
    "AuthType",
    "Authorization",
    "AuthorizationStore",
    "ConflictPolicy",
    "CredentialClause",
    "HistoryLimit",
    "DenialsTakePrecedence",
    "EPSILON",
    "MajorityTakesPrecedence",
    "NothingTakesPrecedence",
    "PermissionsTakePrecedence",
    "READ",
    "Sign",
    "ValidityWindow",
    "XACL_DTD",
    "parse_xacl",
    "policy_by_name",
    "serialize_xacl",
    "xacl_document",
]
