"""Conflict-resolution policies (paper, Section 5).

When several authorizations of the same type apply to one node for one
requester, the paper first keeps those with *most specific subjects* and
then breaks remaining ties. The paper's own choice is **denials take
precedence**; it explicitly notes the model supports alternatives, which
are all implemented here:

- :class:`DenialsTakePrecedence` — any ``-`` wins (the default);
- :class:`PermissionsTakePrecedence` — any ``+`` wins;
- :class:`NothingTakesPrecedence` — an unresolved conflict yields no
  authorization (ε), deferring to lower-priority label slots;
- :class:`MajorityTakesPrecedence` — "the sign of the authorizations
  that are in larger number" (ties resolved by a configurable fallback).

A policy resolves a *non-empty* list of signs into ``'+'``, ``'-'`` or
``'ε'``; the most-specific-subject filtering happens in the labeling
step before the policy is consulted.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PolicyError
from repro.authz.authorization import Sign

__all__ = [
    "ConflictPolicy",
    "DenialsTakePrecedence",
    "PermissionsTakePrecedence",
    "NothingTakesPrecedence",
    "MajorityTakesPrecedence",
    "policy_by_name",
    "EPSILON",
]

#: The "no authorization" sign used in labels.
EPSILON = "ε"  # 'ε'


class ConflictPolicy:
    """Strategy interface: resolve concurrent signs on one node."""

    name = "abstract"

    def resolve(self, signs: Sequence[Sign]) -> str:
        """Return ``'+'``, ``'-'`` or :data:`EPSILON` for *signs*.

        *signs* contains one entry per surviving authorization (after
        most-specific-subject filtering) and is never empty.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class DenialsTakePrecedence(ConflictPolicy):
    """The paper's default: a single denial denies."""

    name = "denials-take-precedence"

    def resolve(self, signs: Sequence[Sign]) -> str:
        return "-" if Sign.MINUS in signs else "+"


class PermissionsTakePrecedence(ConflictPolicy):
    """A single permission permits."""

    name = "permissions-take-precedence"

    def resolve(self, signs: Sequence[Sign]) -> str:
        return "+" if Sign.PLUS in signs else "-"


class NothingTakesPrecedence(ConflictPolicy):
    """An actual conflict dissolves into 'no authorization'."""

    name = "nothing-takes-precedence"

    def resolve(self, signs: Sequence[Sign]) -> str:
        has_plus = Sign.PLUS in signs
        has_minus = Sign.MINUS in signs
        if has_plus and has_minus:
            return EPSILON
        return "-" if has_minus else "+"


class MajorityTakesPrecedence(ConflictPolicy):
    """The sign in larger number wins; ties fall back to another policy."""

    name = "majority-takes-precedence"

    def __init__(self, tie_breaker: ConflictPolicy | None = None) -> None:
        self._tie_breaker = tie_breaker or DenialsTakePrecedence()

    def resolve(self, signs: Sequence[Sign]) -> str:
        plus = sum(1 for sign in signs if sign is Sign.PLUS)
        minus = len(signs) - plus
        if plus > minus:
            return "+"
        if minus > plus:
            return "-"
        return self._tie_breaker.resolve(signs)


_POLICIES: dict[str, type[ConflictPolicy]] = {
    DenialsTakePrecedence.name: DenialsTakePrecedence,
    PermissionsTakePrecedence.name: PermissionsTakePrecedence,
    NothingTakesPrecedence.name: NothingTakesPrecedence,
    MajorityTakesPrecedence.name: MajorityTakesPrecedence,
}


def policy_by_name(name: str) -> ConflictPolicy:
    """Instantiate a policy from its registry name."""
    policy_class = _POLICIES.get(name)
    if policy_class is None:
        known = ", ".join(sorted(_POLICIES))
        raise PolicyError(f"unknown conflict policy {name!r} (known: {known})")
    return policy_class()
