"""XACL: the XML markup for access-authorization lists.

Paper, Section 7: the processor "takes as input a valid XML document ...
together with its XML Access Control List (XACL) listing the associated
access authorizations". Following the paper's rationale of "exploiting
XML's own capabilities, defining an XML markup for a set of security
elements", authorizations are stored as XML and parsed with this
library's own XML parser. The markup::

    <xacl base="http://www.lab.com/">
      <authorization sign="-" type="R" action="read">
        <subject user-group="Foreign" ip="*" sym="*"/>
        <object uri="laboratory.xml"
                path="/laboratory//paper[./@category='private']"/>
      </authorization>
    </xacl>

``base`` is optional; relative object URIs are resolved against it.
``action`` defaults to ``read``; ``ip``/``sym`` default to ``*``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AuthorizationError, XACLError
from repro.authz.restrictions import CredentialClause, ValidityWindow
from repro.subjects.hierarchy import SubjectSpec
from repro.xml.builder import E, new_document
from repro.xml.nodes import Document, Element
from repro.xml.parser import parse_document
from repro.xml.serializer import pretty, serialize
from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign

__all__ = ["parse_xacl", "serialize_xacl", "xacl_document", "XACL_DTD"]

#: A DTD for XACL documents themselves (the security markup is, of
#: course, also XML with a schema).
XACL_DTD = """\
<!ELEMENT xacl (authorization*)>
<!ATTLIST xacl base CDATA #IMPLIED>
<!ELEMENT authorization (subject, object, valid?, requires*)>
<!ATTLIST authorization
          sign CDATA #REQUIRED
          type (L|R|LW|RW) #REQUIRED
          action CDATA "read">
<!ELEMENT subject EMPTY>
<!ATTLIST subject
          user-group CDATA #REQUIRED
          ip CDATA "*"
          sym CDATA "*">
<!ELEMENT object EMPTY>
<!ATTLIST object
          uri CDATA #REQUIRED
          path CDATA #IMPLIED>
<!ELEMENT valid EMPTY>
<!ATTLIST valid
          not-before CDATA #IMPLIED
          not-after CDATA #IMPLIED>
<!ELEMENT requires EMPTY>
<!ATTLIST requires
          key CDATA #REQUIRED
          op CDATA "present"
          value CDATA "">
"""


def parse_xacl(source: str | Document) -> list[Authorization]:
    """Parse an XACL document into authorizations.

    Raises
    ------
    XACLError
        When the markup does not follow the XACL structure (the
        underlying XML syntax error, if any, propagates as-is).
    """
    document = parse_document(source) if isinstance(source, str) else source
    root = document.root
    if root is None or root.name != "xacl":
        raise XACLError("XACL document must have an <xacl> root element")
    base = root.get_attribute("base", "") or ""
    authorizations: list[Authorization] = []
    for child in root.child_elements():
        if child.name != "authorization":
            raise XACLError(f"unexpected element <{child.name}> inside <xacl>")
        authorizations.append(_parse_authorization(child, base))
    return authorizations


def _parse_authorization(element: Element, base: str) -> Authorization:
    sign = element.get_attribute("sign")
    auth_type = element.get_attribute("type")
    action = element.get_attribute("action", "read") or "read"
    if sign not in ("+", "-"):
        raise XACLError(f"authorization sign must be '+' or '-', got {sign!r}")
    try:
        parsed_type = AuthType(auth_type or "")
    except ValueError:
        raise XACLError(
            f"authorization type must be one of L/R/LW/RW, got {auth_type!r}"
        ) from None

    subject_el = _single_child(element, "subject")
    object_el = _single_child(element, "object")

    user_group = subject_el.get_attribute("user-group")
    if not user_group:
        raise XACLError("<subject> requires a user-group attribute")
    subject = SubjectSpec.parse(
        user_group,
        subject_el.get_attribute("ip", "*") or "*",
        subject_el.get_attribute("sym", "*") or "*",
    )

    uri = object_el.get_attribute("uri")
    if not uri:
        raise XACLError("<object> requires a uri attribute")
    resolved = _resolve(base, uri)
    path = object_el.get_attribute("path")
    obj = AuthObject(resolved, path)

    validity = _parse_validity(element)
    clauses = _parse_credential_clauses(element)
    return Authorization(
        subject,
        obj,
        action,
        Sign(sign),
        parsed_type,
        validity=validity,
        credentials=clauses,
    )


def _parse_validity(element: Element) -> Optional[ValidityWindow]:
    found = list(element.find_children("valid"))
    if not found:
        return None
    if len(found) > 1:
        raise XACLError("<authorization> accepts at most one <valid>")
    valid = found[0]
    try:
        not_before = _optional_float(valid.get_attribute("not-before"))
        not_after = _optional_float(valid.get_attribute("not-after"))
        return ValidityWindow(not_before, not_after)
    except (ValueError, AuthorizationError) as exc:
        raise XACLError(f"bad <valid> element: {exc}") from exc


def _optional_float(value: Optional[str]) -> Optional[float]:
    return float(value) if value not in (None, "") else None


def _parse_credential_clauses(element: Element) -> tuple[CredentialClause, ...]:
    clauses = []
    for requires in element.find_children("requires"):
        key = requires.get_attribute("key")
        if not key:
            raise XACLError("<requires> needs a key attribute")
        op = requires.get_attribute("op", "present") or "present"
        value = requires.get_attribute("value", "") or ""
        try:
            clauses.append(CredentialClause(key, op, value))
        except AuthorizationError as exc:
            raise XACLError(f"bad <requires> element: {exc}") from exc
    return tuple(clauses)


def _single_child(element: Element, name: str) -> Element:
    found = list(element.find_children(name))
    if len(found) != 1:
        raise XACLError(
            f"<authorization> requires exactly one <{name}>, found {len(found)}"
        )
    return found[0]


def _resolve(base: str, uri: str) -> str:
    if not base or "://" in uri or uri.startswith("/"):
        return uri
    if base.endswith("/"):
        return base + uri
    return f"{base}/{uri}"


def xacl_document(
    authorizations: list[Authorization], base: Optional[str] = None
) -> Document:
    """Build the XACL document tree for *authorizations*.

    When *base* is given, object URIs underneath it are shortened to
    relative form.
    """
    root = E("xacl", {"base": base} if base else None)
    for authorization in authorizations:
        uri = authorization.object.uri
        if base and uri.startswith(base):
            uri = uri[len(base) :].lstrip("/") or uri
        object_attrs = {"uri": uri}
        if authorization.object.path is not None:
            object_attrs["path"] = authorization.object.path
        root.append(
            E(
                "authorization",
                {
                    "sign": authorization.sign.value,
                    "type": authorization.type.value,
                    "action": authorization.action,
                },
                E(
                    "subject",
                    {
                        "user-group": authorization.subject.user_group,
                        "ip": str(authorization.subject.ip),
                        "sym": str(authorization.subject.symbolic),
                    },
                ),
                E("object", object_attrs),
                _validity_element(authorization),
                *_requires_elements(authorization),
            )
        )
    return new_document(root)


def _validity_element(authorization: Authorization) -> Optional[Element]:
    window = authorization.validity
    if window is None:
        return None
    attrs: dict[str, str] = {}
    if window.not_before is not None:
        attrs["not-before"] = repr(window.not_before)
    if window.not_after is not None:
        attrs["not-after"] = repr(window.not_after)
    return E("valid", attrs)


def _requires_elements(authorization: Authorization) -> list[Element]:
    return [
        E("requires", {"key": clause.key, "op": clause.op, "value": clause.value})
        for clause in authorization.credentials
    ]


def serialize_xacl(
    authorizations: list[Authorization],
    base: Optional[str] = None,
    indent: bool = True,
) -> str:
    """Serialize *authorizations* to XACL markup text."""
    document = xacl_document(authorizations, base)
    if indent:
        return pretty(document)
    return serialize(document, xml_declaration=False, doctype=False)
