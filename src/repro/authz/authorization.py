"""Access authorizations (paper, Definition 3).

An authorization is the 5-tuple ⟨subject, object, action, sign, type⟩:

- *subject* — a :class:`~repro.subjects.SubjectSpec` (element of ASH);
- *object* — a URI, optionally extended with a path expression
  (``URI:PE``), wrapped as :class:`AuthObject`;
- *action* — ``read`` in the paper; ``write`` entitles the update
  subsystem's mutations (:mod:`repro.update`), and the field stays
  generic for further actions;
- *sign* — ``+`` (permission) or ``-`` (denial);
- *type* — Local, Recursive, Local-Weak or Recursive-Weak. Whether the
  authorization is instance- or schema-level is a property of where it
  is attached (the document's or the DTD's XACL), not of the tuple: the
  labeling algorithm maps schema-level L/R onto the LD/RD label slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import AuthorizationError
from repro.authz.restrictions import CredentialClause, ValidityWindow
from repro.subjects.hierarchy import SubjectSpec
from repro.xml.nodes import Node
from repro.xpath.compile import CompiledXPath, RelativeMode, compile_xpath

__all__ = ["Sign", "AuthType", "AuthObject", "Authorization", "READ", "WRITE"]

READ = "read"
WRITE = "write"


class Sign(str, Enum):
    """The sign of an authorization: permission (+) or denial (−)."""

    PLUS = "+"
    MINUS = "-"

    def __str__(self) -> str:
        return self.value


class AuthType(str, Enum):
    """The four authorization types of Definition 3."""

    LOCAL = "L"
    RECURSIVE = "R"
    LOCAL_WEAK = "LW"
    RECURSIVE_WEAK = "RW"

    @property
    def recursive(self) -> bool:
        return self in (AuthType.RECURSIVE, AuthType.RECURSIVE_WEAK)

    @property
    def weak(self) -> bool:
        return self in (AuthType.LOCAL_WEAK, AuthType.RECURSIVE_WEAK)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AuthObject:
    """The protected object: ``URI`` or ``URI:PE``.

    Without a path expression the object denotes the document's root
    element (DESIGN.md decision 4), so a Recursive authorization on a
    bare URI covers the whole document.
    """

    uri: str
    path: Optional[str] = None

    @classmethod
    def parse(cls, text: str) -> "AuthObject":
        """Parse the ``URI[:PE]`` notation used in the paper's examples.

        The separator is the first ``:`` that is followed by a path
        character (``/``, a name start, ``@`` or ``.``) *after* any URI
        scheme — i.e. ``http://host/d.xml:/lab//paper`` splits at the
        colon before ``/lab``.
        """
        if not text or not text.strip():
            raise AuthorizationError("empty authorization object")
        text = text.strip()
        split = _find_path_separator(text)
        if split is None:
            return cls(text)
        uri, path = text[:split], text[split + 1 :]
        if not uri:
            raise AuthorizationError(f"missing URI in object {text!r}")
        if not path:
            raise AuthorizationError(f"empty path expression in object {text!r}")
        return cls(uri, path)

    def unparse(self) -> str:
        if self.path is None:
            return self.uri
        return f"{self.uri}:{self.path}"

    def __str__(self) -> str:
        return self.unparse()


def _find_path_separator(text: str) -> Optional[int]:
    """Index of the ':' separating URI from path expression, if any.

    The only ambiguity is a leading ``scheme://``: the colon there
    belongs to the URI. We treat the first colon as a scheme separator
    when it is followed by ``//`` and the prefix looks like a scheme
    (letters/digits, no dot or slash — ``http``, ``https``, ``ftp``);
    otherwise it separates the path expression, so a relative object
    like ``doc.xml://a`` still means "all <a> elements of doc.xml".
    """
    first = text.find(":")
    if first == -1:
        return None
    prefix = text[:first]
    is_scheme = (
        text.startswith("://", first)
        and prefix.isalnum()
        and "." not in prefix
        and "/" not in prefix
    )
    if is_scheme:
        nxt = text.find(":", first + 3)
        return nxt if nxt != -1 else None
    return first


@dataclass
class Authorization:
    """One access authorization (the paper's 5-tuple).

    ``compiled_path`` is created lazily on first use and reused for
    every document the authorization is evaluated against.
    """

    subject: SubjectSpec
    object: AuthObject
    action: str = READ
    sign: Sign = Sign.PLUS
    type: AuthType = AuthType.RECURSIVE
    #: Optional time window outside which the authorization is dormant
    #: (Section 8 future work; see repro.authz.restrictions).
    validity: Optional[ValidityWindow] = None
    #: Conjunctive credential requirements on the requester.
    credentials: tuple[CredentialClause, ...] = ()
    # private: lazily compiled path expression
    _compiled: Optional[CompiledXPath] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.action or not self.action.strip():
            raise AuthorizationError("authorization action may not be empty")
        if not isinstance(self.sign, Sign):
            self.sign = Sign(self.sign)
        if not isinstance(self.type, AuthType):
            self.type = AuthType(self.type)

    @classmethod
    def build(
        cls,
        subject: SubjectSpec | tuple[str, str, str] | str,
        obj: AuthObject | str,
        sign: Sign | str,
        type: AuthType | str,
        action: str = READ,
        validity: Optional[ValidityWindow] = None,
        credentials: tuple[CredentialClause, ...] = (),
    ) -> "Authorization":
        """Forgiving constructor used by examples and the XACL parser.

        *subject* may be a :class:`SubjectSpec`, a ``(ug, ip, sn)``
        triple, or a bare user/group name (locations default to ``*``).
        """
        if isinstance(subject, str):
            subject = SubjectSpec.parse(subject)
        elif isinstance(subject, tuple):
            subject = SubjectSpec.parse(*subject)
        if isinstance(obj, str):
            obj = AuthObject.parse(obj)
        return cls(
            subject,
            obj,
            action,
            Sign(sign),
            AuthType(type),
            validity=validity,
            credentials=tuple(credentials),
        )

    def is_active(self, at: Optional[float]) -> bool:
        """Whether the validity window covers *at* (``None`` = ignore)."""
        if self.validity is None or at is None:
            return True
        return self.validity.active(at)

    def credentials_satisfied(self, presented) -> bool:
        """Whether *presented* (a mapping) satisfies every clause."""
        return all(clause.satisfied(presented) for clause in self.credentials)

    def compiled_path(self, relative_mode: RelativeMode = "descendant") -> Optional[CompiledXPath]:
        """The compiled path expression, or ``None`` for bare URIs."""
        if self.object.path is None:
            return None
        if self._compiled is None or self._compiled.relative_mode != relative_mode:
            self._compiled = compile_xpath(self.object.path, relative_mode)
        return self._compiled

    def select_nodes(
        self,
        document_root: Node,
        relative_mode: RelativeMode = "descendant",
        max_steps: Optional[int] = None,
        deadline=None,
    ) -> list[Node]:
        """The node-set this authorization covers in one document.

        A bare-URI object denotes the root element of the document.
        *max_steps*/*deadline* bound the underlying XPath evaluation
        (see :mod:`repro.limits`).
        """
        compiled = self.compiled_path(relative_mode)
        if compiled is None:
            from repro.xml.nodes import Document

            if isinstance(document_root, Document):
                root = document_root.root
                return [root] if root is not None else []
            return [document_root]
        return compiled.select(document_root, max_steps=max_steps, deadline=deadline)

    def unparse(self) -> str:
        """The paper's angle-bracket notation."""
        return (
            f"<{self.subject.unparse()},{self.object.unparse()},"
            f"{self.action},{self.sign},{self.type}>"
        )

    def __str__(self) -> str:
        return self.unparse()
