"""Write/read policy-consistency checking (and optional repair).

A write policy is *consistent* with a read policy when every node a
subject may write is also a node that subject can see: a write grant on
a read-hidden node is at best useless and at worst an oracle — the
subject can probe hidden structure by observing which updates are
denied by validation, or blind-overwrite content it cannot read.
Bravo/Cheney/Fundulaki (arXiv 0708.2076) formalize exactly this class
of policy faults for DTD-based XML security annotations and show that
repairs can be computed; here the repair suggestion is the minimal
read grant that exposes the flagged node.

:func:`check_write_consistency` labels the document twice — once with
the write policy (full :class:`~repro.core.labeling.TreeLabeler` run)
and once with the read policy (a
:class:`~repro.rewrite.oracle.VisibilityOracle`, which also accounts
for the open/closed policy and structural survival in the pruned
view) — and flags, in document order, every element or attribute whose
write label is ``+`` but which does not exist in the requester's read
view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.authz.authorization import Authorization, AuthObject
from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import TreeLabeler
from repro.limits import Deadline, ResourceLimits
from repro.rewrite.oracle import VisibilityOracle
from repro.subjects.hierarchy import SubjectHierarchy
from repro.xml.nodes import Attribute, Document, Element
from repro.xml.traversal import node_path, preorder
from repro.xpath.compile import RelativeMode

__all__ = ["ConsistencyFinding", "check_write_consistency"]


@dataclass(frozen=True)
class ConsistencyFinding:
    """One write-grant on a read-hidden node.

    ``repair``, when requested, is the minimal read grant that would
    expose the node (a local ``+`` read authorization on its exact
    path) — granting it makes this finding disappear.
    """

    uri: str
    node_path: str
    kind: str = "write-on-hidden"
    write_sign: str = "+"
    detail: str = ""
    repair: Optional[Authorization] = None


def check_write_consistency(
    document: Document,
    *,
    uri: str,
    read_instance: list[Authorization],
    read_schema: list[Authorization],
    write_instance: list[Authorization],
    write_schema: list[Authorization],
    hierarchy: SubjectHierarchy,
    policy: Optional[ConflictPolicy] = None,
    open_policy: bool = False,
    relative_mode: RelativeMode = "descendant",
    suggest_repairs: bool = False,
    repair_subject=None,
    limits: Optional[ResourceLimits] = None,
    deadline: Optional[Deadline] = None,
) -> list[ConsistencyFinding]:
    """Flag write-writable nodes invisible under the read policy.

    The authorization lists are the *applicable* sets for one requester
    (the caller resolves subjects first, exactly as the serving path
    does). Findings come back in document order; with
    ``suggest_repairs`` each carries the minimal read grant (attributed
    to ``repair_subject``, default ``"Public"``) that exposes the node.
    """
    write_labels = TreeLabeler(
        document,
        write_instance,
        write_schema,
        hierarchy,
        policy=policy,
        relative_mode=relative_mode,
        limits=limits,
        deadline=deadline,
    ).run().labels
    oracle = VisibilityOracle(
        document,
        read_instance,
        read_schema,
        hierarchy,
        policy=policy,
        open_policy=open_policy,
        relative_mode=relative_mode,
        limits=limits,
        deadline=deadline,
    )
    findings: list[ConsistencyFinding] = []
    root = document.root
    if root is None:
        return findings
    for node in preorder(root):
        if not isinstance(node, (Element, Attribute)):
            continue
        label = write_labels.get(node)
        if label is None or label.final != "+":
            continue
        if oracle.exists(node):
            continue
        repair = None
        if suggest_repairs:
            repair = Authorization.build(
                repair_subject if repair_subject is not None else "Public",
                AuthObject(uri, node_path(node)),
                "+",
                "L",
                action="read",
            )
        kind = "element" if isinstance(node, Element) else "attribute"
        findings.append(
            ConsistencyFinding(
                uri=uri,
                node_path=node_path(node),
                detail=(
                    f"write grant admits this {kind} but the read policy "
                    "hides it from the same requester"
                ),
                repair=repair,
            )
        )
    return findings
