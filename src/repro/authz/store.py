"""The authorization store: the server's set Auth.

Authorizations are indexed by the URI of their object, so that steps 1
and 2 of the compute-view algorithm —

    Axml := {a ∈ Auth | rq ≤ subject(a), uri(object(a)) = URI}
    Adtd := {a ∈ Auth | rq ≤ subject(a), uri(object(a)) = dtd(URI)}

— are two indexed lookups followed by a subject-applicability filter.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.authz.authorization import Authorization
from repro.subjects.hierarchy import Requester, SubjectHierarchy

__all__ = ["AuthorizationStore"]


class AuthorizationStore:
    """All authorizations known to one server.

    The store is also the place where the subject hierarchy lives: use
    :attr:`hierarchy` (and its :attr:`~SubjectHierarchy.directory`) to
    register users and groups.
    """

    def __init__(self, hierarchy: Optional[SubjectHierarchy] = None) -> None:
        self.hierarchy = hierarchy if hierarchy is not None else SubjectHierarchy()
        self._by_uri: dict[str, list[Authorization]] = {}
        self._count = 0
        self._version = 0

    # -- mutation ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (cache guard)."""
        return self._version

    def add(self, authorization: Authorization) -> Authorization:
        """Register one authorization."""
        self._by_uri.setdefault(authorization.object.uri, []).append(authorization)
        self._count += 1
        self._version += 1
        return authorization

    def add_all(self, authorizations: Iterable[Authorization]) -> None:
        for authorization in authorizations:
            self.add(authorization)

    def remove(self, authorization: Authorization) -> bool:
        """Remove one authorization; returns whether it was present."""
        bucket = self._by_uri.get(authorization.object.uri)
        if not bucket:
            return False
        for index, existing in enumerate(bucket):
            if existing is authorization:
                del bucket[index]
                self._count -= 1
                self._version += 1
                if not bucket:
                    del self._by_uri[authorization.object.uri]
                return True
        return False

    def clear_uri(self, uri: str) -> int:
        """Drop every authorization attached to *uri*."""
        bucket = self._by_uri.pop(uri, [])
        self._count -= len(bucket)
        if bucket:
            self._version += 1
        return len(bucket)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Authorization]:
        for bucket in self._by_uri.values():
            yield from bucket

    def for_uri(self, uri: str) -> list[Authorization]:
        """Every authorization whose object URI is *uri*."""
        return list(self._by_uri.get(uri, ()))

    def uris(self) -> list[str]:
        return list(self._by_uri)

    def applicable(
        self,
        requester: Requester,
        uri: str,
        action: str = "read",
        at: Optional[float] = None,
    ) -> list[Authorization]:
        """Authorizations on *uri* applying to *requester* and *action*.

        This computes the paper's ``{a | rq ≤ subject(a),
        uri(object(a)) = URI}`` restricted to the requested action, with
        the future-work filters layered on: validity windows are checked
        against *at* (skip by passing ``None``) and credential clauses
        against the requester's presented credentials.
        """
        presented = requester.credential_map
        return [
            authorization
            for authorization in self._by_uri.get(uri, ())
            if authorization.action == action
            and authorization.is_active(at)
            and authorization.credentials_satisfied(presented)
            and self.hierarchy.applies_to(authorization.subject, requester)
        ]
