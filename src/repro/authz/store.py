"""The authorization store: the server's set Auth.

Authorizations are indexed by the URI of their object, so that steps 1
and 2 of the compute-view algorithm —

    Axml := {a ∈ Auth | rq ≤ subject(a), uri(object(a)) = URI}
    Adtd := {a ∈ Auth | rq ≤ subject(a), uri(object(a)) = dtd(URI)}

— are two indexed lookups followed by a subject-applicability filter.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.authz.authorization import Authorization
from repro.subjects.canonical import EffectiveClass, effective_class
from repro.subjects.hierarchy import Requester, SubjectHierarchy

__all__ = ["AuthorizationStore"]


class AuthorizationStore:
    """All authorizations known to one server.

    The store is also the place where the subject hierarchy lives: use
    :attr:`hierarchy` (and its :attr:`~SubjectHierarchy.directory`) to
    register users and groups.
    """

    def __init__(self, hierarchy: Optional[SubjectHierarchy] = None) -> None:
        self.hierarchy = hierarchy if hierarchy is not None else SubjectHierarchy()
        self._by_uri: dict[str, list[Authorization]] = {}
        self._count = 0
        self._version = 0
        self._universes: dict[Optional[str], tuple] = {}
        self._universe_version = -1

    # -- mutation ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (cache guard)."""
        return self._version

    def add(self, authorization: Authorization) -> Authorization:
        """Register one authorization."""
        self._by_uri.setdefault(authorization.object.uri, []).append(authorization)
        self._count += 1
        self._version += 1
        return authorization

    def add_all(self, authorizations: Iterable[Authorization]) -> None:
        for authorization in authorizations:
            self.add(authorization)

    def remove(self, authorization: Authorization) -> bool:
        """Remove one authorization; returns whether it was present."""
        bucket = self._by_uri.get(authorization.object.uri)
        if not bucket:
            return False
        for index, existing in enumerate(bucket):
            if existing is authorization:
                del bucket[index]
                self._count -= 1
                self._version += 1
                if not bucket:
                    del self._by_uri[authorization.object.uri]
                return True
        return False

    def clear_uri(self, uri: str) -> int:
        """Drop every authorization attached to *uri*."""
        bucket = self._by_uri.pop(uri, [])
        self._count -= len(bucket)
        if bucket:
            self._version += 1
        return len(bucket)

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Authorization]:
        for bucket in self._by_uri.values():
            yield from bucket

    def for_uri(self, uri: str) -> list[Authorization]:
        """Every authorization whose object URI is *uri*."""
        return list(self._by_uri.get(uri, ()))

    def uris(self) -> list[str]:
        return list(self._by_uri)

    def applicable(
        self,
        requester: Requester,
        uri: str,
        action: str = "read",
        at: Optional[float] = None,
    ) -> list[Authorization]:
        """Authorizations on *uri* applying to *requester* and *action*.

        This computes the paper's ``{a | rq ≤ subject(a),
        uri(object(a)) = URI}`` restricted to the requested action, with
        the future-work filters layered on: validity windows are checked
        against *at* (skip by passing ``None``) and credential clauses
        against the requester's presented credentials.
        """
        presented = requester.credential_map
        return [
            authorization
            for authorization in self._by_uri.get(uri, ())
            if authorization.action == action
            and authorization.is_active(at)
            and authorization.credentials_satisfied(presented)
            and self.hierarchy.applies_to(authorization.subject, requester)
        ]

    # -- canonicalization ------------------------------------------------------

    def subject_universe(self, action: Optional[str] = None) -> tuple:
        """The subject vocabulary referenced by the stored authorizations.

        Returns ``(user_groups, ip_patterns, symbolic_patterns,
        credential_clauses)``, each deduplicated — the inputs
        :func:`repro.subjects.canonical.effective_class` intersects a
        requester against. *action*, when given, restricts the universe
        to authorizations for that action: subjects referenced only by
        other actions cannot influence an *action*-applicability
        verdict, and excluding them lets more requesters collapse into
        one class. Cached per :attr:`version`.
        """
        if self._universe_version != self._version:
            self._universes.clear()
            self._universe_version = self._version
        cached = self._universes.get(action)
        if cached is not None:
            return cached
        user_groups: set[str] = set()
        ip_patterns: set = set()
        symbolic_patterns: set = set()
        credential_clauses: set = set()
        for authorization in self:
            if action is not None and authorization.action != action:
                continue
            subject = authorization.subject
            user_groups.add(subject.user_group)
            ip_patterns.add(subject.ip)
            symbolic_patterns.add(subject.symbolic)
            credential_clauses.update(authorization.credentials)
        universe = (
            frozenset(user_groups),
            frozenset(ip_patterns),
            frozenset(symbolic_patterns),
            frozenset(credential_clauses),
        )
        self._universes[action] = universe
        return universe

    def effective_class(
        self, requester: Requester, action: str = "read"
    ) -> EffectiveClass:
        """Canonicalize *requester* against this store's universe.

        Requesters with equal classes hold identical applicable
        authorization sets for every URI under *action* (see
        :mod:`repro.subjects.canonical`), so views and query plans
        computed for one can be shared with the others. Time-windowed
        applicability is *not* covered — combine with
        :meth:`validity_marker` when keying caches.
        """
        groups, ips, symbolics, clauses = self.subject_universe(action)
        return effective_class(
            requester,
            self.hierarchy,
            user_groups=groups,
            ip_patterns=ips,
            symbolic_patterns=symbolics,
            credential_clauses=clauses,
        )

    def validity_marker(
        self, uri: str, action: str = "read", at: Optional[float] = None
    ) -> tuple[bool, ...]:
        """Which time-windowed authorizations on *uri* are active at *at*.

        Effective classes are time-blind; this marker captures the one
        remaining time-dependent applicability input, so a cache key of
        ``(class, validity_marker)`` is exactly as discriminating as the
        full applicable-authorization computation. Bucket order is
        stable between mutations and mutations bump :attr:`version`,
        which cache entries already carry.
        """
        return tuple(
            authorization.is_active(at)
            for authorization in self._by_uri.get(uri, ())
            if authorization.action == action and authorization.validity is not None
        )
