"""Write/update enforcement — the paper's first "further work" item.

Section 8: "Issues to be investigated include ... the support for write
and update operations on the documents", and Definition 3's footnote:
"The support of other actions, like write, update, etc., does not
complicate the authorization model."

It indeed does not: authorizations already carry a generic ``action``
field, so write entitlements are ordinary 5-tuples with
``action="write"``, labeled by the very same compute-view pass. What is
new here is the *enforcement rule* for mutations and an atomic
apply-validate-commit cycle:

- an operation may touch a node only if the node's **write label** is
  ``+`` (closed policy: unlabeled means not writable);
- deleting a subtree requires every node in it to be writable — a
  requester must never destroy content that is hidden from them;
- inserting under an element requires the element itself to be
  writable;
- operations are applied to a clone of the stored document; if the
  document has a DTD, the result must still validate; only then is the
  stored document swapped (all-or-nothing semantics).

Operations form a small XUpdate-like vocabulary:
:class:`SetAttribute`, :class:`RemoveAttribute`, :class:`SetText`,
:class:`InsertChild`, :class:`DeleteNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.authz.conflict import ConflictPolicy
from repro.core.labeling import TreeLabeler
from repro.core.labels import Label
from repro.errors import ReproError, ValidationError
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.xml.nodes import Document, Element, Node, Text
from repro.xml.parser import parse_fragment
from repro.xml.traversal import node_path, preorder
from repro.xpath.compile import RelativeMode
from repro.dtd.validator import validate

__all__ = [
    "UpdateDenied",
    "SetAttribute",
    "RemoveAttribute",
    "SetText",
    "InsertChild",
    "DeleteNode",
    "UpdateOperation",
    "UpdateRequest",
    "UpdateOutcome",
    "UpdateEngine",
]


class UpdateDenied(ReproError):
    """The requester lacks write authorization for a touched node."""


@dataclass(frozen=True)
class SetAttribute:
    """Set (create or overwrite) an attribute on every selected element."""

    target: str  # XPath selecting elements
    name: str
    value: str


@dataclass(frozen=True)
class RemoveAttribute:
    """Remove an attribute from every selected element, if present."""

    target: str
    name: str


@dataclass(frozen=True)
class SetText:
    """Replace the text content of every selected element."""

    target: str
    text: str


@dataclass(frozen=True)
class InsertChild:
    """Append a parsed XML fragment under every selected element.

    ``position`` is the child index (``None`` appends at the end).
    """

    target: str
    fragment: str
    position: Optional[int] = None


@dataclass(frozen=True)
class DeleteNode:
    """Delete every selected element (attribute targets are rejected —
    use :class:`RemoveAttribute`)."""

    target: str


UpdateOperation = Union[SetAttribute, RemoveAttribute, SetText, InsertChild, DeleteNode]


@dataclass(frozen=True)
class UpdateRequest:
    """A batch of operations on one document by one requester."""

    requester: Requester
    uri: str
    operations: tuple[UpdateOperation, ...]
    action: str = "write"

    @classmethod
    def of(cls, requester: Requester, uri: str, *operations: UpdateOperation):
        return cls(requester, uri, tuple(operations))


@dataclass
class UpdateOutcome:
    """What an applied (or rejected) update did."""

    applied: bool
    touched_nodes: int = 0
    operations: int = 0
    detail: str = ""
    violations: list[str] = field(default_factory=list)


class UpdateEngine:
    """Checks and applies update batches against write labels."""

    def __init__(
        self,
        hierarchy: SubjectHierarchy,
        policy: Optional[ConflictPolicy] = None,
        relative_mode: RelativeMode = "descendant",
        validate_result: bool = True,
    ) -> None:
        self._hierarchy = hierarchy
        self._policy = policy
        self._relative_mode = relative_mode
        self._validate_result = validate_result

    def apply(
        self,
        document: Document,
        request: UpdateRequest,
        instance_auths,
        schema_auths,
    ) -> tuple[Document, UpdateOutcome]:
        """Enforce and apply *request* against *document*.

        Returns ``(new_document, outcome)``; *document* itself is never
        mutated. Raises :class:`UpdateDenied` when any operation touches
        a non-writable node and :class:`ValidationError` when the result
        would no longer conform to the document's DTD.
        """
        working = document.clone(deep=True)
        labels = TreeLabeler(
            working,
            instance_auths,
            schema_auths,
            self._hierarchy,
            policy=self._policy,
            relative_mode=self._relative_mode,
        ).run().labels

        touched = 0
        for operation in request.operations:
            touched += self._apply_one(working, operation, labels)

        if self._validate_result and working.dtd is not None:
            report = validate(working, working.dtd)
            if not report.valid:
                raise ValidationError(report.violations)

        outcome = UpdateOutcome(
            applied=True,
            touched_nodes=touched,
            operations=len(request.operations),
        )
        return working, outcome

    # -- per-operation -----------------------------------------------------

    def _apply_one(
        self,
        working: Document,
        operation: UpdateOperation,
        labels: dict[Node, Label],
    ) -> int:
        targets = self._writable_targets(working, operation.target, labels)
        if isinstance(operation, SetAttribute):
            for element in targets:
                self._require_attribute_writable(element, operation.name, labels)
                element.set_attribute(operation.name, operation.value)
            return len(targets)
        if isinstance(operation, RemoveAttribute):
            for element in targets:
                self._require_attribute_writable(element, operation.name, labels)
                element.remove_attribute(operation.name)
            return len(targets)
        if isinstance(operation, SetText):
            for element in targets:
                for child in [c for c in element.children if isinstance(c, Text)]:
                    element.remove(child)
                element.insert(0, Text(operation.text))
            return len(targets)
        if isinstance(operation, InsertChild):
            for element in targets:
                fragment = parse_fragment(operation.fragment)
                if operation.position is None:
                    element.append(fragment)
                else:
                    element.insert(operation.position, fragment)
            return len(targets)
        if isinstance(operation, DeleteNode):
            for element in targets:
                self._require_subtree_writable(element, labels)
                parent = element.parent
                if isinstance(parent, Document):
                    raise UpdateDenied("the root element may not be deleted")
                if isinstance(parent, Element):
                    parent.remove(element)
            return len(targets)
        raise ReproError(f"unknown operation {type(operation).__name__}")

    # -- entitlement checks ---------------------------------------------------

    def _writable_targets(
        self, working: Document, target: str, labels: dict[Node, Label]
    ) -> list[Element]:
        from repro.xpath.compile import compile_xpath

        nodes = compile_xpath(target, self._relative_mode).select(working)
        elements: list[Element] = []
        for node in nodes:
            if not isinstance(node, Element):
                raise UpdateDenied(
                    f"update target {target!r} selected a non-element node "
                    f"at {node_path(node)}"
                )
            self._require_writable(node, labels)
            elements.append(node)
        return elements

    def _require_writable(self, node: Node, labels: dict[Node, Label]) -> None:
        label = labels.get(node)
        if label is None or label.final != "+":
            raise UpdateDenied(
                f"no write authorization for {node_path(node)}"
            )

    def _require_attribute_writable(
        self, element: Element, name: str, labels: dict[Node, Label]
    ) -> None:
        attribute = element.attribute_node(name)
        if attribute is not None:
            self._require_writable(attribute, labels)
        # A new attribute inherits the element's writability, already
        # checked by _writable_targets.

    def _require_subtree_writable(
        self, element: Element, labels: dict[Node, Label]
    ) -> None:
        for node in preorder(element):
            self._require_writable(node, labels)
