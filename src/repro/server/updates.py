"""Compatibility shim — the update subsystem moved to :mod:`repro.update`.

The original write/update enforcement lived here; it grew into a full
subsystem (incremental relabeling, edit deltas, reusable label state)
and now lives in :mod:`repro.update`. Importing the old names from this
module keeps working; new code should import from :mod:`repro.update`
directly.
"""

from __future__ import annotations

from repro.update.engine import UpdateEngine, UpdateResult
from repro.update.ops import (
    DeleteNode,
    DeleteSubtree,
    InsertChild,
    InsertSubtree,
    RemoveAttribute,
    ReplaceSubtree,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateOperation,
    UpdateOutcome,
    UpdateRequest,
)

__all__ = [
    "UpdateDenied",
    "SetAttribute",
    "RemoveAttribute",
    "SetText",
    "InsertChild",
    "DeleteNode",
    "ReplaceSubtree",
    "InsertSubtree",
    "DeleteSubtree",
    "UpdateOperation",
    "UpdateRequest",
    "UpdateOutcome",
    "UpdateEngine",
    "UpdateResult",
]
