"""The server facade: documents in, per-requester views out.

:class:`SecureXMLServer` wires together the repository, the
authorization store, per-document policy configuration and the security
processor — the "service component in the framework of a complete
architecture" of Section 7. Enforcement is strictly server-side: the
only way to read a stored document through the facade is as a computed
view.

One policy applies per document ("the only restriction we impose is
that a single policy applies to each specific document", Section 5);
different documents may use different policies.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.authz.authorization import Authorization
from repro.authz.conflict import ConflictPolicy, policy_by_name
from repro.authz.restrictions import HistoryLimit
from repro.authz.store import AuthorizationStore
from repro.authz.xacl import parse_xacl
from repro.core.explain import Explanation, explain_from_auths
from repro.core.processor import SecurityProcessor
from repro.core.view import ViewResult, compute_view, compute_view_from_auths
from repro.errors import (
    DeadlineExceeded,
    LimitExceeded,
    PolicyError,
    RepositoryError,
    ResourceError,
    RewriteUnsupported,
    ValidationError,
)
from repro.limits import DEFAULT_LIMITS, Deadline, ResourceLimits
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, current_tracer, span, stage_totals, tracing
from repro.rewrite import VisibilityOracle, compile_rewrite
from repro.server.audit import AuditLog
from repro.server.cache import CachedView, ViewCache
from repro.server.repository import Repository
from repro.server.request import AccessRequest, AccessResponse, QueryRequest
from repro.update import (
    UpdateDenied,
    UpdateEngine,
    UpdateOutcome,
    UpdateRequest,
)
from repro.stream.events import DoctypeDecl, StartElement
from repro.stream.labeler import StreamLabeler
from repro.stream.paths import StreamPathUnsupported
from repro.stream.reader import StreamReader
from repro.stream.writer import StreamWriter
from repro.subjects.canonical import EffectiveClass
from repro.subjects.hierarchy import Requester, SubjectHierarchy
from repro.xml.nodes import Document
from repro.xml.parser import parse_document
from repro.xml.traversal import count_nodes
from repro.xml.serializer import serialize
from repro.xpath.compile import RelativeMode
from repro.xpath.evaluator import select
from repro.dtd.loosen import loosen
from repro.dtd.serializer import serialize_dtd

__all__ = ["PolicyConfig", "SecureXMLServer"]


@dataclass(frozen=True)
class PolicyConfig:
    """Access-control configuration for one document (or the default).

    ``history_limit`` enforces the paper's future-work "history-based
    restrictions": at most N granted reads per requester within a
    sliding window, counted against the server's audit log.
    """

    conflict_policy: str = "denials-take-precedence"
    open_policy: bool = False
    relative_paths: RelativeMode = "descendant"
    history_limit: Optional[HistoryLimit] = None

    def build_policy(self) -> ConflictPolicy:
        return policy_by_name(self.conflict_policy)


class AccessLimitExceeded(PolicyError):
    """The requester exhausted the document's history limit."""


class _RequestScope:
    """Mutable holder for one request's per-stage timing breakdown and
    its pending metric updates.

    ``pending`` accumulates ``(kind, name, labels, value)`` tuples that
    are flushed in ONE :meth:`MetricsRegistry.record_batch` call when
    the scope closes — so a request pays a single uncontended lock
    acquisition for all its accounting (see the C1 locking bound in
    ``benchmarks/run_report.py``). The scope itself is request-private
    (held in a ``ContextVar``), so appends are race-free.
    """

    __slots__ = ("timings", "pending")

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}
        self.pending: list[tuple] = []


#: The scope of the request currently being processed on this thread /
#: context (None outside a request). ContextVar, like the tracer: each
#: worker thread of a concurrent front end gets its own.
_ACTIVE_SCOPE: ContextVar[Optional[_RequestScope]] = ContextVar(
    "repro_request_scope", default=None
)


def _histogram_summary(histogram) -> dict:
    """Count/mean/approximate-percentiles for a latency histogram."""
    return {
        "count": histogram.count,
        "mean": histogram.mean,
        "p50": histogram.percentile(50),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
    }


class SecureXMLServer:
    """A complete in-process server enforcing the paper's model."""

    def __init__(
        self,
        default_policy: Optional[PolicyConfig] = None,
        audit: Optional[AuditLog] = None,
        view_cache: Optional[ViewCache] = None,
        limits: Optional[ResourceLimits] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_requests: bool = True,
    ) -> None:
        self.repository = Repository()
        self.store = AuthorizationStore()
        self.audit = audit if audit is not None else AuditLog()
        self.view_cache = view_cache
        #: Default per-request resource guards; individual requests may
        #: override via the ``limits=`` parameter of serve()/query().
        self.limits = limits if limits is not None else DEFAULT_LIMITS
        #: Per-server metric registry (request outcomes, latencies,
        #: per-stage costs, cache effectiveness); see server.stats()
        #: and docs/OBSERVABILITY.md.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: When true (the default), every serve()/query() runs under a
        #: request-scoped tracer and the response carries a per-stage
        #: ``timings`` breakdown. Turn off to shave the last few
        #: microseconds from microbenchmarks.
        self.trace_requests = trace_requests
        self._default_policy = default_policy or PolicyConfig()
        self._document_policies: dict[str, PolicyConfig] = {}
        # Requester -> effective-permission class memo, plus the set of
        # distinct requesters seen per class (for the collision metric).
        # Both guarded by one lock and keyed on the store+directory
        # versions, so policy/membership changes invalidate naturally.
        self._class_lock = threading.Lock()
        self._class_cache: "OrderedDict" = OrderedDict()
        self._class_members: "OrderedDict" = OrderedDict()
        # (uri, class, action, policy, validity) -> shared
        # VisibilityOracle for the virtual query path; entries carry the
        # store/document versions they were built against.
        self._oracle_lock = threading.Lock()
        self._oracles: "OrderedDict" = OrderedDict()
        # Write-path label-state reuse: (uri, write-class, action,
        # policy, validity) -> (LabelState, store/doc versions, tree).
        # A state is claimed (removed) by the update that reuses it —
        # rebasing mutates it, so it must never be shared.
        self._update_lock = threading.Lock()
        self._update_states: "OrderedDict" = OrderedDict()
        # cache class-key -> a representative requester of that class,
        # recorded when a view is cached; lets the update path rebuild
        # a visibility oracle for classes with cached views but no live
        # oracle, to prove their entries unaffected by an edit.
        self._requester_lock = threading.Lock()
        self._key_requesters: "OrderedDict" = OrderedDict()
        # Attribute sink failures to this server's registry too (the
        # process-wide METRICS keeps counting regardless); an audit log
        # explicitly wired to another registry is left alone.
        if self.audit.metrics is None:
            self.audit.metrics = self.metrics

    # -- administration -----------------------------------------------------

    @property
    def hierarchy(self) -> SubjectHierarchy:
        return self.store.hierarchy

    @property
    def directory(self):
        return self.store.hierarchy.directory

    def add_user(self, name: str, groups: tuple[str, ...] | list[str] = ()) -> str:
        return self.directory.add_user(name, groups)

    def add_group(self, name: str, parents: tuple[str, ...] | list[str] = ()) -> str:
        return self.directory.add_group(name, parents)

    def publish_dtd(self, uri: str, dtd) -> None:
        self.repository.add_dtd(uri, dtd)

    def publish_document(
        self,
        uri: str,
        content: Document | str,
        dtd_uri: Optional[str] = None,
        policy: Optional[PolicyConfig] = None,
        validate_on_add: bool = False,
        defer_parse: bool = False,
    ) -> None:
        """Publish a document; text content parses under the server's
        resource limits (or lazily, at first request, with
        *defer_parse*), so hostile uploads trip a typed guard instead
        of exhausting the process."""
        self.repository.add_document(
            uri,
            content,
            dtd_uri=dtd_uri,
            validate_on_add=validate_on_add,
            defer_parse=defer_parse,
            limits=self.limits,
        )
        if policy is not None:
            self._document_policies[uri] = policy

    def set_policy(self, uri: str, policy: PolicyConfig) -> None:
        """Configure the (single) policy governing document *uri*."""
        self._document_policies[uri] = policy

    def policy_for(self, uri: str) -> PolicyConfig:
        return self._document_policies.get(uri, self._default_policy)

    def grant(self, authorization: Authorization) -> Authorization:
        """Register one authorization (instance- or schema-level,
        depending on the object URI)."""
        return self.store.add(authorization)

    def attach_xacl(self, xacl_text: str) -> list[Authorization]:
        """Load an XACL document into the authorization store."""
        authorizations = parse_xacl(xacl_text)
        self.store.add_all(authorizations)
        return authorizations

    # -- serving --------------------------------------------------------------

    def serve(
        self, request: AccessRequest, limits: Optional[ResourceLimits] = None
    ) -> AccessResponse:
        """Serve one document request as the requester's view.

        When a :class:`~repro.server.cache.ViewCache` is configured,
        requests are keyed by the requester's *effective-permission
        class* (:func:`repro.subjects.canonical.effective_class`):
        distinct requesters with provably identical applicable
        authorizations share one cached entry, and a hit skips the
        authorization bind as well as the tree work (store/document
        versions and a time-validity marker guard freshness — see
        docs/VIEWS.md's sharing model).
        Concurrent misses on one key are collapsed by the cache's
        single-flight protocol: the first request computes the view,
        the rest wait and share the result (one labeling pass, audited
        as ``cache hit (single-flight)``; see docs/ARCHITECTURE.md's
        threading-model section and
        :func:`repro.server.concurrent.serve_many` for the worker-pool
        front end).

        *limits* overrides the server's default
        :class:`~repro.limits.ResourceLimits` for this request. A
        tripped guard never escapes as a traceback: it is audited and
        returned as a structured failure (``response.ok`` is false,
        ``response.error`` carries the typed exception). A cache outage
        degrades to recomputing the view; a repository read failure
        raises a typed :class:`~repro.errors.RepositoryError`.

        Unless ``trace_requests`` is off, the request runs under a
        request-scoped tracer and ``response.timings`` carries the
        per-stage wall-clock breakdown (seconds by stage name, e.g.
        ``label``, ``prune``, ``serialize``; the ``request.serve``
        entry is the whole request). See docs/OBSERVABILITY.md.
        """
        with self._request_scope("serve") as scope:
            response = self._serve(request, limits)
        response.timings = scope.timings
        return response

    def _serve(
        self, request: AccessRequest, limits: Optional[ResourceLimits]
    ) -> AccessResponse:
        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        self._enforce_history_limit(request.requester, request.uri)
        started = time.perf_counter()
        stored = self._stored(request.requester, request.uri, request.action)
        # Version snapshot for the cache protocol, taken *before* the
        # tree and the authorizations are read: if a concurrent
        # update/grant lands in between, the entry we build is labelled
        # with the pre-mutation versions and therefore immediately
        # stale (safe), never wrongly fresh.
        store_version = self.store.version
        document_version = stored.version
        try:
            deadline.check("request")
            document = stored.document(limits=limits, deadline=deadline)
        except ResourceError as exc:
            return self._guard_failure(request, exc, started, kind="serve")
        config = self.policy_for(request.uri)
        now = time.time()
        dtd_uri = self.repository.dtd_uri_of(request.uri)
        policy_marker = (
            config.conflict_policy,
            config.open_policy,
            config.relative_paths,
        )

        # The cache is keyed on the requester's *effective class* (plus
        # the time-validity marker), not on the bound authorization
        # identities: distinct-but-equivalent requesters share one
        # entry, and a hit skips authorization binding entirely. The
        # bind happens below, only when a view is actually computed.
        cache_key = None
        cache_note = ""
        if self.view_cache is not None:
            cache_key = ViewCache.class_key(
                request.uri,
                self._effective_class(request.requester, request.action),
                request.action,
                policy_marker,
                self._validity_marker(request.uri, dtd_uri, request.action, now),
            )
            self._remember_requester(cache_key, request.requester)
            try:
                hit = self.view_cache.get(
                    cache_key, store_version, document_version
                )
            except Exception:
                # Degrade, don't die: a broken cache means recomputing
                # the view, not failing the request. Skip the put too.
                hit, cache_key = None, None
                cache_note = "cache unavailable; view recomputed"
                self.metrics.counter(
                    "cache_degraded_total", event="get-failed"
                ).inc()
            else:
                self._meter(
                    "counter",
                    "viewcache_requests_total",
                    {"result": "hit" if hit is not None else "miss"},
                    1,
                )
            if hit is not None:
                return self._cached_response(request, hit, started, "cache hit")

        # Single-flight: the first miss on a key becomes the leader and
        # computes the view; concurrent misses on the same key park on
        # its Flight and share the result — one labeling pass, not N.
        lead, flight = False, None
        if self.view_cache is not None and cache_key is not None:
            lead, flight = self.view_cache.begin_flight(cache_key)
            if not lead:
                shared = flight.wait(timeout=deadline.remaining())
                if (
                    shared is not None
                    and shared.store_version == store_version
                    and shared.document_version == document_version
                ):
                    self.view_cache.record_shared()
                    self.metrics.counter(
                        "single_flight_total", outcome="shared"
                    ).inc()
                    return self._cached_response(
                        request, shared, started, "cache hit (single-flight)"
                    )
                # Leader failed, timed out, or computed under different
                # versions: compute our own view, without leadership.
                self.metrics.counter(
                    "single_flight_total", outcome="recomputed"
                ).inc()

        with span("authz.bind"):
            instance_auths = self.store.applicable(
                request.requester, request.uri, request.action, at=now
            )
            schema_auths = (
                self.store.applicable(
                    request.requester, dtd_uri, request.action, at=now
                )
                if dtd_uri
                else []
            )

        cached_entry: Optional[CachedView] = None
        try:
            try:
                view = compute_view_from_auths(
                    document,
                    instance_auths,
                    schema_auths,
                    self.hierarchy,
                    policy=config.build_policy(),
                    open_policy=config.open_policy,
                    relative_mode=config.relative_paths,
                    limits=limits,
                    deadline=deadline,
                )
            except ResourceError as exc:
                return self._guard_failure(request, exc, started, kind="serve")
            elapsed = time.perf_counter() - started
            with span("serialize"):
                xml_text = serialize(view.document, doctype=False)
                loosened = view.document.dtd
                loosened_text = serialize_dtd(loosened) if loosened else None
            if self.view_cache is not None and cache_key is not None:
                entry = CachedView(
                    xml_text=xml_text,
                    loosened_dtd_text=loosened_text,
                    empty=view.empty,
                    visible_nodes=view.visible_nodes,
                    total_nodes=view.total_nodes,
                    store_version=store_version,
                    document_version=document_version,
                )
                try:
                    self.view_cache.put(cache_key, entry)
                except Exception:
                    cache_note = "cache store failed; view served uncached"
                    self.metrics.counter(
                        "cache_degraded_total", event="put-failed"
                    ).inc()
                # Even when the put failed, parked followers can still
                # reuse the computed entry — it is correct regardless of
                # whether the cache kept it.
                cached_entry = entry
        finally:
            if lead:
                self.view_cache.end_flight(cache_key, flight, cached_entry)
        response = AccessResponse(
            uri=request.uri,
            xml_text=xml_text,
            loosened_dtd_text=loosened_text,
            empty=view.empty,
            visible_nodes=view.visible_nodes,
            total_nodes=view.total_nodes,
            elapsed_seconds=elapsed,
        )
        outcome = "empty" if view.empty else "released"
        self._record_request("serve", outcome, elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            request.action,
            outcome,
            visible_nodes=view.visible_nodes,
            total_nodes=view.total_nodes,
            elapsed_seconds=elapsed,
            detail=cache_note,
        )
        return response

    def _cached_response(
        self,
        request: AccessRequest,
        hit: CachedView,
        started: float,
        detail: str,
    ) -> AccessResponse:
        """Answer a request from a :class:`CachedView` (a cache hit or a
        shared single-flight result), with the usual accounting."""
        elapsed = time.perf_counter() - started
        outcome = "empty" if hit.empty else "released"
        self._record_request("serve", outcome, elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            request.action,
            outcome,
            visible_nodes=hit.visible_nodes,
            total_nodes=hit.total_nodes,
            elapsed_seconds=elapsed,
            detail=detail,
        )
        return AccessResponse(
            uri=request.uri,
            xml_text=hit.xml_text,
            loosened_dtd_text=hit.loosened_dtd_text,
            empty=hit.empty,
            visible_nodes=hit.visible_nodes,
            total_nodes=hit.total_nodes,
            elapsed_seconds=elapsed,
        )

    def serve_stream(
        self,
        request: AccessRequest,
        limits: Optional[ResourceLimits] = None,
        sink=None,
        chunk_size: int = 65536,
        feed_size: int = 65536,
    ) -> AccessResponse:
        """Serve one document request through the streaming pipeline.

        Semantically identical to :meth:`serve` — the view text, the
        loosened DTD, the ``empty`` flag and the node counts are the
        same, byte for byte — but the document is never materialized as
        a tree: the stored source streams through
        :class:`~repro.stream.reader.StreamReader` →
        :class:`~repro.stream.labeler.StreamLabeler` →
        :class:`~repro.stream.writer.StreamWriter`, in memory bounded
        by ``ResourceLimits.max_stream_buffer_bytes`` instead of the
        document size (``max_node_count`` does not apply: no nodes are
        created).

        *sink*, when given, receives the view text incrementally in
        chunks of roughly *chunk_size* characters — the first visible
        bytes leave before the last input byte is read. *feed_size* is
        how much source is handed to the reader per step.

        When an applicable authorization's path expression falls
        outside the streamable XPath subset, the request transparently
        falls back to the DOM pipeline (counted on
        ``stream_fallback_total``); correctness is never traded for
        streaming. The view cache is bypassed in both directions —
        streaming neither reads nor populates it.
        """
        with self._request_scope("serve_stream") as scope:
            response = self._serve_stream(
                request, limits, sink, chunk_size, feed_size
            )
        response.timings = scope.timings
        return response

    def _serve_stream(
        self,
        request: AccessRequest,
        limits: Optional[ResourceLimits],
        sink,
        chunk_size: int,
        feed_size: int,
    ) -> AccessResponse:
        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        self._enforce_history_limit(request.requester, request.uri)
        started = time.perf_counter()
        stored = self._stored(request.requester, request.uri, request.action)
        config = self.policy_for(request.uri)
        try:
            deadline.check("request")
            xml_text, labeler = self._stream_view(
                request, stored, config, limits, deadline,
                sink=sink, chunk_size=chunk_size, feed_size=feed_size,
            )
        except StreamPathUnsupported as exc:
            self.metrics.counter(
                "stream_fallback_total", reason="unsupported-path"
            ).inc()
            self.audit.record(
                request.requester,
                request.uri,
                request.action,
                "fallback",
                detail=f"stream fallback: {exc}",
                backend="stream",
            )
            return self._serve(request, limits)
        except ResourceError as exc:
            return self._guard_failure(
                request, exc, started, kind="serve_stream", backend="stream"
            )

        dtd = labeler.dtd
        if dtd is None and stored.dtd_uri and self.repository.has_dtd(stored.dtd_uri):
            dtd = self.repository.dtd(stored.dtd_uri)
        loosened_text = None
        if dtd is not None:
            with span("dtd.loosen"):
                loosened_text = serialize_dtd(loosen(dtd))

        elapsed = time.perf_counter() - started
        stats = labeler.stats
        self.metrics.counter("stream_events_total").inc(stats.events)
        if stats.buffered_elements:
            self.metrics.counter("stream_buffered_subtrees_total").inc(
                stats.buffered_elements
            )
        self.metrics.histogram("stream_peak_buffer_depth").observe(
            stats.peak_pending_depth
        )
        response = AccessResponse(
            uri=request.uri,
            xml_text=xml_text,
            loosened_dtd_text=loosened_text,
            empty=labeler.empty,
            visible_nodes=stats.visible_nodes,
            total_nodes=stats.total_nodes,
            elapsed_seconds=elapsed,
        )
        outcome = "empty" if labeler.empty else "released"
        self._record_request("serve_stream", outcome, elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            request.action,
            outcome,
            visible_nodes=stats.visible_nodes,
            total_nodes=stats.total_nodes,
            elapsed_seconds=elapsed,
            detail="streamed",
            backend="stream",
        )
        return response

    def _stream_view(
        self,
        request: AccessRequest,
        stored,
        config: PolicyConfig,
        limits: ResourceLimits,
        deadline: Deadline,
        sink=None,
        chunk_size: int = 65536,
        feed_size: int = 65536,
    ) -> tuple[str, StreamLabeler]:
        """Run the reader → labeler → writer pipeline for one request.

        Returns the view text and the finished labeler (stats, doctype
        info, emptiness). Raises
        :class:`~repro.stream.paths.StreamPathUnsupported` when an
        applicable authorization cannot be compiled for streaming, and
        lets resource guards (:class:`~repro.errors.ResourceError`) and
        syntax errors propagate — the callers decide how to surface
        them.
        """
        text = stored.source_text()
        reader = StreamReader(limits=limits, deadline=deadline)
        writer = StreamWriter(sink=sink, chunk_size=chunk_size)
        # The labeler is built lazily, at the root element: by then the
        # DOCTYPE (if any) has been read, so schema-level authorizations
        # can bind to the declared SYSTEM DTD even for deferred-parse
        # documents — the same information the DOM path gets from the
        # parsed tree.
        labeler: Optional[StreamLabeler] = None
        held: list = []

        def build_labeler() -> StreamLabeler:
            doctype_system = next(
                (
                    event.system_id
                    for event in held
                    if isinstance(event, DoctypeDecl)
                ),
                None,
            )
            if stored.dtd_uri is None and doctype_system is not None:
                stored.dtd_uri = doctype_system
            now = time.time()
            with span("authz.bind"):
                instance_auths = self.store.applicable(
                    request.requester, request.uri, request.action, at=now
                )
                dtd_uri = stored.dtd_uri
                schema_auths = (
                    self.store.applicable(
                        request.requester, dtd_uri, request.action, at=now
                    )
                    if dtd_uri
                    else []
                )
            with span("stream.compile"):
                return StreamLabeler(
                    writer,
                    instance_auths,
                    schema_auths,
                    hierarchy=self.hierarchy,
                    policy=config.build_policy(),
                    open_policy=config.open_policy,
                    relative_mode=config.relative_paths,
                    limits=limits,
                    deadline=deadline,
                )

        with span("stream.pipeline"):
            for start in range(0, len(text), feed_size):
                events = reader.feed(text[start : start + feed_size])
                if labeler is None:
                    held.extend(events)
                    if any(isinstance(event, StartElement) for event in events):
                        labeler = build_labeler()
                        labeler.feed(held)
                        held = []
                else:
                    labeler.feed(events)
            events = reader.close()
            if labeler is None:
                held.extend(events)
                labeler = build_labeler()
                labeler.feed(held)
            else:
                labeler.feed(events)
            xml_text = writer.end_document()
        return xml_text, labeler

    def query(
        self,
        request: QueryRequest,
        limits: Optional[ResourceLimits] = None,
        stream: bool = False,
        virtual: bool = False,
    ) -> AccessResponse:
        """Answer a path-expression query against the requester's view.

        The expression is evaluated on the *pruned* view, so results can
        never mention nodes the requester is not entitled to see. Like
        :meth:`serve`, the evaluation runs under resource guards (the
        XPath step budget and the request deadline); a tripped guard
        comes back as a structured, audited failure. Like :meth:`serve`,
        ``response.timings`` carries the per-stage breakdown (the whole
        request appears as ``request.query``).

        With *stream* the view is produced by the streaming pipeline
        (no tree of the stored document is materialized; only the —
        typically much smaller — pruned view is parsed for evaluation),
        falling back to the DOM pipeline when an authorization path is
        not streamable. The query result is identical either way.

        With *virtual* the view is never materialized at all: the query
        is rewritten into a guarded query over the stored document
        (:mod:`repro.rewrite`) and only the matched subtrees are
        pruned/serialized — same answer bytes, a fraction of the work
        for selective queries. Queries outside the rewritable XPath
        subset fall back transparently to the materialized path
        (counted on ``rewrite_fallback_total``); see docs/VIEWS.md.
        """
        with self._request_scope("query") as scope:
            response = self._query(request, limits, stream=stream, virtual=virtual)
        response.timings = scope.timings
        return response

    def _query(
        self,
        request: QueryRequest,
        limits: Optional[ResourceLimits],
        stream: bool = False,
        virtual: bool = False,
    ) -> AccessResponse:
        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        started = time.perf_counter()
        backend = "dom"
        if virtual:
            response = self._try_virtual_query(request, limits, deadline, started)
            if response is not None:
                return response
            # Outside the rewritable subset: transparent materialized
            # (or streaming) fallback below — same answer, slower path.
        try:
            deadline.check("request")
            view_document = None
            if stream:
                stored = self._stored(
                    request.requester, request.uri, request.action
                )
                config = self.policy_for(request.uri)
                try:
                    xml_text, labeler = self._stream_view(
                        request, stored, config, limits, deadline
                    )
                except StreamPathUnsupported:
                    self.metrics.counter(
                        "stream_fallback_total", reason="unsupported-path"
                    ).inc()
                else:
                    # An empty view has no root to parse; queries over
                    # it match nothing (as in the DOM path).
                    view_document = (
                        Document()
                        if labeler.empty
                        else parse_document(
                            xml_text,
                            uri=request.uri,
                            limits=limits,
                            deadline=deadline,
                        )
                    )
                    visible_nodes = labeler.stats.visible_nodes
                    total_nodes = labeler.stats.total_nodes
                    backend = "stream"
            if view_document is None:
                view = self._view_for(
                    request.requester,
                    request.uri,
                    request.action,
                    limits=limits,
                    deadline=deadline,
                )
                view_document = view.document
                visible_nodes = view.visible_nodes
                total_nodes = view.total_nodes
            nodes = (
                select(
                    request.xpath,
                    view_document,
                    max_steps=limits.max_xpath_steps,
                    deadline=deadline,
                )
                if view_document.root
                else []
            )
        except ResourceError as exc:
            return self._guard_failure(
                request,
                exc,
                started,
                action=f"query[{request.xpath}]",
                kind="query",
                backend=backend,
            )
        with span("serialize"):
            matches = [serialize(node) for node in nodes]
        elapsed = time.perf_counter() - started
        outcome = "released" if matches else "empty"
        self._record_request("query", outcome, elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            f"query[{request.xpath}]",
            outcome,
            visible_nodes=len(matches),
            total_nodes=total_nodes,
            elapsed_seconds=elapsed,
            backend=backend,
        )
        return AccessResponse(
            uri=request.uri,
            xml_text="\n".join(matches),
            empty=not matches,
            visible_nodes=visible_nodes,
            total_nodes=total_nodes,
            elapsed_seconds=elapsed,
            matches=matches,
        )

    def view(self, requester: Requester, uri: str, action: str = "read") -> ViewResult:
        """The full :class:`ViewResult` (labels included) for one request."""
        return self._view_for(requester, uri, action)

    def explain(
        self,
        requester: Requester,
        uri: str,
        xpath: Optional[str] = None,
        action: str = "read",
        limits: Optional[ResourceLimits] = None,
    ) -> Explanation:
        """Explain *requester*'s view of *uri*, node by node.

        Recomputes the view with a
        :class:`~repro.core.labeling.ProvenanceRecorder` attached and
        returns the resulting :class:`~repro.core.explain.Explanation`:
        for every node, the candidate authorizations per label slot,
        the conflict-resolution verdict, the exact propagation source
        (which ancestor's authorization a sign was inherited from,
        whether a weak sign was overridden) and the pruning outcome.
        ``explanation.describe()`` renders it for humans;
        ``explanation.to_json()`` for machines.

        *xpath*, when given, selects the nodes of interest (evaluated
        on the *full* stored document — explaining why something is
        absent from the view is the point); they land in
        ``explanation.targets`` and focus ``describe()``. The whole
        per-node map stays available either way.

        The request is metered (``explain_requests_total``,
        ``provenance_nodes_recorded_total``), traced under
        ``decision.explain`` (``explanation.timings`` carries the
        stage breakdown) and audited with ``action="explain"``.
        """
        with self._request_scope("explain") as scope:
            explanation = self._explain(requester, uri, xpath, action, limits)
        explanation.timings = scope.timings
        return explanation

    def _explain(
        self,
        requester: Requester,
        uri: str,
        xpath: Optional[str],
        action: str,
        limits: Optional[ResourceLimits],
    ) -> Explanation:
        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        started = time.perf_counter()
        stored = self._stored(requester, uri, action)
        document = stored.document(limits=limits, deadline=deadline)
        config = self.policy_for(uri)
        now = time.time()
        with span("decision.explain"):
            with span("authz.bind"):
                instance_auths = self.store.applicable(
                    requester, uri, action, at=now
                )
                dtd_uri = self.repository.dtd_uri_of(uri)
                schema_auths = (
                    self.store.applicable(requester, dtd_uri, action, at=now)
                    if dtd_uri
                    else []
                )
            explanation = explain_from_auths(
                document,
                instance_auths,
                schema_auths,
                self.hierarchy,
                policy=config.build_policy(),
                open_policy=config.open_policy,
                relative_mode=config.relative_paths,
                uri=uri,
                requester=str(requester),
                action=action,
                limits=limits,
                deadline=deadline,
            )
            if xpath is not None:
                explanation.targets = select(
                    xpath,
                    document,
                    max_steps=limits.max_xpath_steps,
                    deadline=deadline,
                )
        elapsed = time.perf_counter() - started
        self._meter("counter", "explain_requests_total", {}, 1)
        self._meter(
            "counter", "provenance_nodes_recorded_total", {}, len(explanation)
        )
        self._record_request("explain", "released", elapsed)
        self.audit.record(
            requester,
            uri,
            "explain" if xpath is None else f"explain[{xpath}]",
            "released",
            visible_nodes=explanation.visible_nodes,
            total_nodes=len(explanation),
            elapsed_seconds=elapsed,
            detail=f"{len(explanation.targets)} target(s)" if xpath else "",
        )
        return explanation

    def update(
        self, request: UpdateRequest, limits: Optional[ResourceLimits] = None
    ) -> UpdateOutcome:
        """Apply a write/update batch under ``action="write"`` labels.

        The operations are enforced node-by-node against the requester's
        write authorizations (paper, Section 8 future work; see
        :mod:`repro.update`), applied to a clone of the stored document
        under the per-document lock (so two concurrent writers never
        lose each other's batch), re-validated against its DTD and
        committed with a monotonically increasing per-document version.
        Relabeling after the edit is incremental — only the edited
        subtrees are re-run (``outcome.relabeled_nodes``/
        ``outcome.incremental``) — and view-cache invalidation is
        subtree-granular: entries whose views provably did not
        intersect the edit survive with re-stamped versions
        (``outcome.cache_kept``/``cache_dropped``).

        On denial or validation failure nothing is changed and the
        exception propagates (audited as denied). A tripped resource
        guard comes back as a *structured* failure: ``applied`` false,
        ``error``/``error_kind`` set, no traceback. Applied batches
        carry write provenance in ``outcome.admitted`` — exactly which
        authorizations admitted each touched target.
        """
        with self._request_scope("update") as scope:
            outcome = self._update(request, limits)
        outcome.detail = outcome.detail or ""
        return outcome

    def _update(
        self, request: UpdateRequest, limits: Optional[ResourceLimits]
    ) -> UpdateOutcome:
        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        started = time.perf_counter()
        stored = self._stored(
            request.requester, request.uri, request.action, kind="update"
        )
        config = self.policy_for(request.uri)
        policy_marker = (
            config.conflict_policy,
            config.open_policy,
            config.relative_paths,
        )
        dtd_uri = self.repository.dtd_uri_of(request.uri)
        # The whole read-clone-apply-commit cycle runs under the
        # per-document lock: concurrent readers stay lock-free on the
        # old tree, but a second writer waits instead of cloning the
        # same base and losing this batch on commit.
        with stored.exclusive():
            store_version = self.store.version
            old_version = stored.version
            now = time.time()
            try:
                deadline.check("request")
                document = stored.document(limits=limits, deadline=deadline)
            except ResourceError as exc:
                return self._update_guard_failure(request, exc, started)
            with span("authz.bind"):
                instance_auths = self.store.applicable(
                    request.requester, request.uri, request.action, at=now
                )
                schema_auths = (
                    self.store.applicable(
                        request.requester, dtd_uri, request.action, at=now
                    )
                    if dtd_uri
                    else []
                )
            engine = UpdateEngine(
                self.hierarchy,
                policy=config.build_policy(),
                relative_mode=config.relative_paths,
            )
            state_key = (
                request.uri,
                self._effective_class(request.requester, request.action),
                request.action,
                policy_marker,
                self._validity_marker(request.uri, dtd_uri, request.action, now),
            )
            state = self._claim_update_state(
                state_key, store_version, old_version, document
            )
            try:
                result = engine.apply_full(
                    document,
                    request,
                    instance_auths,
                    schema_auths,
                    limits=limits,
                    deadline=deadline,
                    state=state,
                    collect_admitted=True,
                )
            except (UpdateDenied, ValidationError) as exc:
                elapsed = time.perf_counter() - started
                bucket = (
                    "denied" if isinstance(exc, UpdateDenied) else "invalid"
                )
                self._meter(
                    "counter", "update_requests_total", {"outcome": bucket}, 1
                )
                self._record_request("update", "denied", elapsed)
                self.audit.record(
                    request.requester,
                    request.uri,
                    request.action,
                    "denied",
                    elapsed_seconds=elapsed,
                    detail=str(exc),
                    backend="update",
                )
                raise
            except ResourceError as exc:
                return self._update_guard_failure(request, exc, started)
            with span("update.commit"):
                result.document.uri = request.uri
                stored.replace_tree(result.document)
                new_version = stored.version
            self._store_update_state(
                state_key, result.state, store_version, new_version,
                result.document,
            )
            kept = dropped = 0
            if self.view_cache is not None:
                with span("update.invalidate"):
                    kept, dropped = self._invalidate_after_update(
                        request.uri, document, result,
                        store_version, old_version, new_version,
                        limits, deadline,
                    )
        outcome = result.outcome
        outcome.version = new_version
        outcome.cache_kept = kept
        outcome.cache_dropped = dropped
        elapsed = time.perf_counter() - started
        self._meter(
            "counter", "update_requests_total", {"outcome": "applied"}, 1
        )
        self._meter(
            "counter", "relabel_nodes_total", {}, outcome.relabeled_nodes
        )
        self._record_request("update", "released", elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            request.action,
            "released",
            visible_nodes=outcome.touched_nodes,
            elapsed_seconds=elapsed,
            detail=f"{outcome.operations} operation(s) applied",
            backend="update",
        )
        return outcome

    def _update_guard_failure(
        self, request: UpdateRequest, exc: ResourceError, started: float
    ) -> UpdateOutcome:
        """Turn a tripped guard on the write path into a structured,
        audited :class:`UpdateOutcome` instead of a raised traceback."""
        elapsed = time.perf_counter() - started
        trip_kind = (
            "deadline-exceeded"
            if isinstance(exc, DeadlineExceeded)
            else "limit-exceeded"
        )
        self.metrics.counter("guard_trips_total", kind=trip_kind).inc()
        self._meter(
            "counter", "update_requests_total", {"outcome": "error"}, 1
        )
        self._record_request("update", "error", elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            request.action,
            "error",
            elapsed_seconds=elapsed,
            detail=f"{trip_kind}: {exc}",
            backend="update",
        )
        return UpdateOutcome(applied=False, error=exc, error_kind=trip_kind)

    def _claim_update_state(
        self, key, store_version: int, document_version: int, document
    ):
        """Take (and remove) a reusable write-label state for *key*.

        Valid only when the store and document versions it was saved
        under still hold and the saved tree is the stored tree itself —
        otherwise it silently rebuilds. Claiming removes the entry
        because rebasing mutates the state in place.
        """
        with self._update_lock:
            entry = self._update_states.pop(key, None)
        if entry is None:
            return None
        state, entry_store_v, entry_doc_v, entry_doc = entry
        if (
            entry_store_v == store_version
            and entry_doc_v == document_version
            and entry_doc is document
        ):
            return state
        return None

    def _store_update_state(
        self, key, state, store_version: int, document_version: int, document
    ) -> None:
        with self._update_lock:
            self._update_states[key] = (
                state, store_version, document_version, document,
            )
            self._update_states.move_to_end(key)
            while len(self._update_states) > 16:
                self._update_states.popitem(last=False)

    def _remember_requester(self, key, requester: Requester) -> None:
        with self._requester_lock:
            self._key_requesters[key] = requester
            self._key_requesters.move_to_end(key)
            while len(self._key_requesters) > 4096:
                self._key_requesters.popitem(last=False)

    def _invalidate_after_update(
        self,
        uri: str,
        old_document: Document,
        result,
        store_version: int,
        old_version: int,
        new_version: int,
        limits: ResourceLimits,
        deadline: Deadline,
    ) -> tuple[int, int]:
        """Subtree-granular cache invalidation + oracle refresh.

        For every effective class with a live visibility oracle (or a
        cached view and a known representative requester), the oracle
        proves whether the edit intersected that class's view
        (:meth:`VisibilityOracle.refreshed_for_update`). Proven-disjoint
        entries survive with re-stamped versions; everything else
        drops. Refreshed oracle twins are installed so the virtual
        query path stays warm across updates.
        """
        with self._oracle_lock:
            snapshot = [
                (key, entry)
                for key, entry in self._oracles.items()
                if key[0] == uri
            ]
        decisions: dict = {}
        refreshed: dict = {}

        def prove(key, oracle) -> bool:
            out = oracle.refreshed_for_update(
                result.document, result.node_map, result.deltas
            )
            if out is None:
                return False
            twin, affected = out
            decisions[key] = not affected
            refreshed[key] = twin
            return not affected

        for key, (oracle, entry_store_v, entry_doc_v) in snapshot:
            if (
                entry_store_v != store_version
                or entry_doc_v != old_version
                or oracle.document is not old_document
            ):
                continue  # stale oracle: no proof for this class
            prove(key, oracle)

        def keep(key) -> bool:
            if key in decisions:
                return decisions[key]
            oracle = self._oracle_for_cached_class(
                key, old_document, limits, deadline
            )
            if oracle is None:
                return False
            return prove(key, oracle)

        kept, dropped = self.view_cache.invalidate_uri(
            uri,
            keep=keep,
            store_version=store_version,
            document_version=new_version,
        )
        with self._oracle_lock:
            for key in [k for k in self._oracles if k[0] == uri]:
                twin = refreshed.get(key)
                if twin is not None:
                    self._oracles[key] = (twin, store_version, new_version)
                else:
                    del self._oracles[key]
            for key, twin in refreshed.items():
                if key not in self._oracles:
                    self._oracles[key] = (twin, store_version, new_version)
                    self._oracles.move_to_end(key)
            while len(self._oracles) > 64:
                self._oracles.popitem(last=False)
        self._meter(
            "counter",
            "cache_partial_invalidations_total",
            {"result": "kept"},
            kept,
        )
        self._meter(
            "counter",
            "cache_partial_invalidations_total",
            {"result": "dropped"},
            dropped,
        )
        return kept, dropped

    def _oracle_for_cached_class(
        self, key, old_document: Document, limits, deadline
    ) -> Optional[VisibilityOracle]:
        """Rebuild the visibility oracle behind a cached view's class
        key, using the recorded representative requester — only when
        that requester still resolves to exactly this key (class,
        policy and validity unchanged), so the proof the oracle
        produces applies to the cached bytes."""
        with self._requester_lock:
            requester = self._key_requesters.get(key)
        if requester is None:
            return None
        uri, _effective, action, _policy_marker, _validity = key
        config = self.policy_for(uri)
        now = time.time()
        dtd_uri = self.repository.dtd_uri_of(uri)
        current = ViewCache.class_key(
            uri,
            self._effective_class(requester, action),
            action,
            (
                config.conflict_policy,
                config.open_policy,
                config.relative_paths,
            ),
            self._validity_marker(uri, dtd_uri, action, now),
        )
        if current != key:
            return None
        instance_auths = self.store.applicable(requester, uri, action, at=now)
        schema_auths = (
            self.store.applicable(requester, dtd_uri, action, at=now)
            if dtd_uri
            else []
        )
        try:
            return VisibilityOracle(
                old_document,
                instance_auths,
                schema_auths,
                self.hierarchy,
                policy=config.build_policy(),
                open_policy=config.open_policy,
                relative_mode=config.relative_paths,
                limits=limits,
                deadline=deadline,
            )
        except ResourceError:
            return None

    def check_consistency(
        self,
        requester: Requester,
        uri: str,
        suggest_repairs: bool = False,
        limits: Optional[ResourceLimits] = None,
    ):
        """Check write/read policy consistency for *requester* on *uri*.

        Flags every node the requester may write but cannot see (a
        write grant on a read-hidden node — useless at best, a probe
        oracle at worst); with *suggest_repairs* each finding carries
        the minimal read grant that would expose the node, attributed
        to the requester. Audited with backend ``update`` and outcome
        ``accept`` (no findings) or ``repair``. Returns the list of
        :class:`~repro.authz.consistency.ConsistencyFinding`.
        """
        from repro.authz.consistency import check_write_consistency

        limits = limits if limits is not None else self.limits
        deadline = limits.deadline()
        with self._request_scope("consistency"):
            started = time.perf_counter()
            stored = self._stored(requester, uri, "consistency")
            document = stored.document(limits=limits, deadline=deadline)
            config = self.policy_for(uri)
            now = time.time()
            dtd_uri = self.repository.dtd_uri_of(uri)
            findings = check_write_consistency(
                document,
                uri=uri,
                read_instance=self.store.applicable(
                    requester, uri, "read", at=now
                ),
                read_schema=(
                    self.store.applicable(requester, dtd_uri, "read", at=now)
                    if dtd_uri
                    else []
                ),
                write_instance=self.store.applicable(
                    requester, uri, "write", at=now
                ),
                write_schema=(
                    self.store.applicable(requester, dtd_uri, "write", at=now)
                    if dtd_uri
                    else []
                ),
                hierarchy=self.hierarchy,
                policy=config.build_policy(),
                open_policy=config.open_policy,
                relative_mode=config.relative_paths,
                suggest_repairs=suggest_repairs,
                repair_subject=requester.as_spec(),
                limits=limits,
                deadline=deadline,
            )
            elapsed = time.perf_counter() - started
            outcome = "accept" if not findings else "repair"
            self._meter(
                "counter", "consistency_checks_total", {"outcome": outcome}, 1
            )
            self._record_request("consistency", outcome, elapsed)
            self.audit.record(
                requester,
                uri,
                "consistency",
                outcome,
                visible_nodes=len(findings),
                elapsed_seconds=elapsed,
                detail=f"{len(findings)} finding(s)",
                backend="update",
            )
        return findings

    def processor_for(self, uri: str) -> SecurityProcessor:
        """A :class:`SecurityProcessor` configured with *uri*'s policy."""
        config = self.policy_for(uri)
        return SecurityProcessor(
            hierarchy=self.hierarchy,
            policy=config.build_policy(),
            open_policy=config.open_policy,
            relative_mode=config.relative_paths,
        )

    # -- observability --------------------------------------------------------

    def stats(self) -> dict:
        """An aggregate operational snapshot of this server.

        Returns a plain dict (JSON-serializable) with:

        - ``requests`` — ``{kind: {outcome: count}}`` for every
          serve/query handled (outcomes: ``released``, ``empty``,
          ``denied``, ``error``);
        - ``latency`` — per-kind request-latency summaries (count,
          mean and approximate p50/p95/p99, seconds) from the fixed
          histogram buckets;
        - ``stages`` — the same summaries per pipeline stage
          (``parse.xml``, ``label``, ``prune``, ...);
        - ``cache`` — :meth:`ViewCache.stats` (``None`` when no cache
          is configured);
        - ``documents``, ``authorizations``, ``audit_records`` —
          inventory sizes;
        - ``metrics`` — the raw per-server registry snapshot
          (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`).

        Global infrastructure counters (fault firings, retries) live on
        :data:`repro.obs.METRICS`, not here, because they are not
        attributable to one server instance.
        """
        requests: dict[str, dict[str, float]] = {}
        latency: dict[str, dict] = {}
        stages: dict[str, dict] = {}
        for metric in self.metrics:
            if metric.name == "requests_total":
                kind = metric.labels.get("kind", "?")
                outcome = metric.labels.get("outcome", "?")
                requests.setdefault(kind, {})[outcome] = metric.value
            elif metric.name == "request_seconds":
                latency[metric.labels.get("kind", "?")] = _histogram_summary(metric)
            elif metric.name == "stage_seconds":
                stages[metric.labels.get("stage", "?")] = _histogram_summary(metric)
        return {
            "requests": requests,
            "latency": latency,
            "stages": stages,
            "cache": self.view_cache.stats() if self.view_cache is not None else None,
            "documents": sum(1 for _ in self.repository.documents()),
            "authorizations": len(self.store),
            "audit_records": len(self.audit),
            "metrics": self.metrics.as_dict(),
        }

    @contextmanager
    def _request_scope(self, kind: str) -> Iterator["_RequestScope"]:
        """Run one request under a tracer and collect its breakdown.

        Reuses an already-active tracer (so callers doing their own
        ``with tracing():`` see every request's spans accumulate) or
        activates a fresh one for just this request. On normal exit the
        scope's ``timings`` holds seconds-per-stage and the per-stage
        histograms are fed; when a request raises (history denial,
        repository failure) the spans still land on the tracer but no
        breakdown is recorded.
        """
        scope = _RequestScope()
        token = _ACTIVE_SCOPE.set(scope)
        try:
            if not self.trace_requests:
                yield scope
                return
            outer = current_tracer()
            tracer = outer if outer is not None else Tracer()
            mark = len(tracer.spans)
            if outer is None:
                with tracing(tracer):
                    with tracer.span(f"request.{kind}"):
                        yield scope
            else:
                with tracer.span(f"request.{kind}"):
                    yield scope
            scope.timings = stage_totals(tracer.spans[mark:])
            for stage, seconds in scope.timings.items():
                scope.pending.append(
                    ("histogram", "stage_seconds", {"stage": stage}, seconds)
                )
        finally:
            # Flush even when the request raised (history denial,
            # repository failure): the outcome counters queued so far
            # must land; only the per-stage breakdown is skipped.
            _ACTIVE_SCOPE.reset(token)
            if scope.pending:
                self.metrics.record_batch(scope.pending)

    def _meter(self, kind: str, name: str, labels: dict, value: float) -> None:
        """Queue one metric update on the active request scope (flushed
        as a single batched lock acquisition at scope exit), or apply it
        immediately when no request scope is active."""
        scope = _ACTIVE_SCOPE.get()
        if scope is not None:
            scope.pending.append((kind, name, labels, value))
        else:
            self.metrics.record_batch([(kind, name, labels, value)])

    def _record_request(
        self, kind: str, outcome: str, elapsed: Optional[float] = None
    ) -> None:
        self._meter("counter", "requests_total", {"kind": kind, "outcome": outcome}, 1)
        if elapsed is not None:
            self._meter("histogram", "request_seconds", {"kind": kind}, elapsed)

    # -- internals ---------------------------------------------------------------

    def _view_for(
        self,
        requester: Requester,
        uri: str,
        action: str,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> ViewResult:
        stored = self._stored(requester, uri, action)
        document = stored.document(limits=limits, deadline=deadline)
        config = self.policy_for(uri)
        return compute_view(
            document,
            requester,
            self.store,
            dtd_uri=self.repository.dtd_uri_of(uri),
            policy=config.build_policy(),
            open_policy=config.open_policy,
            relative_mode=config.relative_paths,
            action=action,
            at=time.time(),
            limits=limits,
            deadline=deadline,
        )

    def _try_virtual_query(
        self,
        request: QueryRequest,
        limits: ResourceLimits,
        deadline: Deadline,
        started: float,
    ) -> Optional[AccessResponse]:
        """Answer a query by rewriting, or ``None`` to fall back.

        ``None`` means the expression is outside the rewritable subset
        (already metered); anything else — including structured guard
        failures — is the final response. Syntax errors propagate, as
        they would from the materialized path.
        """
        try:
            with span("rewrite.plan"):
                rewritten = compile_rewrite(request.xpath)
        except RewriteUnsupported as exc:
            self._meter(
                "counter", "rewrite_fallback_total", {"reason": exc.reason}, 1
            )
            self._meter(
                "counter", "rewrite_requests_total", {"outcome": "fallback"}, 1
            )
            return None
        stored = self._stored(request.requester, request.uri, request.action)
        store_version = self.store.version
        document_version = stored.version
        try:
            deadline.check("request")
            document = stored.document(limits=limits, deadline=deadline)
            oracle = self._oracle_for(
                request,
                document,
                store_version,
                document_version,
                limits,
                deadline,
            )
            if oracle.has_visible_root():
                with span("rewrite.eval"):
                    nodes = rewritten.select(
                        document,
                        oracle,
                        max_steps=limits.max_xpath_steps,
                        deadline=deadline,
                    )
            else:
                # Empty view: nothing can match (mirrors the
                # materialized path's empty-document short-circuit).
                nodes = []
        except ResourceError as exc:
            self._meter(
                "counter", "rewrite_requests_total", {"outcome": "error"}, 1
            )
            return self._guard_failure(
                request,
                exc,
                started,
                action=f"query[{request.xpath}]",
                kind="query",
                backend="virtual",
            )
        with span("serialize"):
            matches = [oracle.serialize_match(node) for node in nodes]
        self._meter(
            "counter", "rewrite_requests_total", {"outcome": "rewritten"}, 1
        )
        total_nodes = (
            count_nodes(document.root) if document.root is not None else 0
        )
        elapsed = time.perf_counter() - started
        outcome = "released" if matches else "empty"
        self._record_request("query", outcome, elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            f"query[{request.xpath}]",
            outcome,
            visible_nodes=len(matches),
            total_nodes=total_nodes,
            elapsed_seconds=elapsed,
            backend="virtual",
        )
        return AccessResponse(
            uri=request.uri,
            xml_text="\n".join(matches),
            empty=not matches,
            # The full view is never computed, so ``visible_nodes`` is
            # the match count here (the materialized path reports the
            # view's node count) — documented in docs/VIEWS.md.
            visible_nodes=len(matches),
            total_nodes=total_nodes,
            elapsed_seconds=elapsed,
            matches=matches,
        )

    def _oracle_for(
        self,
        request: QueryRequest,
        document: Document,
        store_version: int,
        document_version: int,
        limits: ResourceLimits,
        deadline: Deadline,
    ) -> VisibilityOracle:
        """A visibility oracle for this request's effective class.

        Oracles are shared across requests of one class (their label
        memos accumulate), keyed like cached views and validated
        against the store/document versions they were built against.
        """
        config = self.policy_for(request.uri)
        now = time.time()
        dtd_uri = self.repository.dtd_uri_of(request.uri)
        key = (
            request.uri,
            self._effective_class(request.requester, request.action),
            request.action,
            (config.conflict_policy, config.open_policy, config.relative_paths),
            self._validity_marker(request.uri, dtd_uri, request.action, now),
        )
        with self._oracle_lock:
            entry = self._oracles.get(key)
            if entry is not None:
                oracle, entry_store_v, entry_doc_v = entry
                if (
                    entry_store_v == store_version
                    and entry_doc_v == document_version
                    and oracle.document is document
                ):
                    self._oracles.move_to_end(key)
                    return oracle
                del self._oracles[key]
        with span("authz.bind"):
            instance_auths = self.store.applicable(
                request.requester, request.uri, request.action, at=now
            )
            schema_auths = (
                self.store.applicable(
                    request.requester, dtd_uri, request.action, at=now
                )
                if dtd_uri
                else []
            )
        oracle = VisibilityOracle(
            document,
            instance_auths,
            schema_auths,
            self.hierarchy,
            policy=config.build_policy(),
            open_policy=config.open_policy,
            relative_mode=config.relative_paths,
            limits=limits,
            deadline=deadline,
        )
        with self._oracle_lock:
            self._oracles[key] = (oracle, store_version, document_version)
            self._oracles.move_to_end(key)
            while len(self._oracles) > 64:
                self._oracles.popitem(last=False)
        return oracle

    def _effective_class(
        self, requester: Requester, action: str = "read"
    ) -> EffectiveClass:
        """Memoized requester canonicalization (see repro.subjects).

        Keyed on the store and directory versions, so a grant or a
        group-membership change recomputes classes. The first time a
        *second* distinct requester lands in an existing class,
        ``effective_class_collisions_total`` counts the collapse.
        """
        marker = (self.store.version, self.directory.version, action)
        with self._class_lock:
            entry = self._class_cache.get((requester, action))
            if entry is not None and entry[0] == marker:
                self._class_cache.move_to_end((requester, action))
                return entry[1]
        effective = self.store.effective_class(requester, action)
        with self._class_lock:
            self._class_cache[(requester, action)] = (marker, effective)
            self._class_cache.move_to_end((requester, action))
            while len(self._class_cache) > 4096:
                self._class_cache.popitem(last=False)
            members = self._class_members.get((marker, effective))
            if members is None:
                members = set()
                self._class_members[(marker, effective)] = members
                while len(self._class_members) > 4096:
                    self._class_members.popitem(last=False)
            if requester not in members:
                if members:
                    self._meter(
                        "counter", "effective_class_collisions_total", {}, 1
                    )
                if len(members) < 64:
                    members.add(requester)
        return effective

    def _validity_marker(
        self, uri: str, dtd_uri: Optional[str], action: str, now: float
    ):
        """The time-windowed applicability bits for both auth lookups."""
        instance_marker = self.store.validity_marker(uri, action, at=now)
        schema_marker = (
            self.store.validity_marker(dtd_uri, action, at=now)
            if dtd_uri
            else ()
        )
        return (instance_marker, schema_marker)

    def _stored(
        self, requester: Requester, uri: str, action: str, kind: str = "serve"
    ):
        """Fetch a stored document, converting any repository failure
        into an audited, typed :class:`~repro.errors.RepositoryError`."""
        try:
            return self.repository.stored(uri)
        except RepositoryError:
            self._record_request(kind, "error")
            self.audit.record(
                requester, uri, action, "error", detail="unknown document"
            )
            raise
        except Exception as exc:
            self.metrics.counter("repository_errors_total").inc()
            self._record_request(kind, "error")
            self.audit.record(
                requester,
                uri,
                action,
                "error",
                detail=f"repository read failed: {exc}",
            )
            raise RepositoryError(
                f"repository read failed for {uri!r}: {exc}"
            ) from exc

    def _guard_failure(
        self,
        request: AccessRequest | QueryRequest,
        exc: ResourceError,
        started: float,
        action: Optional[str] = None,
        kind: str = "serve",
        backend: str = "dom",
    ) -> AccessResponse:
        """Turn a tripped resource guard into an audited structured
        failure instead of a raised traceback."""
        elapsed = time.perf_counter() - started
        trip_kind = (
            "deadline-exceeded"
            if isinstance(exc, DeadlineExceeded)
            else "limit-exceeded"
        )
        self.metrics.counter("guard_trips_total", kind=trip_kind).inc()
        self._record_request(kind, "error", elapsed)
        self.audit.record(
            request.requester,
            request.uri,
            action or request.action,
            "error",
            elapsed_seconds=elapsed,
            detail=f"{trip_kind}: {exc}",
            backend=backend,
        )
        return AccessResponse(
            uri=request.uri,
            xml_text="",
            empty=True,
            elapsed_seconds=elapsed,
            error=exc,
            error_kind=trip_kind,
        )

    def _enforce_history_limit(self, requester: Requester, uri: str) -> None:
        limit = self.policy_for(uri).history_limit
        if limit is None:
            return
        horizon = time.time() - limit.window_seconds
        granted = sum(
            1
            for record in self.audit
            if record.uri == uri
            and record.requester == str(requester)
            and record.action == "read"
            # Every *served* request counts — an empty view still reveals
            # that the document exists and costs a view computation.
            and record.outcome in ("released", "empty")
            and record.timestamp >= horizon
        )
        if granted >= limit.max_accesses:
            self._record_request("serve", "denied")
            self.audit.record(
                requester,
                uri,
                "read",
                "denied",
                detail=(
                    f"history limit: {limit.max_accesses} accesses per "
                    f"{limit.window_seconds:.0f}s exhausted"
                ),
            )
            raise AccessLimitExceeded(
                f"{requester} exceeded {limit.max_accesses} accesses on {uri} "
                f"within {limit.window_seconds:.0f}s"
            )
