"""Access requests and responses exchanged with the server facade.

The main usage scenario (paper, Section 7) is "a user requesting a set
of XML documents from a remote site, either through an HTTP request or
as the result of a query". :class:`AccessRequest` models the former;
:class:`QueryRequest` the latter (a path expression selecting documents
or fragments, each of which is then filtered through compute-view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.subjects.hierarchy import Requester

__all__ = ["AccessRequest", "QueryRequest", "AccessResponse"]


@dataclass(frozen=True)
class AccessRequest:
    """A request to read one document."""

    requester: Requester
    uri: str
    action: str = "read"


@dataclass(frozen=True)
class QueryRequest:
    """A request to evaluate a path expression over one document.

    The query runs against the *requester's view*, never the raw
    document — enforcing that query answers cannot leak pruned content.
    """

    requester: Requester
    uri: str
    xpath: str
    action: str = "read"


@dataclass
class AccessResponse:
    """What the server returns for an access request.

    A resource-guard trip (limit or deadline) does not raise through
    the facade: it comes back as a *structured failure* — ``error``
    carries the typed exception (:class:`~repro.errors.LimitExceeded`
    or :class:`~repro.errors.DeadlineExceeded`) and ``error_kind`` a
    stable machine-readable tag. Check :attr:`ok` before using the
    view text.
    """

    uri: str
    xml_text: str
    loosened_dtd_text: Optional[str] = None
    empty: bool = False
    visible_nodes: int = 0
    total_nodes: int = 0
    elapsed_seconds: float = 0.0
    matches: list[str] = field(default_factory=list)  # query responses only
    #: The typed guard exception on failure, ``None`` on success.
    error: Optional[BaseException] = None
    #: "limit-exceeded" | "deadline-exceeded" | None
    error_kind: Optional[str] = None
    #: Per-stage wall-clock breakdown of this request, seconds by stage
    #: name (``parse.xml``, ``authz.bind``, ``label``, ``prune``,
    #: ``serialize``, ...; ``request.serve``/``request.query`` covers
    #: the whole request). Empty when the server was built with
    #: ``trace_requests=False``. Stage vocabulary and caveats:
    #: docs/OBSERVABILITY.md.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request produced a view (no guard tripped)."""
        return self.error is None
