"""Retry-with-backoff for transient infrastructure failures.

The persistence layer (and any future remote backend) distinguishes
*transient* failures — a busy disk, a flaky network write — from
permanent ones. :func:`retry_call` re-runs an operation under a
:class:`RetryPolicy` with deterministic exponential backoff; after the
last attempt the original exception propagates unchanged, so callers
still see the real error when recovery is impossible.

The sleep function is injectable, keeping tests instant and the backoff
schedule assertable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.obs.metrics import METRICS

__all__ = ["RetryPolicy", "retry_call", "DEFAULT_RETRY_POLICY"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait in between.

    ``delay(attempt)`` for attempt 1, 2, 3... is
    ``base_delay * multiplier ** (attempt - 1)``, capped at
    ``max_delay`` — deterministic, so tests can assert the schedule.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ValueError("backoff parameters must be non-negative (multiplier >= 1)")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))


DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    func: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Optional[Callable[[float], None]] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call *func* until it succeeds or the policy is exhausted.

    Parameters
    ----------
    func:
        Zero-argument operation to run.
    policy:
        Attempt count and backoff schedule.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.
    sleep:
        Wait function (defaults to :func:`time.sleep`); tests inject a
        recorder to keep the suite instant.
    on_retry:
        Optional observer called with (attempt_number, exception) before
        each backoff wait — e.g. to audit the recovery.
    """
    wait = time.sleep if sleep is None else sleep
    for attempt in range(1, policy.attempts + 1):
        try:
            return func()
        except retry_on as exc:
            if attempt == policy.attempts:
                METRICS.counter("retry_exhausted_total").inc()
                raise
            METRICS.counter("retry_attempts_total").inc()
            if on_retry is not None:
                on_retry(attempt, exc)
            wait(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover
