"""Durable audit: a JSON-Lines sink with size-based rotation.

:class:`JsonlAuditSink` plugs into :attr:`AuditLog.sink
<repro.server.audit.AuditLog.sink>` and appends one JSON object per
:class:`~repro.server.audit.AuditRecord` to a file. Design points,
mirroring the persistence layer (:mod:`repro.server.persistence`):

- **Atomic appends.** Each record is written with a single
  ``os.write`` on an ``O_APPEND`` descriptor — the line lands whole or
  not at all, and concurrent writers never interleave bytes.
- **Retries.** The write runs under
  :func:`~repro.server.retry.retry_call` with the shared backoff
  policy; transient ``OSError``\\ s (and the ``audit.write``
  fault-injection point, see :mod:`repro.testing.faults`) are retried
  before giving up. A definitively failed write raises — the owning
  :class:`~repro.server.audit.AuditLog` contains the failure, keeps the
  in-memory ring intact and counts ``audit_sink_errors_total``.
- **Size-based rotation.** When the file reaches ``max_bytes`` it is
  atomically renamed (``os.replace``) to ``<path>.1``, shifting older
  generations up to ``<path>.<max_files>`` (the oldest is dropped).
  Rotations count on ``audit_sink_rotations_total``.
- **One lock around append + size accounting + rotation.** The sink's
  size estimate and the rotate-now decision are check-then-act on
  shared state: two unlocked writers would each see ``_size`` below the
  threshold (missing a rotation) or both see it above (double-rotating,
  shuffling a nearly empty file into the generations). Every
  :meth:`JsonlAuditSink.write` runs the whole append → account → maybe
  rotate sequence under the sink lock, and the size counter is
  re-stat'ed from the filesystem after each ``os.replace`` so it can
  never drift from the actual live file.

:func:`iter_audit_records` reads a log back — rotated generations
first, oldest to newest — for programmatic queries;
``tools/audit_query.py`` is the command-line counterpart.
"""

from __future__ import annotations

import glob
import os
import threading
from typing import Callable, Iterator, Optional

from repro.obs.metrics import METRICS
from repro.server.audit import AuditRecord
from repro.server.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call
from repro.testing.faults import InjectedFault, trip

__all__ = ["JsonlAuditSink", "iter_audit_records"]

#: Exceptions treated as transient by the sink's retry wrapper.
_TRANSIENT = (OSError, InjectedFault)


class JsonlAuditSink:
    """Append :class:`AuditRecord`\\ s to a rotating JSONL file.

    Parameters
    ----------
    path:
        The live log file; rotated generations live beside it as
        ``<path>.1`` (newest) … ``<path>.<max_files>`` (oldest).
    max_bytes:
        Rotate once the live file reaches this size (bytes).
    max_files:
        How many rotated generations to keep.
    retry_policy / sleep:
        Retry schedule and injectable wait for transient write
        failures (defaults match the persistence layer).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = 1_048_576,
        max_files: int = 5,
        retry_policy: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        self.max_files = max(1, int(max_files))
        self._policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self._sleep = sleep
        self.records_written = 0
        self.rotations = 0
        #: Serializes append + size accounting + rotation; see the
        #: module docstring.
        self._lock = threading.Lock()
        try:
            self._size = os.path.getsize(self.path)
        except OSError:
            self._size = 0

    # AuditLog.sink is "any callable taking a record".
    def __call__(self, record: AuditRecord) -> None:
        self.write(record)

    def write(self, record: AuditRecord) -> None:
        """Durably append one record (retrying transient failures).

        The append, the size accounting and the rotate-now decision run
        as one atomic step under the sink lock: concurrent writers can
        neither miss a rotation (both reading a below-threshold
        ``_size``) nor rotate twice for one overflow.
        """
        data = (record.to_json() + "\n").encode("utf-8")

        def attempt() -> None:
            trip("audit.write")
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, data)
            finally:
                os.close(fd)

        with self._lock:
            retry_call(
                attempt, policy=self._policy, retry_on=_TRANSIENT, sleep=self._sleep
            )
            self.records_written += 1
            self._size += len(data)
            if self._size >= self.max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        """Shift generations up and start a fresh live file.

        Caller holds the sink lock.
        """

        def attempt() -> None:
            trip("audit.write")
            for index in range(self.max_files - 1, 0, -1):
                source = self._generation(index)
                if os.path.exists(source):
                    os.replace(source, self._generation(index + 1))
            if os.path.exists(self.path):
                os.replace(self.path, self._generation(1))
            # The live file always exists after a rotation, so readers
            # polling it never see a window with no log at all.
            os.close(os.open(self.path, os.O_WRONLY | os.O_CREAT, 0o644))

        retry_call(
            attempt, policy=self._policy, retry_on=_TRANSIENT, sleep=self._sleep
        )
        # Re-stat rather than assume zero: the ground truth for the
        # rotation decision is the live file the os.replace left behind,
        # and an external writer (or a partially failed attempt) may
        # already have bytes in it.
        try:
            self._size = os.path.getsize(self.path)
        except OSError:
            self._size = 0
        self.rotations += 1
        METRICS.counter("audit_sink_rotations_total").inc()

    def _generation(self, index: int) -> str:
        return f"{self.path}.{index}"


def iter_audit_records(
    path: str | os.PathLike, include_rotated: bool = True
) -> Iterator[AuditRecord]:
    """Yield the records of a JSONL audit log, oldest first.

    With *include_rotated*, rotated generations (``<path>.N``) are read
    before the live file, highest generation (= oldest records) first.
    Blank lines are skipped; a missing file yields nothing.
    """
    base = os.fspath(path)
    candidates: list[str] = []
    if include_rotated:
        generations = []
        for name in glob.glob(glob.escape(base) + ".*"):
            suffix = name[len(base) + 1 :]
            if suffix.isdigit():
                generations.append((int(suffix), name))
        candidates.extend(name for _, name in sorted(generations, reverse=True))
    candidates.append(base)
    for name in candidates:
        try:
            handle = open(name, "r", encoding="utf-8")
        except OSError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield AuditRecord.from_json(line)
