"""Server-side view cache.

A view is a pure function of (document tree, applicable authorization
set, policy knobs) — so repeated requests by requesters who resolve to
the *same* applicable authorizations (e.g. every anonymous visitor, or
all members of one group from unrestricted locations) can share one
computed view. This is the natural production optimization for the
paper's architecture: enforcement stays server-side and per-request,
only the tree work is amortized.

Correctness is guarded by versioning, not by invalidation hooks: the
authorization store and each stored document carry monotonic version
counters; a cache hit is only honoured when both versions still match.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.obs.trace import span
from repro.testing.faults import trip

__all__ = ["CachedView", "ViewCache"]


@dataclass
class CachedView:
    """One memoized serialization of a computed view."""

    xml_text: str
    loosened_dtd_text: Optional[str]
    empty: bool
    visible_nodes: int
    total_nodes: int
    store_version: int
    document_version: int


class ViewCache:
    """A bounded LRU keyed by (uri, applicable-auth identity, knobs).

    The cache keeps its own effectiveness counters — ``hits``,
    ``misses``, ``evictions``, ``stale`` — exposed as a snapshot by
    :meth:`stats` and zeroed by :meth:`reset_stats` (the entries
    themselves survive a stats reset; :meth:`clear` drops entries but
    keeps the counters). :meth:`~repro.server.service.SecureXMLServer.stats`
    folds this snapshot into the server-wide report.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("view cache needs at least one entry")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, CachedView]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale = 0

    @staticmethod
    def key(
        uri: str,
        instance_auths,
        schema_auths,
        action: str,
        policy_marker: Hashable,
    ) -> Hashable:
        """Build a cache key from the *identities* of the applicable
        authorizations (5-tuples are shared objects in the store, so
        identity equality is exact)."""
        return (
            uri,
            tuple(id(a) for a in instance_auths),
            tuple(id(a) for a in schema_auths),
            action,
            policy_marker,
        )

    def get(
        self, key: Hashable, store_version: int, document_version: int
    ) -> Optional[CachedView]:
        with span("cache.lookup"):
            trip("cache.get")
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if (
                entry.store_version != store_version
                or entry.document_version != document_version
            ):
                # Stale: the policy or the document changed underneath it.
                del self._entries[key]
                self.stale += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, entry: CachedView) -> None:
        with span("cache.store"):
            trip("cache.put")
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """A point-in-time effectiveness snapshot.

        Keys: ``entries``, ``max_entries``, ``hits``, ``misses``,
        ``hit_rate``, ``evictions`` (capacity-driven removals) and
        ``stale`` (version-mismatch removals; already counted in
        ``misses``).
        """
        return {
            "entries": len(self._entries),
            "max_entries": self._max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "stale": self.stale,
        }

    def reset_stats(self) -> None:
        """Zero the counters without touching the cached entries."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale = 0
