"""Server-side view cache.

A view is a pure function of (document tree, applicable authorization
set, policy knobs) — so repeated requests by requesters who resolve to
the *same* applicable authorizations (e.g. every anonymous visitor, or
all members of one group from unrestricted locations) can share one
computed view. This is the natural production optimization for the
paper's architecture: enforcement stays server-side and per-request,
only the tree work is amortized.

Correctness is guarded by versioning, not by invalidation hooks: the
authorization store and each stored document carry monotonic version
counters; a cache hit is only honoured when both versions still match.

The cache is **thread-safe**. Entry and counter access goes through one
:class:`threading.RLock` — without it, concurrent ``get``/``put`` calls
corrupt the ``OrderedDict``'s LRU order (``move_to_end`` races with
eviction's ``popitem``), lose counter increments, and can raise
``RuntimeError: dictionary changed size during iteration`` out of
``stats()``. On top of the lock sits a **single-flight** protocol for
misses: when N concurrent requests miss on the same key, the first
becomes the *leader* and computes the view once; the other N-1 become
*followers*, park on the leader's :class:`Flight`, and share the result
— one labeling pass instead of N (see
:meth:`~repro.server.service.SecureXMLServer.serve`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.obs.trace import span
from repro.testing.faults import trip

__all__ = ["CachedView", "Flight", "ViewCache"]


@dataclass
class CachedView:
    """One memoized serialization of a computed view."""

    xml_text: str
    loosened_dtd_text: Optional[str]
    empty: bool
    visible_nodes: int
    total_nodes: int
    store_version: int
    document_version: int


class Flight:
    """One in-progress view computation that concurrent misses share.

    The *leader* (the request that started the computation) publishes
    its :class:`CachedView` — or ``None``, when the computation failed
    or was never cacheable — via :meth:`complete`; *followers* park in
    :meth:`wait`. A flight completes exactly once; waiting after
    completion returns immediately.
    """

    __slots__ = ("_ready", "entry")

    def __init__(self) -> None:
        self._ready = threading.Event()
        self.entry: Optional[CachedView] = None

    def complete(self, entry: Optional[CachedView]) -> None:
        self.entry = entry
        self._ready.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[CachedView]:
        """Block until the leader publishes; ``None`` on timeout/failure."""
        if not self._ready.wait(timeout):
            return None
        return self.entry


class ViewCache:
    """A bounded LRU keyed by (uri, applicable-auth identity, knobs).

    The cache keeps its own effectiveness counters — ``hits``,
    ``misses``, ``evictions``, ``stale``, ``shared`` — exposed as a
    consistent snapshot by :meth:`stats` and zeroed by
    :meth:`reset_stats` (the entries themselves survive a stats reset;
    :meth:`clear` drops entries but keeps the counters).
    :meth:`~repro.server.service.SecureXMLServer.stats` folds this
    snapshot into the server-wide report.

    All entry and counter access is serialized on one reentrant lock;
    see the module docstring for why. The lock is never held while a
    view is being computed — single-flight followers wait on the
    leader's :class:`Flight` event, not on the cache lock.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("view cache needs at least one entry")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, CachedView]" = OrderedDict()
        self._lock = threading.RLock()
        self._flights: dict[Hashable, Flight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale = 0
        #: single-flight reuses: follower requests answered from a
        #: leader's computation (already counted in ``misses`` — the
        #: follower's lookup missed before it joined the flight).
        self.shared = 0
        #: update-driven removals: entries dropped by
        #: :meth:`invalidate_uri` because the edit may have changed
        #: their bytes. Distinct from ``evictions`` (capacity) and
        #: ``stale`` (lazy version-mismatch discovery on lookup).
        self.invalidated = 0
        #: entries an update provably did not affect: kept through
        #: :meth:`invalidate_uri` with their versions re-stamped, so
        #: the next lookup hits instead of finding them stale.
        self.revalidated = 0

    @staticmethod
    def key(
        uri: str,
        instance_auths,
        schema_auths,
        action: str,
        policy_marker: Hashable,
    ) -> Hashable:
        """Build a cache key from the *identities* of the applicable
        authorizations (5-tuples are shared objects in the store, so
        identity equality is exact)."""
        return (
            uri,
            tuple(id(a) for a in instance_auths),
            tuple(id(a) for a in schema_auths),
            action,
            policy_marker,
        )

    @staticmethod
    def class_key(
        uri: str,
        effective_class: Hashable,
        action: str,
        policy_marker: Hashable,
        validity_marker: Hashable = (),
    ) -> Hashable:
        """Build a cache key from a requester's *effective class*.

        Unlike :meth:`key`, this does not require binding the
        applicable authorizations first — equal
        :class:`~repro.subjects.canonical.EffectiveClass` keys imply
        equal applicable sets, so distinct-but-equivalent requesters
        collapse onto one entry and a cache hit skips the bind
        entirely. *validity_marker* (see
        ``AuthorizationStore.validity_marker``) carries the
        time-windowed applicability bits the class deliberately
        excludes.
        """
        return (
            uri,
            effective_class,
            action,
            policy_marker,
            validity_marker,
        )

    def get(
        self, key: Hashable, store_version: int, document_version: int
    ) -> Optional[CachedView]:
        with span("cache.lookup"):
            trip("cache.get")
            with self._lock:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                    return None
                if (
                    entry.store_version != store_version
                    or entry.document_version != document_version
                ):
                    # Stale: the policy or the document changed underneath it.
                    del self._entries[key]
                    self.stale += 1
                    self.misses += 1
                    return None
                self._entries.move_to_end(key)
                self.hits += 1
                return entry

    def put(self, key: Hashable, entry: CachedView) -> None:
        with span("cache.store"):
            trip("cache.put")
            with self._lock:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    # -- single-flight --------------------------------------------------------

    def begin_flight(self, key: Hashable) -> tuple[bool, Flight]:
        """Join the in-progress computation for *key*.

        Returns ``(True, flight)`` when this caller is the leader (it
        must eventually call :meth:`end_flight`, success or not) and
        ``(False, flight)`` when another request is already computing —
        the caller should :meth:`Flight.wait` and reuse the result.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight()
                self._flights[key] = flight
                return True, flight
            return False, flight

    def end_flight(
        self, key: Hashable, flight: Flight, entry: Optional[CachedView]
    ) -> None:
        """Leader hand-off: publish *entry* (or ``None`` on failure) to
        every parked follower and retire the flight. New misses on the
        same key start a fresh flight."""
        with self._lock:
            if self._flights.get(key) is flight:
                del self._flights[key]
        flight.complete(entry)

    def record_shared(self) -> None:
        """Count one single-flight reuse (a follower served from the
        leader's computation)."""
        with self._lock:
            self.shared += 1

    def invalidate_uri(
        self,
        uri: str,
        keep=None,
        store_version: Optional[int] = None,
        document_version: Optional[int] = None,
    ) -> tuple[int, int]:
        """Subtree-granular invalidation after an update to *uri*.

        *keep* is a predicate over cache keys: ``True`` means the edit
        provably did not intersect that entry's view (the server proves
        this with the visibility oracle), so the entry survives with
        its ``store_version``/``document_version`` re-stamped to the
        post-commit values — the next lookup hits instead of discarding
        it as stale. Every other entry for *uri* is dropped. With no
        *keep*, everything for *uri* is dropped (the pre-PR-8
        behaviour).

        Runs in two phases so the (possibly slow) keep predicate is
        never evaluated under the cache lock: snapshot the URI's keys,
        decide outside the lock, re-apply under the lock checking each
        entry is still present. An entry raced in between the phases
        for a *kept* key is re-stamped too — safe, because the keep
        decision proved the view bytes are identical across the edit.

        Returns ``(kept, dropped)``.
        """
        with self._lock:
            snapshot = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == uri
            ]
        decisions = [
            (key, bool(keep(key)) if keep is not None else False)
            for key in snapshot
        ]
        kept = dropped = 0
        with self._lock:
            for key, keep_it in decisions:
                entry = self._entries.get(key)
                if entry is None:
                    continue
                if keep_it:
                    if store_version is not None:
                        entry.store_version = store_version
                    if document_version is not None:
                        entry.document_version = document_version
                    self.revalidated += 1
                    kept += 1
                else:
                    del self._entries[key]
                    self.invalidated += 1
                    dropped += 1
        return kept, dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """A point-in-time, mutually consistent effectiveness snapshot.

        Keys: ``entries``, ``max_entries``, ``hits``, ``misses``,
        ``hit_rate``, ``evictions`` (capacity-driven removals),
        ``stale`` (version-mismatch removals; already counted in
        ``misses``), ``shared`` (single-flight reuses; their lookups
        are already counted in ``misses``, so
        ``hits + misses == lookups`` always holds), ``invalidated``
        (update-driven removals via :meth:`invalidate_uri` — *not*
        evictions) and ``revalidated`` (entries an update provably kept
        valid). Taken under the cache lock, so the counters cohere even
        while other threads serve.
        """
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "stale": self.stale,
                "shared": self.shared,
                "invalidated": self.invalidated,
                "revalidated": self.revalidated,
            }

    def reset_stats(self) -> None:
        """Zero the counters without touching the cached entries."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.stale = 0
            self.shared = 0
            self.invalidated = 0
            self.revalidated = 0
