"""Supervision for the multi-process serving pool.

Three small, separately testable pieces used by
:class:`~repro.server.pool.ShardedServerPool`:

- :class:`RestartPolicy` — capped exponential backoff between restarts
  of a crashing worker, with a stability window after which the
  attempt counter resets (a worker that has been healthy for a while
  earned back its fast first restart).
- :class:`CircuitBreaker` — a per-shard closed / open / half-open
  breaker. Worker deaths are failures; after *threshold* consecutive
  failures the breaker opens and the pool stops routing the shard's
  requests at a dead worker (degrading to in-process serving instead,
  when enabled). After *cooldown* one probe request is let through
  (half-open); its success closes the breaker, another failure
  re-opens it.
- :class:`Supervisor` — the parent-side health loop: notices missed
  heartbeats, hung in-flight requests and start timeouts (and kills
  the worker so the restart machinery takes over), schedules restarts
  once their backoff delay has elapsed (under a ``pool.restart``
  span), sweeps queued/in-flight requests whose deadline expired so
  they fail fast with a typed error instead of waiting on a dead
  worker, and keeps the pool's health gauges current.

The supervision state machine (see docs/ARCHITECTURE.md):

    starting --ready--> up --crash/kill--> down --backoff elapsed--> starting
       |                 |
       +--start timeout--+--missed heartbeats / hung request--> killed -> down
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass

from repro.obs.trace import span, tracing

__all__ = ["CircuitBreaker", "RestartPolicy", "Supervisor"]


@dataclass(frozen=True)
class RestartPolicy:
    """Capped exponential backoff for worker restarts.

    Attempt 1 waits ``base_delay``, attempt 2 twice that, and so on,
    never more than ``cap``. A worker that stays up for
    ``stability_window`` seconds gets its attempt counter reset, so a
    one-off crash after a long healthy run restarts fast again.
    """

    base_delay: float = 0.05
    cap: float = 2.0
    stability_window: float = 5.0

    def delay(self, attempts: int) -> float:
        """Seconds to wait before restart number *attempts* (>= 1)."""
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        # min() first: 2**attempts can overflow into bignum territory
        # long before the cap matters, but stays exact in Python.
        return min(self.base_delay * (2 ** (attempts - 1)), self.cap)


class CircuitBreaker:
    """A closed / open / half-open breaker for one document shard.

    Thread-safe; clocked on ``time.monotonic``. ``record_failure`` is
    called when the shard's worker dies, ``record_success`` when a
    request routed to the shard completes. ``allow`` answers "may a
    request be sent toward this shard's worker right now?" — while
    open it returns False (the pool degrades or fails fast), and after
    *cooldown* it lets exactly one probe through (half-open) whose
    outcome decides between closing and re-opening.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 1.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at >= self.cooldown:
                    self._state = "half-open"
                    return True  # the single probe
                return False
            return False  # half-open: probe already in flight

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half-open" or self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = time.monotonic()


class Supervisor:
    """The pool's health-check loop, run on a daemon thread.

    Each tick (every *interval* seconds, under a ``worker.heartbeat``
    span) walks the worker slots:

    - a worker whose last heartbeat is older than the pool's
      ``heartbeat_timeout`` is killed (``heartbeat-timeout``);
    - a worker whose *oldest in-flight request* has been out longer
      than ``hang_timeout`` is killed (``hung``) — heartbeats alone
      cannot catch this, because a worker stuck inside one request
      still heartbeats from its side thread;
    - a worker that never reported ready within ``start_timeout`` is
      killed (``start-timeout``);
    - a down worker whose backoff delay has elapsed is restarted
      (``pool.restart`` span, counted and audited);
    - a worker healthy for the policy's stability window gets its
      restart-attempt counter reset.

    Then expired deadlines are swept (queued requests fail fast with
    :class:`~repro.errors.DeadlineExceeded`; see
    ``ShardedServerPool._sweep_deadlines``) and the health and
    sliding-window SLO gauges (``pool_slo_seconds``) refreshed.
    Heartbeats processed each tick also piggy-back worker metric
    snapshots into the pool's fleet view — supervision traffic doubles
    as the harvesting channel. The loop runs under ``tracing(tracer)``
    when the pool
    was given one, so its spans land in the same trace stream as
    request dispatch.
    """

    def __init__(self, pool, interval: float = 0.05) -> None:
        self.pool = pool
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-pool-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def _run(self) -> None:
        tracer = getattr(self.pool, "tracer", None)
        context = tracing(tracer) if tracer is not None else nullcontext()
        with context:
            while not self._stop.is_set():
                try:
                    self.tick()
                except Exception:  # never let a tick kill supervision
                    pass
                self._stop.wait(self.interval)

    def tick(self) -> None:
        """One supervision pass (public so tests can drive it directly)."""
        pool = self.pool
        now = time.monotonic()
        with span("worker.heartbeat"):
            for slot in pool._slots:
                with slot.lock:
                    state = slot.state
                    last_heartbeat = slot.last_heartbeat
                    started_at = slot.started_at
                    up_since = slot.up_since
                    next_restart_at = slot.next_restart_at
                    attempts = slot.attempts
                    oldest_sent = min(
                        (
                            p.sent_at
                            for p in slot.in_flight.values()
                            if p.sent_at is not None and not p.done
                        ),
                        default=None,
                    )
                if state == "up":
                    if now - last_heartbeat > pool.heartbeat_timeout:
                        pool._kill_slot(slot, "heartbeat-timeout")
                    elif (
                        oldest_sent is not None
                        and now - oldest_sent > pool.hang_timeout
                    ):
                        pool._kill_slot(slot, "hung")
                    elif (
                        attempts
                        and up_since is not None
                        and now - up_since > pool.restart_policy.stability_window
                    ):
                        with slot.lock:
                            slot.attempts = 0
                elif state == "starting":
                    if now - started_at > pool.start_timeout:
                        pool._kill_slot(slot, "start-timeout")
                elif state == "down":
                    if (
                        not pool._closing
                        and next_restart_at is not None
                        and now >= next_restart_at
                    ):
                        pool._restart_slot(slot)
        pool._sweep_deadlines()
        pool._update_gauges()
        pool._refresh_slo_gauges()
