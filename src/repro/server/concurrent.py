"""A thread-safe concurrent serving front end for the facade.

The ROADMAP's north star is a server that carries heavy parallel
traffic; the paper's architecture (and its author-based follow-up on an
access-control *processor* deployed as a concurrent gateway) puts every
request through the same shared structures — cache, audit, metrics,
repository. This module is the front door for that deployment:
:func:`serve_many` fans a mixed batch of serve / serve-stream / query /
explain requests across a ``ThreadPoolExecutor`` against **one**
:class:`~repro.server.service.SecureXMLServer`, and
:class:`ConcurrentFrontEnd` keeps a pool alive across batches.

What makes one server safe to share (see docs/ARCHITECTURE.md,
"Threading model"):

- the :class:`~repro.server.cache.ViewCache` serializes entry/counter
  access on an ``RLock`` and collapses concurrent misses on one key
  into a *single-flight* computation;
- :class:`~repro.obs.metrics.MetricsRegistry`,
  :class:`~repro.server.audit.AuditLog`,
  :class:`~repro.server.audit_sink.JsonlAuditSink`,
  :class:`~repro.testing.faults.FaultInjector` and the repository's
  version counters are all lock-protected;
- tracing is naturally request-isolated: the active
  :class:`~repro.obs.trace.Tracer` lives in a ``ContextVar``, and each
  worker thread starts from an empty context, so spans from parallel
  requests can never interleave.

Per-request failures are *captured, not raised*: every request maps to
a :class:`RequestOutcome` in input order, so one denied or failing
request never poisons a batch. Guard trips were already structured
failures (``response.ok``); this extends the same discipline to raised
errors (history denials, unknown documents).

Usage::

    from repro.server.concurrent import serve_many

    outcomes = serve_many(server, requests, max_workers=8)
    for outcome in outcomes:
        if outcome.ok:
            use(outcome.result.xml_text)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.limits import ResourceLimits
from repro.server.request import AccessRequest, QueryRequest
from repro.subjects.hierarchy import Requester
from repro.update import UpdateRequest

__all__ = [
    "ConcurrentFrontEnd",
    "ExplainRequest",
    "RequestOutcome",
    "StreamRequest",
    "dispatch",
    "serve_many",
]


@dataclass(frozen=True)
class ExplainRequest:
    """Ask for the per-node :class:`~repro.core.explain.Explanation` of
    a requester's view (the batch counterpart of ``server.explain``)."""

    requester: Requester
    uri: str
    xpath: Optional[str] = None
    action: str = "read"


@dataclass(frozen=True)
class StreamRequest:
    """Route an :class:`~repro.server.request.AccessRequest` through the
    streaming backend (``server.serve_stream``) instead of the DOM one."""

    request: AccessRequest
    chunk_size: int = 65536
    feed_size: int = 65536


#: Anything :func:`dispatch` knows how to route.
Request = Union[
    AccessRequest, QueryRequest, ExplainRequest, StreamRequest, UpdateRequest
]


@dataclass
class RequestOutcome:
    """One request's result slot in a :func:`serve_many` batch.

    ``result`` is the :class:`~repro.server.request.AccessResponse` (or
    :class:`~repro.core.explain.Explanation` for explain requests) when
    the facade returned one; ``error`` the exception it raised
    otherwise (e.g. :class:`~repro.server.service.AccessLimitExceeded`,
    :class:`~repro.errors.RepositoryError`). Note that a structured
    guard failure is a *returned response* with ``response.ok`` false,
    not an ``error`` here.
    """

    index: int
    kind: str  # "serve" | "serve_stream" | "query" | "explain"
    result: Optional[object] = None
    error: Optional[BaseException] = None
    timings: dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


def _kind_of(item: Request) -> str:
    if isinstance(item, StreamRequest):
        return "serve_stream"
    if isinstance(item, QueryRequest):
        return "query"
    if isinstance(item, ExplainRequest):
        return "explain"
    if isinstance(item, UpdateRequest):
        return "update"
    if isinstance(item, AccessRequest):
        return "serve"
    raise TypeError(
        f"cannot dispatch {type(item).__name__}; expected AccessRequest, "
        "QueryRequest, ExplainRequest, StreamRequest or UpdateRequest"
    )


def dispatch(
    server,
    item: Request,
    limits: Optional[ResourceLimits] = None,
):
    """Route one request to the matching facade method, by type.

    ``AccessRequest`` → :meth:`~repro.server.service.SecureXMLServer.serve`,
    ``StreamRequest`` → ``serve_stream``, ``QueryRequest`` → ``query``,
    ``ExplainRequest`` → ``explain``. Exceptions propagate — batch
    callers wrap this in :func:`_outcome`.
    """
    kind = _kind_of(item)
    if kind == "serve":
        return server.serve(item, limits=limits)
    if kind == "update":
        return server.update(item, limits=limits)
    if kind == "serve_stream":
        return server.serve_stream(
            item.request,
            limits=limits,
            chunk_size=item.chunk_size,
            feed_size=item.feed_size,
        )
    if kind == "query":
        return server.query(item, limits=limits)
    return server.explain(
        item.requester,
        item.uri,
        xpath=item.xpath,
        action=item.action,
        limits=limits,
    )


def _outcome(
    server, index: int, item: Request, limits: Optional[ResourceLimits]
) -> RequestOutcome:
    kind = _kind_of(item)
    try:
        result = dispatch(server, item, limits=limits)
    except Exception as exc:  # contained per slot, never poisons the batch
        return RequestOutcome(index=index, kind=kind, error=exc)
    return RequestOutcome(
        index=index,
        kind=kind,
        result=result,
        timings=getattr(result, "timings", {}) or {},
    )


class ConcurrentFrontEnd:
    """A persistent worker pool bound to one server.

    Owns a ``ThreadPoolExecutor``; :meth:`serve_many` dispatches a batch
    and blocks for ordered outcomes, :meth:`submit` hands back a
    ``Future`` for callers composing their own completion logic. Use as
    a context manager (or call :meth:`close`) to release the workers.
    """

    def __init__(
        self,
        server,
        max_workers: int = 8,
        limits: Optional[ResourceLimits] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("a front end needs at least one worker")
        self.server = server
        self.max_workers = max_workers
        self.limits = limits
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )

    def submit(self, item: Request, index: int = 0):
        """Schedule one request; returns a ``Future[RequestOutcome]``."""
        return self._executor.submit(
            _outcome, self.server, index, item, self.limits
        )

    def serve_many(self, requests: Iterable[Request]) -> list[RequestOutcome]:
        """Dispatch *requests* across the pool; outcomes in input order."""
        items: Sequence[Request] = list(requests)
        futures = [self.submit(item, index) for index, item in enumerate(items)]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ConcurrentFrontEnd":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_many(
    server,
    requests: Iterable[Request],
    max_workers: int = 8,
    limits: Optional[ResourceLimits] = None,
) -> list[RequestOutcome]:
    """Serve a mixed batch concurrently against one server.

    *requests* may freely mix :class:`AccessRequest` (→ ``serve``),
    :class:`StreamRequest` (→ ``serve_stream``), :class:`QueryRequest`
    (→ ``query``) and :class:`ExplainRequest` (→ ``explain``). Returns
    one :class:`RequestOutcome` per request, **in input order**,
    whatever order the pool finished them in; check ``outcome.ok`` /
    ``outcome.error`` per slot. *limits* overrides the server's default
    :class:`~repro.limits.ResourceLimits` for every request in the
    batch.

    Responses are exactly what sequential calls would produce — the
    differential stress suite (``tests/server/test_concurrency.py``)
    holds them byte-identical to a sequential replay — because all
    shared state (cache, metrics, audit, repository versions) is
    lock-protected and per-request state (tracer, deadline) is
    thread-local.
    """
    with ConcurrentFrontEnd(server, max_workers=max_workers, limits=limits) as pool:
        return pool.serve_many(requests)
