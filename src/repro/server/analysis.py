"""Policy analysis: audiences, coverage, and reachability reports.

Administrators of the paper's model need answers to questions the
enforcement path never asks:

- **Who sees what?** :func:`audience_report` partitions the directory's
  users into *audiences* — groups of users receiving byte-identical
  views of a document — and shows each audience's visible share.
- **What does a tuple do?** :func:`authorization_impact` measures how
  many nodes an authorization decides (wins on), and how many of those
  decisions change the emitted view.
- **Is anything unreachable?** :func:`dead_authorizations` lists tuples
  that currently select no node of the stored document (typo'd paths,
  stale conditions).

All analyses are read-only and reuse the enforcement code paths, so
their answers are exactly what enforcement would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.authz.authorization import Authorization
from repro.subjects.hierarchy import Requester

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.service import SecureXMLServer

__all__ = [
    "Audience",
    "AudienceReport",
    "audience_report",
    "authorization_impact",
    "dead_authorizations",
]


@dataclass
class Audience:
    """Users receiving one identical view."""

    users: list[str]
    visible_nodes: int
    total_nodes: int
    sample_xml: str

    @property
    def share(self) -> float:
        return self.visible_nodes / self.total_nodes if self.total_nodes else 0.0


@dataclass
class AudienceReport:
    uri: str
    audiences: list[Audience] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"audiences for {self.uri}: {len(self.audiences)}"]
        for index, audience in enumerate(
            sorted(self.audiences, key=lambda a: -a.visible_nodes), start=1
        ):
            users = ", ".join(sorted(audience.users)[:6])
            if len(audience.users) > 6:
                users += f", ... (+{len(audience.users) - 6})"
            lines.append(
                f"  #{index}: {audience.visible_nodes}/{audience.total_nodes} "
                f"nodes ({audience.share:.0%}) — {users}"
            )
        return "\n".join(lines)


def audience_report(
    server: "SecureXMLServer",
    uri: str,
    ip: str = "0.0.0.0",
    hostname: str = "localhost",
) -> AudienceReport:
    """Partition every directory user by the view they would receive.

    Location components are fixed (*ip*/*hostname*) — the report answers
    "who sees what from this vantage point"; run it per vantage point to
    analyze location-restricted policies.
    """
    from repro.xml.serializer import serialize

    by_view: dict[str, Audience] = {}
    for user in sorted(server.directory.users()):
        requester = Requester(user, ip, hostname)
        view = server.view(requester, uri)
        xml_text = serialize(view.document, doctype=False)
        existing = by_view.get(xml_text)
        if existing is None:
            by_view[xml_text] = Audience(
                users=[user],
                visible_nodes=view.visible_nodes,
                total_nodes=view.total_nodes,
                sample_xml=xml_text,
            )
        else:
            existing.users.append(user)
    return AudienceReport(uri=uri, audiences=list(by_view.values()))


@dataclass
class AuthorizationImpact:
    """What one authorization decides for one requester on one document."""

    authorization: Authorization
    selected_nodes: int
    deciding_nodes: int
    view_delta: int  # |visible with| - |visible without|

    def describe(self) -> str:
        return (
            f"{self.authorization.unparse()}: selects {self.selected_nodes} "
            f"node(s), decides {self.deciding_nodes}, view delta "
            f"{self.view_delta:+d}"
        )


def authorization_impact(
    server: "SecureXMLServer",
    uri: str,
    authorization: Authorization,
    requester: Requester,
) -> AuthorizationImpact:
    """Measure *authorization*'s effect on *requester*'s view of *uri*.

    ``deciding_nodes`` counts nodes whose final sign this tuple's slot
    produced (it appears among the surviving winners); ``view_delta``
    compares view sizes with the tuple present vs removed.
    """
    from repro.core.explain import explain_view

    document = server.repository.document(uri)
    selected = len(authorization.select_nodes(document))

    report = explain_view(
        document,
        requester,
        server.store,
        dtd_uri=server.repository.dtd_uri_of(uri),
        policy=server.policy_for(uri).build_policy(),
        open_policy=server.policy_for(uri).open_policy,
        relative_mode=server.policy_for(uri).relative_paths,
    )
    deciding = 0
    for explanation in report.values():
        if explanation.deciding_slot is None:
            continue
        origin = next(
            o for o in explanation.origins if o.slot == explanation.deciding_slot
        )
        if any(winner is authorization for winner in origin.winners):
            deciding += 1

    with_view = server.view(requester, uri)
    removed = server.store.remove(authorization)
    try:
        without_view = server.view(requester, uri)
    finally:
        if removed:
            server.store.add(authorization)
    return AuthorizationImpact(
        authorization=authorization,
        selected_nodes=selected,
        deciding_nodes=deciding,
        view_delta=with_view.visible_nodes - without_view.visible_nodes,
    )


def dead_authorizations(
    server: "SecureXMLServer", uri: Optional[str] = None
) -> list[Authorization]:
    """Authorizations whose object selects nothing in the stored content.

    With *uri* given, only tuples attached to that document (or its DTD)
    are checked, against that document; otherwise every stored document
    is checked against its own tuples. Schema-level tuples are evaluated
    against every instance of their DTD and count as dead only if they
    select nothing in *any* of them.
    """
    documents = (
        [uri] if uri is not None else list(server.repository.documents())
    )
    dead: list[Authorization] = []
    checked: set[int] = set()
    for document_uri in documents:
        document = server.repository.document(document_uri)
        dtd_uri = server.repository.dtd_uri_of(document_uri)
        candidates = server.store.for_uri(document_uri)
        schema_candidates = server.store.for_uri(dtd_uri) if dtd_uri else []
        for authorization in candidates:
            if id(authorization) in checked:
                continue
            checked.add(id(authorization))
            if not authorization.select_nodes(document):
                dead.append(authorization)
        for authorization in schema_candidates:
            if id(authorization) in checked:
                continue
            # Schema tuples apply to every instance: alive if any
            # instance of the DTD matches.
            alive = False
            for other_uri in documents:
                other = server.repository.document(other_uri)
                if server.repository.dtd_uri_of(other_uri) != dtd_uri:
                    continue
                if authorization.select_nodes(other):
                    alive = True
                    break
            checked.add(id(authorization))
            if not alive:
                dead.append(authorization)
    return dead
