"""Audit logging of access-control decisions.

Every request through the :class:`~repro.server.service.SecureXMLServer`
leaves an :class:`AuditRecord` — who asked for what, how much of it was
released, and how long enforcement took. A bounded in-memory ring is the
default sink; a callable sink can forward records elsewhere.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.subjects.hierarchy import Requester

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement decision."""

    timestamp: float
    requester: str
    uri: str
    action: str
    outcome: str  # "released" | "empty" | "denied" | "error"
    visible_nodes: int = 0
    total_nodes: int = 0
    elapsed_seconds: float = 0.0
    detail: str = ""

    def __str__(self) -> str:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(self.timestamp))
        return (
            f"{stamp} {self.requester} {self.action} {self.uri} -> "
            f"{self.outcome} ({self.visible_nodes}/{self.total_nodes} nodes, "
            f"{self.elapsed_seconds * 1000:.2f} ms)"
        )


@dataclass
class AuditLog:
    """A bounded record buffer with an optional forwarding sink."""

    capacity: int = 1024
    sink: Optional[Callable[[AuditRecord], None]] = None
    _records: deque = field(default_factory=deque, repr=False)

    def record(
        self,
        requester: Requester,
        uri: str,
        action: str,
        outcome: str,
        visible_nodes: int = 0,
        total_nodes: int = 0,
        elapsed_seconds: float = 0.0,
        detail: str = "",
    ) -> AuditRecord:
        entry = AuditRecord(
            timestamp=time.time(),
            requester=str(requester),
            uri=uri,
            action=action,
            outcome=outcome,
            visible_nodes=visible_nodes,
            total_nodes=total_nodes,
            elapsed_seconds=elapsed_seconds,
            detail=detail,
        )
        self._records.append(entry)
        while len(self._records) > self.capacity:
            self._records.popleft()
        if self.sink is not None:
            self.sink(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def tail(self, count: int = 10) -> list[AuditRecord]:
        return list(self._records)[-count:]

    def clear(self) -> None:
        self._records.clear()
