"""Audit logging of access-control decisions.

Every request through the :class:`~repro.server.service.SecureXMLServer`
leaves an :class:`AuditRecord` — who asked for what, how much of it was
released, which backend served it, and how long enforcement took. A
bounded in-memory ring is the default sink; a callable sink can forward
records elsewhere (see :class:`~repro.server.audit_sink.JsonlAuditSink`
for the durable one). A failing sink never loses the in-memory ring:
the exception is swallowed and counted on
``audit_sink_errors_total`` (process-wide registry).

Records round-trip through JSON (:meth:`AuditRecord.to_json` /
:meth:`AuditRecord.from_json`) so durable logs can be filtered and
aggregated offline — ``tools/audit_query.py``.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Iterator, Optional

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.subjects.hierarchy import Requester

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement decision."""

    timestamp: float
    requester: str
    uri: str
    action: str
    outcome: str  # "released" | "empty" | "denied" | "error" | "fallback"
    visible_nodes: int = 0
    total_nodes: int = 0
    elapsed_seconds: float = 0.0
    detail: str = ""
    #: Which enforcement engine produced the decision: the DOM pipeline
    #: ("dom") or the streaming one ("stream").
    backend: str = "dom"
    #: Originating worker index and document shard, for records written
    #: inside a :class:`~repro.server.pool.ShardedServerPool` worker (or
    #: by the pool's dispatcher about a worker). ``None`` outside the
    #: pool — these stay joinable against fleet metrics' ``worker``/
    #: ``shard`` labels and filterable via ``tools/audit_query.py
    #: --worker/--shard``.
    worker: Optional[int] = None
    shard: Optional[int] = None

    def __str__(self) -> str:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(self.timestamp))
        origin = ""
        if self.worker is not None or self.shard is not None:
            origin = (
                f" [worker={self.worker if self.worker is not None else '-'}"
                f" shard={self.shard if self.shard is not None else '-'}]"
            )
        return (
            f"{stamp} {self.requester} {self.action} {self.uri} -> "
            f"{self.outcome} ({self.visible_nodes}/{self.total_nodes} nodes, "
            f"{self.elapsed_seconds * 1000:.2f} ms){origin}"
        )

    def to_json(self) -> str:
        """One compact JSON object per record (every field included)."""
        return json.dumps(asdict(self), separators=(",", ":"), ensure_ascii=False)

    @classmethod
    def from_json(cls, text: str) -> "AuditRecord":
        """Rebuild a record from :meth:`to_json` output.

        Unknown keys are ignored (forward compatibility); missing
        optional fields take their defaults.
        """
        data = json.loads(text)
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class AuditLog:
    """A bounded record buffer with an optional forwarding sink.

    The ring is a ``deque(maxlen=capacity)``: it can never exceed
    *capacity* and drops oldest-first. A raising sink is contained —
    the record stays in the ring, the error is counted on
    ``audit_sink_errors_total`` (on the process-wide registry, *and* on
    :attr:`metrics` when a server registry is attached — the
    :class:`~repro.server.service.SecureXMLServer` wires its own
    registry in so sink failures are attributable per server).

    Thread-safe, and lock-free on the hot path: ``deque.append`` is
    documented as thread-safe in CPython (a single C-level call, with
    maxlen eviction included), so concurrent requests never lose a
    record without any lock acquisition, and readers
    (``iter``/``tail``) materialize a snapshot with one atomic
    ``tuple(deque)`` call instead of racing a mutating deque. The sink
    runs after the ring append, un-serialized here (a slow durable
    write must not stall every other request's audit); a
    concurrency-safe sink like
    :class:`~repro.server.audit_sink.JsonlAuditSink` serializes its own
    I/O internally.
    """

    capacity: int = 1024
    sink: Optional[Callable[[AuditRecord], None]] = None
    #: The owning server's registry, when there is one; sink failures
    #: are counted here in addition to the process-wide ``METRICS``.
    metrics: Optional[MetricsRegistry] = None
    #: Pool-worker identity stamping: a worker process sets ``worker``
    #: to its index and ``shard_resolver`` to its router's ``shard_of``
    #: at boot, so every record it writes carries the originating
    #: worker/shard without the service layer knowing about the pool.
    worker: Optional[int] = None
    shard_resolver: Optional[Callable[[str], int]] = None
    _records: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        # Enforce the bound structurally, whatever seed records were
        # passed in (oldest dropped first, as maxlen semantics demand).
        self._records = deque(self._records, maxlen=self.capacity)

    def record(
        self,
        requester: Requester,
        uri: str,
        action: str,
        outcome: str,
        visible_nodes: int = 0,
        total_nodes: int = 0,
        elapsed_seconds: float = 0.0,
        detail: str = "",
        backend: str = "dom",
        worker: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> AuditRecord:
        if worker is None:
            worker = self.worker
        if shard is None and self.shard_resolver is not None:
            try:
                shard = self.shard_resolver(uri)
            except Exception:
                shard = None
        entry = AuditRecord(
            timestamp=time.time(),
            requester=str(requester),
            uri=uri,
            action=action,
            outcome=outcome,
            visible_nodes=visible_nodes,
            total_nodes=total_nodes,
            elapsed_seconds=elapsed_seconds,
            detail=detail,
            backend=backend,
            worker=worker,
            shard=shard,
        )
        # Lock-free: a deque append (with maxlen eviction) is one
        # atomic, documented-thread-safe C call.
        self._records.append(entry)
        if self.sink is not None:
            try:
                self.sink(entry)
            except Exception:
                # Audit durability must not take the request down, and
                # a sick sink must not cost the in-memory trail. Count
                # the failure where an operator will look: the owning
                # server's registry when one is attached, and always
                # the process-wide one.
                METRICS.counter("audit_sink_errors_total").inc()
                if self.metrics is not None and self.metrics is not METRICS:
                    self.metrics.counter("audit_sink_errors_total").inc()
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        # A snapshot: iterating a deque while another thread appends
        # raises "deque mutated during iteration", but tuple(deque) is
        # a single C call that never yields the GIL mid-copy.
        return iter(tuple(self._records))

    def tail(self, count: int = 10) -> list[AuditRecord]:
        return list(tuple(self._records))[-count:]

    def clear(self) -> None:
        self._records.clear()
