"""Server state persistence: save/load a complete server to disk.

Everything the paper's architecture keeps at the server — documents,
DTDs, XACLs, the subject directory, per-document policies — serializes
to a plain directory of XML files (using this library's own markup
formats throughout):

    state/
      repository.xml     index: URIs -> files, dtd links
      directory.xml      users and groups (repro.subjects.markup)
      policy.xacl        every authorization (repro.authz.xacl)
      policies.xml       per-document PolicyConfig entries
      dtds/<n>.dtd       DTD declaration text
      documents/<n>.xml  document text

:func:`save_server` writes the directory; :func:`load_server` rebuilds
an equivalent :class:`~repro.server.service.SecureXMLServer` (views
served before and after a round-trip are byte-identical — tested).
Audit logs and caches are runtime state and are not persisted.

Durability: every file is written atomically (temp file in the same
directory, then :func:`os.replace`), so a crash mid-save never leaves a
truncated state file — the old content survives intact. Reads and
writes run under :func:`~repro.server.retry.retry_call`, recovering
from transient I/O failures; the ``persistence.read`` /
``persistence.write`` fault-injection points (see
:mod:`repro.testing.faults`) sit inside the retried operation so the
recovery path is testable.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.authz.restrictions import HistoryLimit
from repro.authz.xacl import parse_xacl, serialize_xacl
from repro.errors import RepositoryError, XACLError
from repro.server.cache import ViewCache
from repro.server.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call
from repro.server.service import PolicyConfig, SecureXMLServer
from repro.subjects.markup import parse_directory, serialize_directory
from repro.testing.faults import InjectedFault, trip
from repro.xml.builder import E, new_document
from repro.xml.parser import parse_document
from repro.xml.serializer import pretty, serialize
from repro.dtd.serializer import serialize_dtd

__all__ = ["save_server", "load_server"]

#: Exceptions treated as transient by the persistence retry wrapper.
_TRANSIENT = (OSError, InjectedFault)

#: Retry schedule for state file I/O; module-level so deployments (and
#: tests) can swap in a different policy.
RETRY_POLICY: RetryPolicy = DEFAULT_RETRY_POLICY

#: Injectable wait function used between retries (tests make it a no-op).
_sleep: Optional[Callable[[float], None]] = None


def save_server(server: SecureXMLServer, path: str) -> None:
    """Write *server*'s durable state under directory *path*.

    The directory is created if needed; existing state files are
    overwritten (documents/DTDs are re-enumerated).
    """
    os.makedirs(os.path.join(path, "dtds"), exist_ok=True)
    os.makedirs(os.path.join(path, "documents"), exist_ok=True)

    index = E("repository")
    for position, uri in enumerate(server.repository.dtds()):
        filename = f"dtds/{position}.dtd"
        _write(path, filename, serialize_dtd(server.repository.dtd(uri)) + "\n")
        index.append(E("dtd", {"uri": uri, "file": filename}))
    for position, uri in enumerate(server.repository.documents()):
        stored = server.repository.stored(uri)
        filename = f"documents/{position}.xml"
        attrs = {"uri": uri, "file": filename}
        if stored.parsed is None and stored.text is not None:
            # Deferred-parse document: persist the raw source without
            # forcing an unbounded parse (it may be hostile — that is
            # why it was deferred). Reloads keep it deferred.
            _write(path, filename, stored.text)
            attrs["deferred"] = "yes"
        else:
            _write(path, filename, serialize(stored.document(), doctype=False))
        if stored.dtd_uri:
            attrs["dtd-uri"] = stored.dtd_uri
        index.append(E("document", attrs))
    _write(path, "repository.xml", pretty(new_document(index)) + "\n")

    _write(path, "directory.xml", serialize_directory(server.directory) + "\n")
    _write(path, "policy.xacl", serialize_xacl(list(server.store)) + "\n")

    policies = E("policies")
    for uri in server.repository.documents():
        config = server.policy_for(uri)
        if config == PolicyConfig():
            continue
        attrs = {
            "uri": uri,
            "conflict": config.conflict_policy,
            "open": "yes" if config.open_policy else "no",
            "relative": config.relative_paths,
        }
        if config.history_limit is not None:
            attrs["history-max"] = str(config.history_limit.max_accesses)
            attrs["history-window"] = repr(config.history_limit.window_seconds)
        policies.append(E("policy", attrs))
    _write(path, "policies.xml", pretty(new_document(policies)) + "\n")


def load_server(
    path: str, view_cache: Optional[ViewCache] = None
) -> SecureXMLServer:
    """Rebuild a server from a directory written by :func:`save_server`."""
    server = SecureXMLServer(view_cache=view_cache)

    directory_path = os.path.join(path, "directory.xml")
    if os.path.exists(directory_path):
        parse_directory(_read(directory_path), into=server.directory)

    index_path = os.path.join(path, "repository.xml")
    if not os.path.exists(index_path):
        raise RepositoryError(f"no repository.xml under {path!r}")
    index = parse_document(_read(index_path))
    root = index.root
    if root is None or root.name != "repository":
        raise XACLError("repository.xml must have a <repository> root")
    for entry in root.child_elements():
        uri = entry.get_attribute("uri")
        filename = entry.get_attribute("file")
        if not uri or not filename:
            raise XACLError(f"<{entry.name}> entry needs uri and file attributes")
        content = _read(os.path.join(path, filename))
        if entry.name == "dtd":
            server.publish_dtd(uri, content)
        elif entry.name == "document":
            server.publish_document(
                uri,
                content,
                dtd_uri=entry.get_attribute("dtd-uri"),
                defer_parse=entry.get_attribute("deferred") == "yes",
            )
        else:
            raise XACLError(f"unexpected <{entry.name}> in repository.xml")

    xacl_path = os.path.join(path, "policy.xacl")
    if os.path.exists(xacl_path):
        server.store.add_all(parse_xacl(_read(xacl_path)))

    policies_path = os.path.join(path, "policies.xml")
    if os.path.exists(policies_path):
        _load_policies(server, _read(policies_path))
    return server


def _load_policies(server: SecureXMLServer, text: str) -> None:
    document = parse_document(text)
    root = document.root
    if root is None or root.name != "policies":
        raise XACLError("policies.xml must have a <policies> root")
    for entry in root.child_elements():
        if entry.name != "policy":
            raise XACLError(f"unexpected <{entry.name}> in policies.xml")
        uri = entry.get_attribute("uri")
        if not uri:
            raise XACLError("<policy> entry needs a uri attribute")
        history = None
        if entry.has_attribute("history-max"):
            history = HistoryLimit(
                int(entry.get_attribute("history-max") or "1"),
                float(entry.get_attribute("history-window") or "3600"),
            )
        server.set_policy(
            uri,
            PolicyConfig(
                conflict_policy=entry.get_attribute(
                    "conflict", "denials-take-precedence"
                )
                or "denials-take-precedence",
                open_policy=(entry.get_attribute("open") == "yes"),
                relative_paths=entry.get_attribute("relative", "descendant")
                or "descendant",  # type: ignore[arg-type]
                history_limit=history,
            ),
        )


def _write(base: str, relative: str, content: str) -> None:
    """Atomically (and with retries) write one state file.

    The content lands in a temp file next to the target and is moved
    into place with :func:`os.replace`, so a crash between the two
    steps leaves the previous version intact — never a truncated file.
    """
    target = os.path.join(base, relative)
    temporary = target + ".tmp"

    def attempt() -> None:
        trip("persistence.write")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(content)
        os.replace(temporary, target)

    try:
        retry_call(attempt, policy=RETRY_POLICY, retry_on=_TRANSIENT, sleep=_sleep)
    finally:
        if os.path.exists(temporary):  # failed before the replace
            try:
                os.remove(temporary)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def _read(path: str) -> str:
    def attempt() -> str:
        trip("persistence.read")
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    return retry_call(attempt, policy=RETRY_POLICY, retry_on=_TRANSIENT, sleep=_sleep)
