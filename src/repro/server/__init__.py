"""Server architecture: repository, requests, service facade, audit.

Public surface::

    from repro.server import (
        SecureXMLServer, PolicyConfig, Repository,
        AccessRequest, QueryRequest, AccessResponse, AuditLog,
    )
"""

from repro.server.analysis import (
    Audience,
    AudienceReport,
    audience_report,
    authorization_impact,
    dead_authorizations,
)
from repro.server.audit import AuditLog, AuditRecord
from repro.server.audit_sink import JsonlAuditSink, iter_audit_records
from repro.server.cache import CachedView, ViewCache
from repro.server.concurrent import (
    ConcurrentFrontEnd,
    ExplainRequest,
    RequestOutcome,
    StreamRequest,
    serve_many,
)
from repro.server.persistence import load_server, save_server
from repro.server.pool import PoolOutcome, ShardedServerPool
from repro.server.repository import Repository, ShardRouter, StoredDocument
from repro.server.request import AccessRequest, AccessResponse, QueryRequest
from repro.server.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call
from repro.server.service import AccessLimitExceeded, PolicyConfig, SecureXMLServer
from repro.server.supervisor import CircuitBreaker, RestartPolicy, Supervisor
from repro.server.updates import (
    DeleteNode,
    InsertChild,
    RemoveAttribute,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateEngine,
    UpdateOutcome,
    UpdateRequest,
)

__all__ = [
    "AccessLimitExceeded",
    "AccessRequest",
    "AccessResponse",
    "Audience",
    "AudienceReport",
    "AuditLog",
    "AuditRecord",
    "CachedView",
    "CircuitBreaker",
    "ConcurrentFrontEnd",
    "DEFAULT_RETRY_POLICY",
    "DeleteNode",
    "ExplainRequest",
    "InsertChild",
    "JsonlAuditSink",
    "PolicyConfig",
    "PoolOutcome",
    "QueryRequest",
    "RemoveAttribute",
    "Repository",
    "RequestOutcome",
    "RestartPolicy",
    "RetryPolicy",
    "SecureXMLServer",
    "SetAttribute",
    "SetText",
    "ShardRouter",
    "ShardedServerPool",
    "StoredDocument",
    "StreamRequest",
    "Supervisor",
    "UpdateDenied",
    "UpdateEngine",
    "UpdateOutcome",
    "UpdateRequest",
    "ViewCache",
    "audience_report",
    "authorization_impact",
    "dead_authorizations",
    "iter_audit_records",
    "load_server",
    "retry_call",
    "save_server",
    "serve_many",
]
