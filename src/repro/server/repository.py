"""The server's document/DTD repository.

Binds URIs to stored resources: XML documents, their DTDs, and the
XACLs carrying instance- and schema-level authorizations (paper,
Section 7: "the processor operation also involves the document's DTD
and the associated XACL"). Documents can be stored parsed or as text
(parsed lazily and cached).
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import RepositoryError
from repro.limits import Deadline, ResourceLimits
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.testing.faults import trip
from repro.xml.nodes import Document
from repro.xml.parser import parse_document

__all__ = ["Repository", "ShardRouter", "StoredDocument"]


class ShardRouter:
    """Consistent-hash routing of document URIs onto *shards*.

    Used by the multi-process pool (``repro.server.pool``) to decide
    which shard — and therefore which worker process — owns a document.
    The ring hashes with :mod:`hashlib` MD5, **not** the built-in
    ``hash()``: string hashing is randomized per process
    (``PYTHONHASHSEED``), so built-in hashes would route the same URI to
    different shards in the parent and in a spawned worker. MD5 gives
    every process the identical ring, which is the whole point.

    Consistent hashing (many virtual points per shard on a ring,
    lookups by clockwise successor) keeps the assignment stable as the
    shard count changes: going from N to N+1 shards moves only ~1/(N+1)
    of the URIs, where modulo hashing would reshuffle nearly all of
    them. Routers are cheap, immutable after construction, and
    picklable, so one can be captured in a worker's setup callable.
    """

    __slots__ = ("num_shards", "replicas", "_points", "_owners")

    def __init__(self, num_shards: int, replicas: int = 64) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.num_shards = num_shards
        self.replicas = replicas
        ring: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                ring.append((self._hash(f"shard:{shard}:{replica}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.md5(key.encode("utf-8")).digest()[:8], "big"
        )

    def shard_of(self, uri: str) -> int:
        """The shard owning *uri* (stable across processes and runs)."""
        if self.num_shards == 1:
            return 0
        index = bisect.bisect_right(self._points, self._hash(uri))
        if index == len(self._points):
            index = 0  # wrap: past the last point -> first point
        return self._owners[index]

    def partition(self, uris: Iterator[str] | list[str]) -> dict[int, list[str]]:
        """Group *uris* by owning shard (every shard key present)."""
        groups: dict[int, list[str]] = {shard: [] for shard in range(self.num_shards)}
        for uri in uris:
            groups[self.shard_of(uri)].append(uri)
        return groups

    def __getstate__(self):
        return (self.num_shards, self.replicas)

    def __setstate__(self, state):
        self.__init__(*state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(num_shards={self.num_shards}, replicas={self.replicas})"


@dataclass
class StoredDocument:
    """One document binding: source text and/or parsed tree.

    Lazy parsing and tree replacement are serialized on a per-document
    lock: N concurrent first requests to a deferred-parse document do
    exactly one parse (the rest wait and share the tree), and an
    :meth:`replace_tree` commit swaps tree + source + version as one
    atomic step, so a concurrent reader can never pair a new tree with
    a stale version number.
    """

    uri: str
    text: Optional[str] = None
    parsed: Optional[Document] = None
    dtd_uri: Optional[str] = None
    #: bumped whenever the stored tree is replaced (cache guard)
    version: int = 0
    #: set for deferred-parse documents: resolves dtd_uri -> published
    #: DTD at first parse, mirroring what an eager add does up front
    dtd_resolver: Optional[Callable[[str], Optional[DTD]]] = field(
        default=None, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def document(
        self,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> Document:
        """The parsed tree, parsing lazily (under *limits*) if needed."""
        # Double-checked: the common already-parsed case stays lock-free
        # (a reference read is atomic); the parse itself is serialized
        # and the finished tree published only once fully wired up.
        if self.parsed is None:
            with self._lock:
                if self.parsed is None:
                    if self.text is None:
                        raise RepositoryError(
                            f"document {self.uri!r} has no content"
                        )
                    tree = parse_document(
                        self.text, uri=self.uri, limits=limits, deadline=deadline
                    )
                    if self.dtd_uri is None:
                        self.dtd_uri = tree.system_id
                    if (
                        tree.dtd is None
                        and self.dtd_uri
                        and self.dtd_resolver is not None
                    ):
                        published = self.dtd_resolver(self.dtd_uri)
                        if published is not None:
                            tree.dtd = published
                    self.parsed = tree
        return self.parsed

    def replace_tree(self, document: Document) -> None:
        """Commit a new tree: swap it in, drop any stale source text and
        bump the version so cached views of the old tree go stale —
        atomically with respect to concurrent readers."""
        with self._lock:
            self.parsed = document
            self.text = None
            self.version += 1

    def exclusive(self) -> threading.RLock:
        """The per-document lock, for callers running a multi-step
        read-clone-apply-commit cycle (the update path): holding it
        across the cycle rules out lost updates from two concurrent
        writers cloning the same base tree. Reentrant, so
        :meth:`document` and :meth:`replace_tree` may be called while
        held. Readers never take it for plain tree access."""
        return self._lock

    def source_text(self) -> str:
        """The document as text, for the streaming pipeline.

        Returns the stored source verbatim when the document was
        published as text — the common case, and the one where
        streaming never materializes a tree. A document stored only as
        a parsed tree is re-serialized (with its DOCTYPE, so the
        streaming reader sees the same entity declarations); note that
        a re-serialized tree is not guaranteed to round-trip exotic
        nodes (e.g. an explicitly constructed empty text node
        serializes as ``<a></a>`` whose re-parse has no text node).
        """
        if self.text is not None:
            return self.text
        if self.parsed is None:
            raise RepositoryError(f"document {self.uri!r} has no content")
        from repro.xml.serializer import serialize

        return serialize(self.parsed)


class Repository:
    """URI-keyed storage for documents and DTDs.

    Publication and removal are check-then-insert on the URI tables, so
    they run under a repository lock; lookups are single dict reads
    (atomic under the GIL) and stay lock-free.
    """

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}
        self._dtds: dict[str, DTD] = {}
        self._lock = threading.RLock()

    # -- DTDs -----------------------------------------------------------------

    def add_dtd(self, uri: str, dtd: DTD | str) -> DTD:
        """Publish a DTD under *uri* (text is parsed)."""
        with self._lock:
            if uri in self._dtds:
                raise RepositoryError(f"a DTD is already published at {uri!r}")
            parsed = parse_dtd(dtd, uri=uri) if isinstance(dtd, str) else dtd
            if parsed.uri is None:
                parsed.uri = uri
            self._dtds[uri] = parsed
            return parsed

    def dtd(self, uri: str) -> DTD:
        found = self._dtds.get(uri)
        if found is None:
            raise RepositoryError(f"no DTD published at {uri!r}")
        return found

    def has_dtd(self, uri: str) -> bool:
        return uri in self._dtds

    # -- documents ----------------------------------------------------------------

    def add_document(
        self,
        uri: str,
        content: Document | str,
        dtd_uri: Optional[str] = None,
        validate_on_add: bool = False,
        defer_parse: bool = False,
        limits: Optional[ResourceLimits] = None,
    ) -> StoredDocument:
        """Store a document (parsed or text) under *uri*.

        *dtd_uri* links the document to a published DTD, which defines
        ``dtd(URI)`` for schema-level authorization lookup. When the
        document declares a SYSTEM identifier and *dtd_uri* is omitted,
        the SYSTEM identifier is used.

        With *defer_parse*, text content is stored without parsing it;
        the parse happens lazily on first access, under whatever limits
        the request supplies — so publishing stays cheap and hostile
        content trips a guard at serve time instead of crashing the
        publisher. *limits* bounds an eager parse at add time.
        """
        with self._lock:
            if uri in self._documents:
                raise RepositoryError(f"a document is already stored at {uri!r}")
            if isinstance(content, Document):
                stored = StoredDocument(uri, parsed=content)
                content.uri = uri
            else:
                stored = StoredDocument(uri, text=content)
                if defer_parse:
                    stored.dtd_uri = dtd_uri
                    stored.dtd_resolver = self._dtds.get
                    self._documents[uri] = stored
                    return stored
            document = stored.document(limits=limits)
            stored.dtd_uri = dtd_uri or document.system_id
            if stored.dtd_uri and self.has_dtd(stored.dtd_uri):
                published = self.dtd(stored.dtd_uri)
                if document.dtd is None:
                    document.dtd = published
            if validate_on_add and document.dtd is not None:
                validate(document, raise_on_error=True)
            self._documents[uri] = stored
            return stored

    def document(self, uri: str) -> Document:
        stored = self._documents.get(uri)
        if stored is None:
            raise RepositoryError(f"no document stored at {uri!r}")
        return stored.document()

    def stored(self, uri: str) -> StoredDocument:
        trip("repository.read")
        found = self._documents.get(uri)
        if found is None:
            raise RepositoryError(f"no document stored at {uri!r}")
        return found

    def dtd_uri_of(self, uri: str) -> Optional[str]:
        """``dtd(URI)``: the URI of the DTD governing document *uri*."""
        return self.stored(uri).dtd_uri

    def has_document(self, uri: str) -> bool:
        return uri in self._documents

    def remove_document(self, uri: str) -> None:
        with self._lock:
            if uri not in self._documents:
                raise RepositoryError(f"no document stored at {uri!r}")
            del self._documents[uri]

    def documents(self) -> Iterator[str]:
        yield from self._documents

    def dtds(self) -> Iterator[str]:
        yield from self._dtds
