"""The server's document/DTD repository.

Binds URIs to stored resources: XML documents, their DTDs, and the
XACLs carrying instance- and schema-level authorizations (paper,
Section 7: "the processor operation also involves the document's DTD
and the associated XACL"). Documents can be stored parsed or as text
(parsed lazily and cached).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import RepositoryError
from repro.limits import Deadline, ResourceLimits
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.testing.faults import trip
from repro.xml.nodes import Document
from repro.xml.parser import parse_document

__all__ = ["Repository", "StoredDocument"]


@dataclass
class StoredDocument:
    """One document binding: source text and/or parsed tree.

    Lazy parsing and tree replacement are serialized on a per-document
    lock: N concurrent first requests to a deferred-parse document do
    exactly one parse (the rest wait and share the tree), and an
    :meth:`replace_tree` commit swaps tree + source + version as one
    atomic step, so a concurrent reader can never pair a new tree with
    a stale version number.
    """

    uri: str
    text: Optional[str] = None
    parsed: Optional[Document] = None
    dtd_uri: Optional[str] = None
    #: bumped whenever the stored tree is replaced (cache guard)
    version: int = 0
    #: set for deferred-parse documents: resolves dtd_uri -> published
    #: DTD at first parse, mirroring what an eager add does up front
    dtd_resolver: Optional[Callable[[str], Optional[DTD]]] = field(
        default=None, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def document(
        self,
        limits: Optional[ResourceLimits] = None,
        deadline: Optional[Deadline] = None,
    ) -> Document:
        """The parsed tree, parsing lazily (under *limits*) if needed."""
        # Double-checked: the common already-parsed case stays lock-free
        # (a reference read is atomic); the parse itself is serialized
        # and the finished tree published only once fully wired up.
        if self.parsed is None:
            with self._lock:
                if self.parsed is None:
                    if self.text is None:
                        raise RepositoryError(
                            f"document {self.uri!r} has no content"
                        )
                    tree = parse_document(
                        self.text, uri=self.uri, limits=limits, deadline=deadline
                    )
                    if self.dtd_uri is None:
                        self.dtd_uri = tree.system_id
                    if (
                        tree.dtd is None
                        and self.dtd_uri
                        and self.dtd_resolver is not None
                    ):
                        published = self.dtd_resolver(self.dtd_uri)
                        if published is not None:
                            tree.dtd = published
                    self.parsed = tree
        return self.parsed

    def replace_tree(self, document: Document) -> None:
        """Commit a new tree: swap it in, drop any stale source text and
        bump the version so cached views of the old tree go stale —
        atomically with respect to concurrent readers."""
        with self._lock:
            self.parsed = document
            self.text = None
            self.version += 1

    def source_text(self) -> str:
        """The document as text, for the streaming pipeline.

        Returns the stored source verbatim when the document was
        published as text — the common case, and the one where
        streaming never materializes a tree. A document stored only as
        a parsed tree is re-serialized (with its DOCTYPE, so the
        streaming reader sees the same entity declarations); note that
        a re-serialized tree is not guaranteed to round-trip exotic
        nodes (e.g. an explicitly constructed empty text node
        serializes as ``<a></a>`` whose re-parse has no text node).
        """
        if self.text is not None:
            return self.text
        if self.parsed is None:
            raise RepositoryError(f"document {self.uri!r} has no content")
        from repro.xml.serializer import serialize

        return serialize(self.parsed)


class Repository:
    """URI-keyed storage for documents and DTDs.

    Publication and removal are check-then-insert on the URI tables, so
    they run under a repository lock; lookups are single dict reads
    (atomic under the GIL) and stay lock-free.
    """

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}
        self._dtds: dict[str, DTD] = {}
        self._lock = threading.RLock()

    # -- DTDs -----------------------------------------------------------------

    def add_dtd(self, uri: str, dtd: DTD | str) -> DTD:
        """Publish a DTD under *uri* (text is parsed)."""
        with self._lock:
            if uri in self._dtds:
                raise RepositoryError(f"a DTD is already published at {uri!r}")
            parsed = parse_dtd(dtd, uri=uri) if isinstance(dtd, str) else dtd
            if parsed.uri is None:
                parsed.uri = uri
            self._dtds[uri] = parsed
            return parsed

    def dtd(self, uri: str) -> DTD:
        found = self._dtds.get(uri)
        if found is None:
            raise RepositoryError(f"no DTD published at {uri!r}")
        return found

    def has_dtd(self, uri: str) -> bool:
        return uri in self._dtds

    # -- documents ----------------------------------------------------------------

    def add_document(
        self,
        uri: str,
        content: Document | str,
        dtd_uri: Optional[str] = None,
        validate_on_add: bool = False,
        defer_parse: bool = False,
        limits: Optional[ResourceLimits] = None,
    ) -> StoredDocument:
        """Store a document (parsed or text) under *uri*.

        *dtd_uri* links the document to a published DTD, which defines
        ``dtd(URI)`` for schema-level authorization lookup. When the
        document declares a SYSTEM identifier and *dtd_uri* is omitted,
        the SYSTEM identifier is used.

        With *defer_parse*, text content is stored without parsing it;
        the parse happens lazily on first access, under whatever limits
        the request supplies — so publishing stays cheap and hostile
        content trips a guard at serve time instead of crashing the
        publisher. *limits* bounds an eager parse at add time.
        """
        with self._lock:
            if uri in self._documents:
                raise RepositoryError(f"a document is already stored at {uri!r}")
            if isinstance(content, Document):
                stored = StoredDocument(uri, parsed=content)
                content.uri = uri
            else:
                stored = StoredDocument(uri, text=content)
                if defer_parse:
                    stored.dtd_uri = dtd_uri
                    stored.dtd_resolver = self._dtds.get
                    self._documents[uri] = stored
                    return stored
            document = stored.document(limits=limits)
            stored.dtd_uri = dtd_uri or document.system_id
            if stored.dtd_uri and self.has_dtd(stored.dtd_uri):
                published = self.dtd(stored.dtd_uri)
                if document.dtd is None:
                    document.dtd = published
            if validate_on_add and document.dtd is not None:
                validate(document, raise_on_error=True)
            self._documents[uri] = stored
            return stored

    def document(self, uri: str) -> Document:
        stored = self._documents.get(uri)
        if stored is None:
            raise RepositoryError(f"no document stored at {uri!r}")
        return stored.document()

    def stored(self, uri: str) -> StoredDocument:
        trip("repository.read")
        found = self._documents.get(uri)
        if found is None:
            raise RepositoryError(f"no document stored at {uri!r}")
        return found

    def dtd_uri_of(self, uri: str) -> Optional[str]:
        """``dtd(URI)``: the URI of the DTD governing document *uri*."""
        return self.stored(uri).dtd_uri

    def has_document(self, uri: str) -> bool:
        return uri in self._documents

    def remove_document(self, uri: str) -> None:
        with self._lock:
            if uri not in self._documents:
                raise RepositoryError(f"no document stored at {uri!r}")
            del self._documents[uri]

    def documents(self) -> Iterator[str]:
        yield from self._documents

    def dtds(self) -> Iterator[str]:
        yield from self._dtds
