"""A supervised multi-process sharded serving tier.

BENCH_PR5 showed the thread-pool front end is GIL-bound: labeling and
pruning are pure-Python CPU work, so eight threads serve no faster
than one. :class:`ShardedServerPool` breaks that wall with
*shared-nothing* worker processes: each worker owns a shard of the
document corpus (consistent-hash routing by URI, see
:class:`~repro.server.repository.ShardRouter`) and runs its own
complete :class:`~repro.server.service.SecureXMLServer` — no cache, no
repository, no lock is shared across processes, so N workers really do
label N documents at once.

What crosses the process boundary is data only, over one duplex pipe
per worker: pickled requests (with
:class:`~repro.limits.ResourceLimits` carrying the *remaining* deadline
budget — see :meth:`ResourceLimits.for_transfer` — and, when the
submitting thread is tracing, a
:class:`~repro.obs.trace.TraceContext`), pickled responses or typed
exceptions (piggy-backing the worker's span tree and a cumulative
metrics snapshot), and heartbeats (also carrying snapshots). The
parent keeps a bounded queue per worker and pipelines up to
``pipeline_depth`` requests down the pipe before waiting, so the pipe
round-trip amortizes.

The pool is also a *fleet observability* aggregation point:

- **Trace propagation** — a request submitted under an active tracer
  resolves with one stitched span tree: synthesized ``pool.dispatch``,
  ``pool.queue_wait`` and ``pool.ipc`` spans plus the worker's own
  pipeline spans (``request.serve``, ``parse.xml``, ``label.*``, ...)
  grafted inside ``pool.ipc`` — ``Tracer.export_chrome()`` renders the
  whole cross-process timeline.
- **Metrics harvesting** — worker registries merge into
  :attr:`ShardedServerPool.fleet` (a
  :class:`~repro.obs.fleet.FleetView`); ``stats(deep=True)`` forces a
  fresh round, ``render_prometheus()`` emits dispatcher + per-worker
  series in one scrape, and worker ``requests_total`` conserves
  against dispatcher outcomes even across SIGKILLed incarnations.
- **SLO windows** — per-stage sliding-window p50/p95/p99
  (queue-wait vs service vs end-to-end) via :attr:`slo`, published as
  ``pool_slo_seconds`` gauges and rendered by ``python -m repro top``.

Robustness is the point, not an afterthought (the paper's processor is
the availability bottleneck of the architecture it sketches):

- **Crash isolation** — a worker that segfaults, gets OOM-killed, or
  corrupts its pipe takes down *its* in-flight requests (each resolved
  with a typed :class:`~repro.errors.WorkerLost`, exactly once) and
  nothing else.
- **Supervision** — heartbeats, hang detection and automatic restart
  with capped exponential backoff live in
  :mod:`repro.server.supervisor`.
- **Backpressure** — a full worker queue sheds new requests at
  admission with :class:`~repro.errors.PoolSaturated` instead of
  queueing unboundedly.
- **Fail-fast deadlines** — a request whose deadline expires while
  queued behind a dead worker is resolved with
  :class:`~repro.errors.DeadlineExceeded` by the supervisor's sweep;
  it never hangs.
- **Graceful degradation** — when a shard's circuit breaker opens
  (its worker keeps dying), requests for that shard are served
  *in-process* by a lazily built fallback server over the full corpus
  (counted and audited), or failed fast with
  :class:`~repro.errors.PoolUnhealthy` when degradation is disabled.

Every submitted request resolves to **exactly one** outcome — a
response, or one typed error — and every resolution increments
``pool_requests_total{outcome=...}`` exactly once, so the counter
conserves: its sum equals the number of submissions. The chaos suite
(tests/server/test_pool_chaos.py) kills workers at random mid-run and
asserts precisely that, plus byte-identical responses versus a
sequential in-process replay.

Usage::

    from repro.server.pool import ShardedServerPool

    def build(shard_ids, num_shards):   # runs inside each worker
        server = SecureXMLServer()
        ...publish the documents owned by shard_ids (None = all)...
        return server

    with ShardedServerPool(build, workers=4) as pool:
        pool.wait_ready()
        response = pool.serve(AccessRequest(requester, uri))

The default ``fork`` start method keeps *build* free to close over
local state; with ``spawn`` (or ``forkserver``) the callable and its
closure must be picklable — a bound method of a frozen dataclass, like
:meth:`repro.workloads.traffic.TrafficSpec.build_server`, works for
both.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

from repro.errors import (
    DeadlineExceeded,
    PoolSaturated,
    PoolUnhealthy,
    WorkerLost,
)
from repro.limits import Deadline, ResourceLimits
from repro.obs.fleet import FleetView, SloTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceContext, Tracer, current_tracer, span
from repro.server.audit import AuditLog
from repro.server.concurrent import StreamRequest, dispatch
from repro.server.repository import ShardRouter
from repro.server.request import AccessRequest, QueryRequest
from repro.server.supervisor import CircuitBreaker, RestartPolicy, Supervisor
from repro.subjects.hierarchy import Requester
from repro.testing.faults import FaultPlan
from repro.update import UpdateRequest

__all__ = ["PoolOutcome", "ShardedServerPool"]

#: What the pool knows how to route to a worker. ``ExplainRequest`` is
#: deliberately absent: an Explanation holds live tree nodes and does
#: not cross a process boundary; run explain on an in-process server.
#: ``UpdateRequest`` routes like reads — consistent-hashing by URI means
#: a write always lands on the worker whose shard *owns* the document,
#: so the mutation and every later read of that URI see one repository.
PoolRequest = Union[AccessRequest, QueryRequest, StreamRequest, UpdateRequest]


def _kind_of(item: PoolRequest) -> str:
    if isinstance(item, StreamRequest):
        return "serve_stream"
    if isinstance(item, QueryRequest):
        return "query"
    if isinstance(item, UpdateRequest):
        return "update"
    if isinstance(item, AccessRequest):
        return "serve"
    raise TypeError(
        f"cannot pool-dispatch {type(item).__name__}; expected "
        "AccessRequest, QueryRequest, StreamRequest or UpdateRequest "
        "(explain is in-process only)"
    )


def _uri_of(item: PoolRequest) -> str:
    return item.request.uri if isinstance(item, StreamRequest) else item.uri


def _requester_of(item: PoolRequest) -> Requester:
    return (
        item.request.requester
        if isinstance(item, StreamRequest)
        else item.requester
    )


@dataclass
class PoolOutcome:
    """One request's result slot in a :meth:`ShardedServerPool.serve_many`
    batch — the process-tier analogue of
    :class:`~repro.server.concurrent.RequestOutcome`.

    ``result`` is the :class:`~repro.server.request.AccessResponse`
    when a worker (or the degraded in-process fallback) produced one;
    ``error`` the typed exception otherwise (:class:`WorkerLost`,
    :class:`PoolSaturated`, :class:`PoolUnhealthy`,
    :class:`DeadlineExceeded`, or an application error raised inside
    the worker). ``degraded`` marks responses served by the fallback.
    """

    index: int
    kind: str  # "serve" | "serve_stream" | "query"
    result: Optional[object] = None
    error: Optional[BaseException] = None
    worker: Optional[int] = None
    shard: Optional[int] = None
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class _TraceState:
    """Per-request trace bookkeeping captured at submit time.

    Held only when the submitting thread had an active tracer: the
    tracer itself, the stack depth the synthesized ``pool.dispatch``
    span must sit at, and the :class:`TraceContext` shipped to the
    worker. ``_stitch`` consumes it exactly once at resolution.
    """

    __slots__ = ("tracer", "depth", "ctx")

    def __init__(self, tracer: Tracer, depth: int, ctx: TraceContext) -> None:
        self.tracer = tracer
        self.depth = depth
        self.ctx = ctx


class _Pending:
    """One submitted request awaiting its single resolution.

    The resolve-once protocol is the exactly-one-outcome guarantee:
    ``resolve``/``resolve_error`` flip ``done`` under a lock and return
    whether *this* call was the first — every other path (late worker
    response, duplicate exit handling, deadline sweep racing a result)
    sees False and backs off. The winning path, and only it, counts
    the outcome metric.

    Two clocks per request: ``sent_at`` (``time.monotonic``) feeds the
    supervisor's hang detection, while ``t_submitted``/``t_sent``
    (``time.perf_counter``) feed SLO windows and trace stitching —
    perf_counter because that is the tracer's timebase.
    """

    __slots__ = (
        "req_id",
        "kind",
        "item",
        "limits",
        "deadline",
        "shard",
        "worker",
        "degraded",
        "sent_at",
        "t_submitted",
        "t_sent",
        "trace",
        "worker_spans",
        "done",
        "value",
        "error",
        "_lock",
        "_event",
    )

    def __init__(
        self,
        req_id: int,
        kind: str,
        item: PoolRequest,
        limits: Optional[ResourceLimits],
        deadline: Optional[Deadline],
        shard: int,
        worker: int,
    ) -> None:
        self.req_id = req_id
        self.kind = kind
        self.item = item
        self.limits = limits
        self.deadline = deadline
        self.shard = shard
        self.worker = worker
        self.degraded = False
        self.sent_at: Optional[float] = None
        self.t_submitted = time.perf_counter()
        self.t_sent: Optional[float] = None
        self.trace: Optional[_TraceState] = None
        self.worker_spans: Optional[list] = None
        self.done = False
        self.value: Optional[object] = None
        self.error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._event = threading.Event()

    def wire_limits(self) -> Optional[ResourceLimits]:
        """The limits to ship across the pipe, deadline budget reduced
        to whatever remains *right now* (computed at send time)."""
        if self.limits is None:
            return None
        return self.limits.for_transfer(self.deadline)

    def resolve(self, value: object) -> bool:
        with self._lock:
            if self.done:
                return False
            self.done = True
            self.value = value
        self._event.set()
        return True

    def resolve_error(self, error: BaseException) -> bool:
        with self._lock:
            if self.done:
                return False
            self.done = True
            self.error = error
        self._event.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        """Block for the resolution; raise the typed error if it is one."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.req_id} unresolved after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.value


class _WorkerSlot:
    """Parent-side bookkeeping for one worker process (all its
    incarnations). ``generation`` increments on every (re)start so a
    stale receiver thread or exit handler from a previous incarnation
    can detect it is out of date and stand down."""

    def __init__(self, index: int, shard_ids: tuple[int, ...]) -> None:
        self.index = index
        self.shard_ids = shard_ids
        self.lock = threading.Lock()
        self.wake = threading.Condition(self.lock)
        # Serializes parent-side conn.send across the sender loop, the
        # on-demand snapshot request and close(): Connection.send is
        # not safe for concurrent writers on one pipe.
        self.send_mutex = threading.Lock()
        self.queue: deque[_Pending] = deque()
        self.in_flight: dict[int, _Pending] = {}
        self.last_snap_token = 0
        self.state = "down"  # "starting" | "up" | "down"
        self.conn = None
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.generation = 0
        self.last_heartbeat = 0.0
        self.started_at = 0.0
        self.up_since: Optional[float] = None
        self.attempts = 0
        self.next_restart_at: Optional[float] = None
        self.kill_reason = ""
        self.restarts = 0


def _worker_main(
    conn,
    worker_id: int,
    shard_ids: tuple[int, ...],
    num_shards: int,
    setup: Callable,
    fault_plan_json: Optional[str],
    heartbeat_interval: float,
    hang_seconds: float,
    harvest: bool = True,
) -> None:
    """Entry point of one worker process.

    Boot order matters. A ``fork`` clones the parent's whole address
    space — including any lock a *parent* thread happened to hold at
    the fork instant, with no thread left in the child to release it —
    so before anything can touch shared module state the child (1)
    replaces the locks of the inherited process-wide metrics registry,
    (2) rebinds ``repro.testing.faults.FAULTS`` to a brand-new
    injector, which also guarantees faults armed in the parent's tests
    never leak into a worker, and (3) forgets any tracer the parent's
    submitting thread had active at the fork instant
    (:func:`~repro.obs.trace.reset_tracing`) — otherwise worker spans
    would be recorded into the parent's (copied) tracer object instead
    of a per-request one. Then the serialized fault plan (if any) is
    armed for *this* worker and the shard's server is built, its audit
    log stamped with this worker's identity so pooled audit records
    can be joined against fleet metrics.

    When *harvest* is on (the default), every heartbeat and every
    response carries a cumulative :meth:`MetricsRegistry.snapshot` of
    the server's registry, built **inside the send lock** so pipe
    order equals build order — the parent's replace-on-update merge
    stays monotone. Shipping one with each response is what makes the
    conservation invariant exact even under SIGKILL: a request the
    dispatcher counted as ``ok``/``error`` had its worker-side count
    delivered on the very same message.
    """
    import repro.obs.trace as trace_mod
    import repro.testing.faults as faults_mod
    from repro.obs import metrics as metrics_mod
    from repro.testing.faults import InjectedFault

    metrics_mod.reinit_registry_locks(metrics_mod.METRICS)
    faults_mod.FAULTS = faults_mod.FaultInjector()
    trace_mod.reset_tracing()
    if fault_plan_json:
        FaultPlan.from_json(fault_plan_json).arm_into(
            faults_mod.FAULTS, worker=worker_id
        )

    server = setup(shard_ids, num_shards)
    server.audit.worker = worker_id
    server.audit.shard_resolver = ShardRouter(num_shards).shard_of

    send_lock = threading.Lock()
    stop = threading.Event()
    processed = [0]

    def registry_snapshot():
        return server.metrics.snapshot() if harvest else None

    def heartbeat() -> None:
        seq = 0
        while not stop.is_set():
            seq += 1
            try:
                with send_lock:
                    conn.send(("hb", worker_id, seq, processed[0],
                               registry_snapshot()))
            except Exception:
                return
            stop.wait(heartbeat_interval)

    with send_lock:
        conn.send(("ready", worker_id, os.getpid()))
    threading.Thread(target=heartbeat, daemon=True).start()

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, tuple) or not message:
                continue
            if message[0] == "stop":
                break
            if message[0] == "snap":
                # On-demand harvest (stats(deep=True)): echo the token
                # with a fresh cumulative snapshot.
                token = message[1] if len(message) > 1 else 0
                try:
                    with send_lock:
                        conn.send(("snapres", token, registry_snapshot()))
                except Exception:
                    break
                continue
            if message[0] != "req":
                continue
            _, req_id, _kind, item, limits = message[:5]
            trace_ctx = message[5] if len(message) > 5 else None

            # Process-level fault points (armed via a FaultPlan): the
            # injector raises, and the *site* decides what the fault
            # means — a hard crash, a wedged request, a garbage frame.
            try:
                faults_mod.trip("pool.worker.crash")
            except InjectedFault:
                os._exit(13)
            try:
                faults_mod.trip("pool.worker.hang")
            except InjectedFault:
                time.sleep(hang_seconds)
            try:
                faults_mod.trip("pool.ipc.corrupt")
            except InjectedFault:
                with send_lock:
                    conn.send_bytes(b"\x00not-a-pickle")
                continue

            # Cross-process trace propagation: a sampled TraceContext
            # activates a per-request tracer; the service layer reuses
            # the active tracer, so the whole pipeline's spans land on
            # it and ride back with the response for stitching.
            request_tracer = None
            activation = None
            if trace_ctx is not None and getattr(trace_ctx, "sampled", False):
                request_tracer = Tracer()
                activation = trace_mod.activate(request_tracer)
            try:
                result = dispatch(server, item, limits=limits)
                ok, payload = True, result
            except Exception as exc:
                ok, payload = False, exc
            finally:
                if activation is not None:
                    trace_mod.deactivate(activation)
            extras = None
            if harvest or request_tracer is not None:
                extras = {
                    "spans": request_tracer.spans
                    if request_tracer is not None
                    else None,
                    "snapshot": None,
                }
            try:
                with send_lock:
                    if extras is not None:
                        extras["snapshot"] = registry_snapshot()
                    conn.send(("res", req_id, ok, payload, extras))
            except (EOFError, OSError, BrokenPipeError):
                break
            except Exception as exc:
                # The payload would not pickle; answer with a typed
                # wrapper rather than silently dropping the request.
                fallback = WorkerLost(
                    f"worker {worker_id} could not serialize its "
                    f"response: {type(exc).__name__}: {exc}",
                    worker=worker_id,
                    reason="unserializable-response",
                )
                try:
                    with send_lock:
                        conn.send(
                            ("res", req_id, False, fallback,
                             {"spans": None, "snapshot": registry_snapshot()})
                        )
                except Exception:
                    break
            processed[0] += 1
    finally:
        stop.set()
        try:
            conn.close()
        except Exception:
            pass


class ShardedServerPool:
    """Supervised multi-process sharded serving (module docstring above).

    Parameters
    ----------
    setup:
        ``setup(shard_ids, num_shards) -> SecureXMLServer``, called
        inside each worker with the tuple of shard ids it owns — and
        with ``shard_ids=None`` in the parent to build the full-corpus
        fallback server for degraded mode. Must publish only (for the
        fallback: all of) the documents whose
        ``router.shard_of(uri)`` is in ``shard_ids``.
    workers, shards:
        Process count and shard count (default: one shard per worker).
        Shard *s* is owned by worker ``s % workers``.
    queue_depth:
        Bounded per-worker admission queue; a submit finding it full is
        shed with :class:`PoolSaturated`.
    pipeline_depth:
        How many requests may be in flight down one worker's pipe at
        once (pipelining amortizes the pipe round-trip).
    heartbeat_interval / heartbeat_timeout / hang_timeout / start_timeout:
        Supervision clocks — see :class:`~repro.server.supervisor.Supervisor`.
    restart_policy / breaker_threshold / breaker_cooldown:
        Restart backoff and per-shard circuit breaking.
    degraded:
        When True (default), an open breaker routes the shard's
        requests to a lazily built in-process fallback server instead
        of failing them with :class:`PoolUnhealthy`.
    limits:
        Default :class:`ResourceLimits` applied to every request that
        does not bring its own.
    fault_plan:
        A :class:`~repro.testing.faults.FaultPlan` shipped (as JSON)
        to every worker and armed at boot — the chaos tests' handle on
        deterministic process-level faults.
    mp_context:
        ``"fork"`` (default), ``"spawn"`` or ``"forkserver"``.
    harvest:
        When True (default), workers piggy-back cumulative metric
        snapshots on every heartbeat and response; the parent merges
        them into :attr:`fleet` (a :class:`~repro.obs.fleet.FleetView`)
        so ``stats(deep=True)`` and ``render_prometheus()`` see every
        worker's counters. Off, the fleet view stays empty and the
        wire messages shrink — an A/B handle for the overhead bench.
    tracer / metrics / audit:
        Observability wiring; fresh private instances by default.
    """

    def __init__(
        self,
        setup: Callable,
        workers: int = 2,
        shards: Optional[int] = None,
        queue_depth: int = 32,
        pipeline_depth: int = 4,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: float = 2.0,
        hang_timeout: float = 5.0,
        start_timeout: float = 30.0,
        restart_policy: Optional[RestartPolicy] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        degraded: bool = True,
        limits: Optional[ResourceLimits] = None,
        fault_plan: Optional[FaultPlan] = None,
        mp_context: str = "fork",
        supervision_interval: float = 0.05,
        harvest: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[AuditLog] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.setup = setup
        self.workers = workers
        self.num_shards = shards if shards is not None else workers
        if self.num_shards < 1:
            raise ValueError("shards must be >= 1")
        self.router = ShardRouter(self.num_shards)
        self.queue_depth = queue_depth
        self.pipeline_depth = pipeline_depth
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.hang_timeout = hang_timeout
        self.start_timeout = start_timeout
        self.restart_policy = restart_policy or RestartPolicy()
        self.degraded = degraded
        self.limits = limits
        self.fault_plan_json = fault_plan.to_json() if fault_plan else None
        self.harvest_enabled = harvest
        self.fleet = FleetView()
        self.slo = SloTracker()
        self._snap_tokens = itertools.count(1)
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.audit = audit if audit is not None else AuditLog()
        self._mp = multiprocessing.get_context(mp_context)
        self._closing = False
        self._ids = itertools.count(1)  # C-level next(): atomic under the GIL
        self._supervisor_id = Requester("supervisor", "127.0.0.1", "localhost")
        self._breakers = {
            shard: CircuitBreaker(breaker_threshold, breaker_cooldown)
            for shard in range(self.num_shards)
        }
        self._fallback_lock = threading.Lock()
        self._fallback_server = None

        self._slots = [
            _WorkerSlot(
                index,
                tuple(
                    shard
                    for shard in range(self.num_shards)
                    if shard % workers == index
                ),
            )
            for index in range(workers)
        ]
        for slot in self._slots:
            self.fleet.set_shards(slot.index, slot.shard_ids)
            threading.Thread(
                target=self._sender_loop,
                args=(slot,),
                name=f"repro-pool-send-{slot.index}",
                daemon=True,
            ).start()
            self._start_worker(slot)
        self.supervisor = Supervisor(self, interval=supervision_interval)
        self.supervisor.start()

    # -- worker lifecycle ----------------------------------------------------

    def _start_worker(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(
                child_conn,
                slot.index,
                slot.shard_ids,
                self.num_shards,
                self.setup,
                self.fault_plan_json,
                self.heartbeat_interval,
                self.hang_timeout * 100,  # fault-injected hang outlives every timeout
                self.harvest_enabled,
            ),
            name=f"repro-pool-worker-{slot.index}",
            daemon=True,
        )
        with slot.lock:
            slot.generation += 1
            generation = slot.generation
            slot.conn = parent_conn
            slot.process = process
            slot.state = "starting"
            slot.started_at = time.monotonic()
            slot.last_heartbeat = slot.started_at
            slot.kill_reason = ""
        process.start()
        child_conn.close()  # the parent's copy; the worker keeps its own
        threading.Thread(
            target=self._receiver_loop,
            args=(slot, parent_conn, generation),
            name=f"repro-pool-recv-{slot.index}.{generation}",
            daemon=True,
        ).start()

    def _restart_slot(self, slot: _WorkerSlot) -> None:
        with span("pool.restart", worker=slot.index):
            slot.restarts += 1
            self.metrics.counter("pool_worker_restarts_total").inc()
            self.audit.record(
                self._supervisor_id,
                f"worker:{slot.index}",
                "supervise",
                "restarted",
                detail=f"attempt {slot.attempts}",
                backend="pool",
                worker=slot.index,
            )
            self._start_worker(slot)

    def _kill_slot(self, slot: _WorkerSlot, reason: str) -> None:
        """Kill a misbehaving worker; the receiver's EOF drives cleanup."""
        with slot.lock:
            slot.kill_reason = reason
            process = slot.process
        if process is not None:
            try:
                process.kill()
            except Exception:
                pass

    def _on_worker_exit(self, slot: _WorkerSlot, generation: int, reason: str) -> None:
        with slot.lock:
            if slot.generation != generation or slot.state == "down":
                return
            # Fold the dead incarnation's last snapshot into the fleet
            # base *before* the restart can start a new generation —
            # retire() is generation-checked, and this thread is the
            # dying generation's own receiver, so no update for this
            # generation can arrive after it. Restart resets the
            # worker's registry to zero; folding here is what keeps
            # requests_total conserved across SIGKILLs.
            self.fleet.retire(slot.index, generation)
            slot.state = "down"
            slot.up_since = None
            slot.pid = None
            if not self._closing:
                slot.attempts += 1
                slot.next_restart_at = time.monotonic() + self.restart_policy.delay(
                    slot.attempts
                )
            lost = list(slot.in_flight.values())
            slot.in_flight.clear()
            process = slot.process
        for pending in lost:
            self._finish(
                pending,
                "worker-lost",
                error=WorkerLost(
                    f"worker {slot.index} {reason} with request "
                    f"{pending.req_id} in flight",
                    worker=slot.index,
                    shard=pending.shard,
                    reason="shutdown" if self._closing else reason,
                ),
            )
        if self._closing:
            return
        self.metrics.counter("pool_worker_lost_total", reason=reason).inc()
        for shard in slot.shard_ids:
            self._breakers[shard].record_failure()
        self.audit.record(
            self._supervisor_id,
            f"worker:{slot.index}",
            "supervise",
            "worker-lost",
            detail=reason,
            backend="pool",
            worker=slot.index,
        )
        if process is not None:
            process.join(timeout=1.0)
        # An open breaker means the queue will not drain through this
        # worker any time soon: degrade queued requests now (or fail
        # them fast when degradation is off) instead of letting them
        # ride out restart after restart.
        stranded: list[_Pending] = []
        with slot.lock:
            if slot.queue:
                keep: deque[_Pending] = deque()
                for pending in slot.queue:
                    if self._breakers[pending.shard].state == "open":
                        stranded.append(pending)
                    else:
                        keep.append(pending)
                slot.queue = keep
        if stranded:
            if self.degraded:
                threading.Thread(
                    target=self._serve_degraded_batch,
                    args=(stranded,),
                    name=f"repro-pool-degrade-{slot.index}",
                    daemon=True,
                ).start()
            else:
                for pending in stranded:
                    self._finish(
                        pending,
                        "unhealthy",
                        error=PoolUnhealthy(
                            f"shard {pending.shard} unavailable: its worker "
                            f"keeps dying and degradation is disabled",
                            shard=pending.shard,
                        ),
                    )

    # -- parent-side I/O threads --------------------------------------------

    def _sender_loop(self, slot: _WorkerSlot) -> None:
        while True:
            with slot.lock:
                while not self._closing and not (
                    slot.queue
                    and slot.state == "up"
                    and len(slot.in_flight) < self.pipeline_depth
                ):
                    slot.wake.wait(0.05)
                if self._closing:
                    return
                pending = slot.queue.popleft()
                if pending.done:  # resolved while queued (deadline sweep)
                    continue
                slot.in_flight[pending.req_id] = pending
                conn = slot.conn
                generation = slot.generation
            wire = ("req", pending.req_id, pending.kind, pending.item,
                    pending.wire_limits(),
                    pending.trace.ctx if pending.trace is not None else None)
            pending.sent_at = time.monotonic()
            pending.t_sent = time.perf_counter()
            try:
                with slot.send_mutex:
                    conn.send(wire)
            except Exception:
                # Never delivered: put it back at the head. If the
                # worker died, the exit handler may have resolved it
                # already (WorkerLost) — the done-check on pop and the
                # resolve-once protocol make the requeue harmless.
                pending.sent_at = None
                pending.t_sent = None
                with slot.lock:
                    if slot.in_flight.pop(pending.req_id, None) is not None:
                        slot.queue.appendleft(pending)

    def _receiver_loop(self, slot: _WorkerSlot, conn, generation: int) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            except Exception:
                # The frame did not unpickle: the channel can no longer
                # be trusted (we cannot even tell which request the
                # garbage answered). Kill the worker; in-flight
                # requests resolve WorkerLost(reason="ipc-corrupt").
                self.metrics.counter("pool_ipc_errors_total").inc()
                self._kill_slot(slot, "ipc-corrupt")
                continue  # drain until the kill closes the pipe (EOF)
            with slot.lock:
                if slot.generation != generation:
                    return
                slot.last_heartbeat = time.monotonic()
            if not isinstance(message, tuple) or not message:
                self.metrics.counter("pool_ipc_errors_total").inc()
                self._kill_slot(slot, "ipc-corrupt")
                continue
            tag = message[0]
            if tag == "ready":
                with slot.lock:
                    if slot.generation != generation:
                        return
                    slot.state = "up"
                    slot.up_since = time.monotonic()
                    slot.pid = message[2]
                    slot.wake.notify_all()
            elif tag == "hb":
                # The timestamp update above is the liveness half; the
                # optional 5th element is a piggy-backed cumulative
                # metrics snapshot (pipe order == build order, so a
                # plain replace keeps the fleet view monotone).
                if len(message) > 4 and message[4] is not None:
                    self.fleet.update(slot.index, generation, message[4])
            elif tag == "snapres":
                token = message[1]
                if len(message) > 2 and message[2] is not None:
                    self.fleet.update(slot.index, generation, message[2])
                with slot.lock:
                    if (
                        slot.generation == generation
                        and token > slot.last_snap_token
                    ):
                        slot.last_snap_token = token
            elif tag == "res":
                _, req_id, ok, payload = message[:4]
                extras = message[4] if len(message) > 4 else None
                if extras is not None and extras.get("snapshot") is not None:
                    self.fleet.update(slot.index, generation, extras["snapshot"])
                with slot.lock:
                    pending = slot.in_flight.pop(req_id, None)
                    slot.wake.notify_all()  # a pipeline slot freed up
                if pending is not None and extras is not None:
                    pending.worker_spans = extras.get("spans")
                if pending is None or pending.done:
                    # Deadline sweep (or exit handling) got there first.
                    self.metrics.counter("pool_late_results_total").inc()
                elif ok:
                    if self._finish(pending, "ok", value=payload):
                        self._breakers[pending.shard].record_success()
                else:
                    # An application-level error raised inside the
                    # worker (unknown document, history denial...).
                    # The worker is healthy — no breaker failure.
                    if self._finish(pending, "error", error=payload):
                        self._breakers[pending.shard].record_success()
            else:
                self.metrics.counter("pool_ipc_errors_total").inc()
                self._kill_slot(slot, "ipc-corrupt")
        with slot.lock:
            reason = slot.kill_reason or "crashed"
        self._on_worker_exit(slot, generation, reason)

    # -- resolution & degradation -------------------------------------------

    def _finish(
        self,
        pending: _Pending,
        outcome: str,
        value: Optional[object] = None,
        error: Optional[BaseException] = None,
    ) -> bool:
        """Resolve *pending* (first resolution wins) and count the
        outcome exactly once — the conservation law the chaos tests
        assert: sum(pool_requests_total) == submissions.

        Trace stitching happens *before* the resolve: the waiter may
        read its tracer the instant the event sets, so the synthesized
        ``pool.*`` spans and the grafted worker subtree must already be
        on it by then.
        """
        self._stitch(pending, outcome)
        first = (
            pending.resolve_error(error)
            if error is not None
            else pending.resolve(value)
        )
        if first:
            self.metrics.counter("pool_requests_total", outcome=outcome).inc()
            now = time.perf_counter()
            if outcome in ("ok", "error") and pending.t_sent is not None:
                self.slo.observe(
                    "pool.queue_wait", pending.t_sent - pending.t_submitted
                )
                self.slo.observe("pool.service", now - pending.t_sent)
            self.slo.observe("pool.e2e", now - pending.t_submitted)
        return first

    def _stitch(self, pending: _Pending, outcome: str) -> None:
        """Synthesize this request's dispatcher-side spans and graft the
        worker's shipped subtree, all on the *originating* tracer.

        The live ``with span(...)`` pattern cannot express these spans:
        submit() returns before the request resolves, so the region is
        open across threads. Instead the spans are built retroactively
        from the request's own perf_counter marks, in the originating
        tracer's timebase:

        - ``pool.dispatch``   submit → resolution (whole pool residency)
        - ``pool.queue_wait`` submit → pipe send
        - ``pool.ipc``        pipe send → resolution (pipe + worker)
        - worker spans        grafted inside ``pool.ipc``, centered so
          the pipe cost ``ipc − worker`` is attributed symmetrically
          (cross-process clocks are never compared directly).

        Consumed exactly once: the trace state is taken atomically so a
        racing late path finds ``None`` and does nothing.
        """
        with pending._lock:
            trace, pending.trace = pending.trace, None
        if trace is None:
            return
        tracer = trace.tracer
        t0 = pending.t_submitted - tracer._created
        t_end = time.perf_counter() - tracer._created
        depth = trace.depth
        parent = -1 if depth > 0 else None
        tracer.spans.append(
            Span(
                "pool.dispatch",
                t0,
                t_end - t0,
                depth,
                parent,
                {
                    "shard": pending.shard,
                    "worker": pending.worker,
                    "outcome": outcome,
                    "trace_id": trace.ctx.trace_id,
                },
            )
        )
        if pending.t_sent is None:
            return
        ts = pending.t_sent - tracer._created
        tracer.spans.append(
            Span("pool.queue_wait", t0, ts - t0, depth + 1, -1, None)
        )
        tracer.spans.append(
            Span("pool.ipc", ts, t_end - ts, depth + 1, -1, None)
        )
        spans = pending.worker_spans
        if spans:
            extent = max(s.started + s.duration for s in spans) - min(
                s.started for s in spans
            )
            slack = max(0.0, (t_end - ts) - extent)
            tracer.graft(spans, at=ts + slack / 2, depth=depth + 2)

    def _fallback(self):
        with self._fallback_lock:
            if self._fallback_server is None:
                self._fallback_server = self.setup(None, self.num_shards)
            return self._fallback_server

    def _serve_degraded(self, pending: _Pending) -> None:
        """Serve one request in-process on the fallback server.

        Reads only: applying a *write* to the fallback replica would
        fork the corpus from the shard owner's copy (split-brain), so
        updates for an unhealthy shard always fail fast instead.
        """
        if pending.done:
            return
        if pending.kind == "update":
            self._finish(
                pending,
                "unhealthy",
                error=PoolUnhealthy(
                    f"shard {pending.shard} unavailable: updates are never "
                    "served by the degraded fallback (split-brain)",
                    shard=pending.shard,
                ),
            )
            return
        pending.degraded = True
        try:
            server = self._fallback()
            result = dispatch(server, pending.item, limits=pending.wire_limits())
        except Exception as exc:
            if self._finish(pending, "degraded-error", error=exc):
                self.metrics.counter("pool_degraded_total").inc()
            return
        if self._finish(pending, "degraded-ok", value=result):
            self.metrics.counter("pool_degraded_total").inc()
            self.audit.record(
                _requester_of(pending.item),
                _uri_of(pending.item),
                "degrade",
                "degraded",
                detail=f"shard {pending.shard} unhealthy; served in-process",
                backend="pool",
                shard=pending.shard,
            )

    def _serve_degraded_batch(self, pendings: list[_Pending]) -> None:
        for pending in pendings:
            self._serve_degraded(pending)

    # -- supervisor hooks ----------------------------------------------------

    def _sweep_deadlines(self) -> None:
        """Fail every queued/in-flight request whose deadline expired.

        This is the never-hangs guarantee: a request stuck in a dead
        worker's queue does not wait for the restart — its deadline
        resolves it with a typed :class:`DeadlineExceeded`. An
        in-flight request's entry stays in the table so a late result
        is recognized and dropped (counted as ``pool_late_results``).
        """
        expired: list[_Pending] = []
        for slot in self._slots:
            with slot.lock:
                if slot.queue and any(
                    p.deadline is not None and p.deadline.expired
                    for p in slot.queue
                ):
                    keep: deque[_Pending] = deque()
                    for pending in slot.queue:
                        if pending.deadline is not None and pending.deadline.expired:
                            expired.append(pending)
                        else:
                            keep.append(pending)
                    slot.queue = keep
                for pending in slot.in_flight.values():
                    if (
                        not pending.done
                        and pending.deadline is not None
                        and pending.deadline.expired
                    ):
                        expired.append(pending)
        for pending in expired:
            deadline = pending.deadline
            self._finish(
                pending,
                "deadline",
                error=DeadlineExceeded(
                    f"request {pending.req_id} exceeded its "
                    f"{deadline.budget:.3f}s deadline in the pool "
                    f"(worker {pending.worker})",
                    elapsed=deadline.elapsed(),
                    budget=deadline.budget,
                ),
            )

    def _refresh_slo_gauges(self) -> None:
        """Publish the sliding-window quantiles as gauges (called from
        the supervisor's tick, next to :meth:`_update_gauges`)."""
        for stage, summary in self.slo.summary().items():
            for quantile in ("p50", "p95", "p99"):
                value = summary.get(quantile)
                if value is not None:
                    self.metrics.gauge(
                        "pool_slo_seconds", stage=stage, quantile=quantile
                    ).set(value)

    def _update_gauges(self) -> None:
        alive = 0
        for slot in self._slots:
            with slot.lock:
                state = slot.state
                queued = len(slot.queue)
            if state == "up":
                alive += 1
            self.metrics.gauge("pool_queue_depth", worker=slot.index).set(queued)
        self.metrics.gauge("pool_workers_alive").set(alive)
        codes = {"closed": 0, "half-open": 1, "open": 2}
        for shard, breaker in self._breakers.items():
            self.metrics.gauge("pool_breaker_state", shard=shard).set(
                codes[breaker.state]
            )

    # -- serving --------------------------------------------------------------

    def submit(
        self, item: PoolRequest, limits: Optional[ResourceLimits] = None
    ) -> _Pending:
        """Route one request; returns its pending resolution slot.

        Admission control happens here: circuit-breaker check (open →
        degraded in-process serve, or fail-fast
        :class:`PoolUnhealthy`), then the bounded queue (full → shed
        with :class:`PoolSaturated`). The returned pending always
        resolves to exactly one outcome.

        If the submitting thread has an active tracer, a
        :class:`TraceContext` is captured here and shipped with the
        request; at resolution :meth:`_stitch` synthesizes the
        ``pool.dispatch`` / ``pool.queue_wait`` / ``pool.ipc`` spans
        and grafts the worker's pipeline spans under them, so one
        ``export_chrome()`` shows the whole cross-process timeline.
        """
        if self._closing:
            raise RuntimeError("the pool is closed")
        kind = _kind_of(item)
        limits = limits if limits is not None else self.limits
        deadline = None
        if limits is not None and limits.deadline_seconds is not None:
            deadline = Deadline.after(limits.deadline_seconds)
        shard = self.router.shard_of(_uri_of(item))
        slot = self._slots[shard % self.workers]
        pending = _Pending(
            next(self._ids), kind, item, limits, deadline, shard, slot.index
        )
        tracer = current_tracer()
        if tracer is not None:
            pending.trace = _TraceState(
                tracer, len(tracer._stack), TraceContext.capture(tracer)
            )
        if not self._breakers[shard].allow():
            if self.degraded:
                self._serve_degraded(pending)
            else:
                self._finish(
                    pending,
                    "unhealthy",
                    error=PoolUnhealthy(
                        f"shard {shard}'s circuit breaker is open and "
                        "degradation is disabled",
                        shard=shard,
                    ),
                )
            return pending
        with slot.lock:
            full = len(slot.queue) >= self.queue_depth
            if not full:
                slot.queue.append(pending)
                slot.wake.notify_all()
        if full:
            self.metrics.counter("pool_shed_total").inc()
            self.audit.record(
                _requester_of(item),
                _uri_of(item),
                "shed",
                "shed",
                detail=f"worker {slot.index} queue full "
                f"(depth {self.queue_depth})",
                backend="pool",
                worker=slot.index,
                shard=shard,
            )
            self._finish(
                pending,
                "shed",
                error=PoolSaturated(
                    f"worker {slot.index}'s queue is full "
                    f"(depth {self.queue_depth}); request shed",
                    worker=slot.index,
                    depth=self.queue_depth,
                ),
            )
        return pending

    def serve(
        self,
        item: PoolRequest,
        limits: Optional[ResourceLimits] = None,
        timeout: Optional[float] = None,
    ):
        """Submit and block: the response, or the typed error raised."""
        return self.submit(item, limits=limits).result(timeout=timeout)

    def serve_many(
        self,
        items: Iterable[PoolRequest],
        limits: Optional[ResourceLimits] = None,
        timeout: Optional[float] = None,
    ) -> list[PoolOutcome]:
        """Submit a batch; ordered :class:`PoolOutcome` slots."""
        pendings = [self.submit(item, limits=limits) for item in items]
        outcomes = []
        for index, pending in enumerate(pendings):
            pending.wait(timeout)
            outcomes.append(
                PoolOutcome(
                    index=index,
                    kind=pending.kind,
                    result=pending.value,
                    error=pending.error,
                    worker=pending.worker,
                    shard=pending.shard,
                    degraded=pending.degraded,
                )
            )
        return outcomes

    # -- health ---------------------------------------------------------------

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker has reported ready once."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if all(slot.state == "up" for slot in self._slots):
                return
            time.sleep(0.01)
        states = {slot.index: slot.state for slot in self._slots}
        raise TimeoutError(f"pool not ready after {timeout}s: {states}")

    def harvest(self, timeout: float = 1.0) -> None:
        """Request a fresh metrics snapshot from every live worker and
        wait (up to *timeout*) for the answers to land in :attr:`fleet`.

        Tokened: each round sends one monotonically increasing token;
        a worker's ``snapres`` echo proves its snapshot is at least as
        fresh as this call. Workers that die mid-round are simply
        skipped — their last snapshot was already folded by retire().
        """
        if not self.harvest_enabled:
            return
        token = next(self._snap_tokens)
        targets = []
        for slot in self._slots:
            with slot.lock:
                if slot.state != "up" or slot.conn is None:
                    continue
                conn = slot.conn
            try:
                with slot.send_mutex:
                    conn.send(("snap", token))
            except Exception:
                continue
            targets.append(slot)
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            done = True
            for slot in targets:
                with slot.lock:
                    if slot.state == "up" and slot.last_snap_token < token:
                        done = False
            if done:
                return
            time.sleep(0.005)

    def stats(self, deep: bool = False) -> dict:
        """Pool health + request accounting, shaped like
        :meth:`SecureXMLServer.stats` one tier up (JSON-serializable).

        ``deep=True`` first runs a synchronous :meth:`harvest` round so
        the ``fleet`` section reflects every live worker *right now*
        rather than as of its last heartbeat/response.
        """
        if deep:
            self.harvest()
        outcomes: dict[str, float] = {}
        for metric in self.metrics:
            if metric.name == "pool_requests_total":
                outcomes[metric.labels.get("outcome", "?")] = metric.value
        workers = []
        for slot in self._slots:
            with slot.lock:
                workers.append(
                    {
                        "worker": slot.index,
                        "state": slot.state,
                        "pid": slot.pid,
                        "shards": list(slot.shard_ids),
                        "queued": len(slot.queue),
                        "in_flight": len(slot.in_flight),
                        "restarts": slot.restarts,
                        "attempts": slot.attempts,
                    }
                )
        return {
            "pool": {
                "workers": self.workers,
                "shards": self.num_shards,
                "workers_alive": sum(1 for w in workers if w["state"] == "up"),
                "restarts_total": self.metrics.value("pool_worker_restarts_total")
                or 0,
                "shed_total": self.metrics.value("pool_shed_total") or 0,
                "degraded_total": self.metrics.value("pool_degraded_total") or 0,
                "breakers": {
                    shard: breaker.state
                    for shard, breaker in self._breakers.items()
                },
            },
            "workers": workers,
            "shard_owners": {
                shard: shard % self.workers for shard in range(self.num_shards)
            },
            "outcomes": outcomes,
            "audit_records": len(self.audit),
            "metrics": self.metrics.as_dict(),
            "slo": self.slo.summary(),
            "fleet": self.fleet.as_dict(),
        }

    def render_prometheus(self, fleet: bool = True) -> str:
        """The pool's metrics in Prometheus text exposition format.

        With ``fleet=True`` (default) the harvested per-worker series
        (each labelled ``worker="N"``, plus the ``pool_worker_shards``
        ownership map) are appended — one scrape covers the dispatcher
        and every worker. The two families are disjoint (``pool_*`` vs
        pipeline names), so the concatenation is lint-clean.
        """
        text = self.metrics.render_prometheus()
        if fleet:
            fleet_text = self.fleet.render_prometheus()
            if fleet_text:
                text = text + fleet_text
        return text

    # -- shutdown -------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop supervision, fail whatever is still pending (typed
        ``WorkerLost(reason="shutdown")``), and reap the workers."""
        if self._closing:
            return
        self._closing = True
        self.supervisor.stop()
        for slot in self._slots:
            with slot.lock:
                leftovers = list(slot.queue) + list(slot.in_flight.values())
                slot.queue.clear()
                slot.in_flight.clear()
                conn = slot.conn
                slot.wake.notify_all()
            for pending in leftovers:
                self._finish(
                    pending,
                    "worker-lost",
                    error=WorkerLost(
                        "the pool was closed with this request unresolved",
                        worker=slot.index,
                        shard=pending.shard,
                        reason="shutdown",
                    ),
                )
            if conn is not None:
                try:
                    with slot.send_mutex:
                        conn.send(("stop",))
                except Exception:
                    pass
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except Exception:
                    pass

    def __enter__(self) -> "ShardedServerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
