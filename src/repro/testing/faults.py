"""Deterministic fault injection for the server's degradation paths.

The repository, the view cache and the persistence layer each declare
*named injection points* — ``faults.trip("cache.get")`` and friends —
that are free no-ops in production: when nothing is armed, a trip is a
single empty-dict test. Tests arm a point with fail-N-times or
always-fail behaviour and exercise the real fallback code (cache outage
-> recompute, transient disk error -> retry) instead of monkeypatching
internals:

    from repro.testing import FAULTS

    with FAULTS.injected("cache.get"):
        response = server.serve(request)   # served via recompute

Injection is deterministic — no randomness, no timing — so degradation
tests are exactly reproducible. Every firing also increments
``faults_injected_total{point=...}`` on the process-wide metrics
registry (docs/OBSERVABILITY.md), so a test can assert both that the
fault fired and that the service reacted.

.. warning:: **Process-wide blast radius.** :data:`FAULTS` is one
   global injector shared by every thread: arming a point — including
   via ``FAULTS.injected(...)`` — fires it for *any* concurrent request
   that trips it, not just the arming thread's. That is by design
   (infrastructure failures are not thread-scoped either), but it means
   concurrent test cases must not arm overlapping points, and a
   fail-N-times budget is consumed by whichever N trips arrive first,
   whatever thread they run on. The armed table itself is lock-
   protected, so arming/disarming races never corrupt it and
   fail-N-times countdowns decrement atomically (exactly N firings,
   never N±1). See docs/ROBUSTNESS.md.

Known injection points
----------------------
``repository.read``
    :meth:`repro.server.repository.Repository.stored` (every document
    lookup through the facade).
``cache.get`` / ``cache.put``
    :class:`repro.server.cache.ViewCache` lookups and stores.
``persistence.read`` / ``persistence.write``
    File I/O in :mod:`repro.server.persistence` (inside the retry
    wrapper, so fail-N-times exercises recovery).
``audit.write``
    Durable audit appends and rotations in
    :class:`repro.server.audit_sink.JsonlAuditSink` (inside the retry
    wrapper; a persistent fault is contained by the owning
    :class:`~repro.server.audit.AuditLog` and never loses the
    in-memory ring).
``pool.worker.crash`` / ``pool.worker.hang`` / ``pool.ipc.corrupt``
    Process-level faults tripped inside a
    :class:`repro.server.pool.ShardedServerPool` worker's request loop:
    hard ``os._exit``, a sleep far past the hang detector, and a
    garbage frame on the result pipe. Armed via a serializable
    :class:`FaultPlan` passed to the pool (a live injector cannot
    follow a request into a spawned process); the plan re-arms on
    every worker incarnation. See docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Callable, Iterator, Optional

from repro.obs.metrics import METRICS

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FAULTS",
    "trip",
]


class InjectedFault(RuntimeError):
    """The error raised by an armed injection point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate infrastructure failures (disk, memory, corruption),
    which arrive as arbitrary exceptions, not as typed library errors.
    """

    def __init__(self, point: str, occurrence: int):
        self.point = point
        self.occurrence = occurrence
        super().__init__(f"injected fault at {point!r} (occurrence {occurrence})")


@dataclass
class _Fault:
    """One armed injection point."""

    point: str
    remaining: Optional[int]  # None = fail forever
    exception: Optional[Callable[[str, int], BaseException]]
    fired: int = 0
    skip: int = 0  # pass through this many trips before failing


@dataclass(frozen=True)
class FaultSpec:
    """One entry of a :class:`FaultPlan`: arm *point* to fail *times*
    trips (``None`` = forever) after letting the first *after* trips
    through.

    *worker*, when set, scopes the spec to one pool worker index — a
    :class:`~repro.server.pool.ShardedServerPool` ships the same plan
    to every worker and each arms only its own specs, so a chaos test
    can say "worker 1 crashes on its 3rd request" deterministically.
    """

    point: str
    times: Optional[int] = 1
    after: int = 0
    worker: Optional[int] = None


@dataclass(frozen=True)
class FaultPlan:
    """A serializable (picklable, JSON-able) bundle of fault specs.

    ``FAULTS.injected(...)`` arms the injector of *this* process; a
    spawned worker process has its own injector, unreachable from the
    test. A plan closes the gap: it carries no callables, so it crosses
    the IPC boundary intact, and the worker arms it into its private
    injector at boot (``plan.arm_into(FAULTS, worker=worker_id)``).
    Every armed point raises the default :class:`InjectedFault`; what
    that *means* (crash, hang, corrupt reply) is decided by the trip
    site — see the process-level points in the module docstring.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def for_worker(self, worker: Optional[int]) -> "FaultPlan":
        """The subset of specs addressed to *worker* (or to everyone)."""
        return FaultPlan(
            tuple(
                spec
                for spec in self.specs
                if spec.worker is None or spec.worker == worker
            )
        )

    def arm_into(
        self, injector: "FaultInjector", worker: Optional[int] = None
    ) -> int:
        """Arm the applicable specs into *injector*; returns how many."""
        applicable = self.for_worker(worker).specs
        for spec in applicable:
            injector.arm(spec.point, times=spec.times, after=spec.after)
        return len(applicable)

    def to_dict(self) -> dict:
        return {"specs": [asdict(spec) for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in fields(FaultSpec)}
        return cls(
            tuple(
                FaultSpec(**{k: v for k, v in spec.items() if k in known})
                for spec in data.get("specs", ())
            )
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class FaultInjector:
    """A registry of armed injection points.

    One process-wide instance (:data:`FAULTS`) is consulted by the
    production trip points; tests may also instantiate private
    injectors for harness unit tests.

    The armed table is guarded by a lock: concurrent arm/disarm/trip
    calls never corrupt it, and a fail-N-times countdown is decremented
    atomically — exactly N firings total, however many threads trip the
    point. Arming remains *visible process-wide* (see the module
    docstring's blast-radius warning).
    """

    def __init__(self) -> None:
        self._faults: dict[str, _Fault] = {}
        self._fired: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- arming ------------------------------------------------------------

    def arm(
        self,
        point: str,
        times: Optional[int] = None,
        exception: Optional[Callable[[str, int], BaseException]] = None,
        after: int = 0,
    ) -> None:
        """Arm *point* to fail the next *times* trips (``None`` = always).

        *exception* is a factory ``(point, occurrence) -> exception``;
        by default an :class:`InjectedFault` is raised. *after* lets the
        first N trips pass through before the failures start — "fail
        the 4th and 5th lookups" is ``arm(point, times=2, after=3)``.
        """
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for always)")
        if after < 0:
            raise ValueError("after must be >= 0")
        with self._lock:
            self._faults[point] = _Fault(point, times, exception, skip=after)

    def disarm(self, point: str) -> None:
        """Stop failing *point* (no-op when not armed)."""
        with self._lock:
            self._faults.pop(point, None)

    def reset(self) -> None:
        """Disarm every point and zero the fired counters."""
        with self._lock:
            self._faults.clear()
            self._fired.clear()

    @contextmanager
    def injected(
        self,
        point: str,
        times: Optional[int] = None,
        exception: Optional[Callable[[str, int], BaseException]] = None,
    ) -> Iterator["FaultInjector"]:
        """Context manager: arm on entry, disarm on exit."""
        self.arm(point, times=times, exception=exception)
        try:
            yield self
        finally:
            self.disarm(point)

    # -- observation --------------------------------------------------------

    def armed(self, point: str) -> bool:
        with self._lock:
            return point in self._faults

    def fired(self, point: str) -> int:
        """How many times *point* has raised since the last reset."""
        with self._lock:
            return self._fired.get(point, 0)

    # -- the production-side hook ---------------------------------------------

    def trip(self, point: str) -> None:
        """Raise if *point* is armed with failures remaining.

        Called by production code at each injection point; free when
        nothing is armed — the disarmed fast path is one truthiness
        test on the (empty) table, no lock, no allocation. Armed
        bookkeeping — the countdown decrement and the fired counters —
        happens under the injector lock, so two threads tripping a
        fail-N-times point can never both consume the same budget slot
        (check-then-act race) or lose a fired increment.
        """
        if not self._faults:
            return
        with self._lock:
            fault = self._faults.get(point)
            if fault is None:
                return
            if fault.skip > 0:
                fault.skip -= 1
                return
            if fault.remaining is not None:
                if fault.remaining <= 0:
                    return
                fault.remaining -= 1
            fault.fired += 1
            occurrence = fault.fired
            factory = fault.exception
            self._fired[point] = self._fired.get(point, 0) + 1
        # Firings are observable like any other infrastructure event:
        # degradation tests assert on this counter alongside the audit
        # trail (see docs/OBSERVABILITY.md). Incremented outside the
        # injector lock — the registry has its own.
        METRICS.counter("faults_injected_total", point=point).inc()
        if factory is not None:
            raise factory(point, occurrence)
        raise InjectedFault(point, occurrence)


#: The process-wide injector consulted by the named injection points.
FAULTS = FaultInjector()


def trip(point: str) -> None:
    """Module-level shorthand for ``FAULTS.trip(point)``."""
    FAULTS.trip(point)
