"""Deterministic test harnesses for the server's degradation paths.

Public surface::

    from repro.testing import (
        FAULTS, FaultInjector, InjectedFault, FaultPlan, FaultSpec,
    )
"""

from repro.testing.faults import (
    FAULTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    trip,
)

__all__ = [
    "FAULTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "trip",
]
