"""Deterministic test harnesses for the server's degradation paths.

Public surface::

    from repro.testing import FAULTS, FaultInjector, InjectedFault
"""

from repro.testing.faults import FAULTS, FaultInjector, InjectedFault, trip

__all__ = ["FAULTS", "FaultInjector", "InjectedFault", "trip"]
