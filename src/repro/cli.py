"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so the processor can be
exercised without writing Python:

- ``view``     — compute one requester's view of a document under an
  XACL (the full Figure-2 pipeline);
- ``update``   — apply authorization-checked updates (``action="write"``
  labels) to a document, or check write/read policy consistency;
- ``validate`` — validate a document against a DTD;
- ``xpath``    — evaluate a path expression against a document;
- ``loosen``   — print the loosened version of a DTD (Section 6.2);
- ``tree``     — print a DTD's labeled tree (Figure 1b);
- ``xacl``     — check an XACL file and list the authorizations it
  declares, in the paper's angle-bracket notation.

The subject directory for ``view`` is a plain text file of lines::

    group Staff
    group Clinical Staff         # group + its parent groups
    user alice Clinical          # user + its groups

Exit status: 0 on success, 1 on any library error, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


class _OperationAction(argparse.Action):
    """Collect update operations preserving command-line order.

    Every operation flag shares ``dest="operations"``, so a mixed
    sequence like ``--set-attr ... --delete ... --insert ...`` applies
    exactly as written — per-flag ``append`` would lose that order.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        operations = getattr(namespace, self.dest, None) or []
        operations.append((option_string.lstrip("-"), tuple(values)))
        setattr(namespace, self.dest, operations)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Access-control processor for XML documents "
        "(reproduction of 'Securing XML Documents', EDBT 2000).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    view = commands.add_parser(
        "view", help="compute a requester's view of a document"
    )
    view.add_argument("document", help="path to the XML document")
    view.add_argument("--uri", required=True, help="URI the document is stored under")
    view.add_argument("--xacl", required=True, help="path to the XACL file")
    view.add_argument("--dtd", help="path to the document's DTD")
    view.add_argument("--dtd-uri", help="URI the DTD is published under")
    view.add_argument("--directory", help="subject directory file (see --help)")
    view.add_argument("--user", default="anonymous")
    view.add_argument("--ip", default="0.0.0.0")
    view.add_argument("--host", default="localhost")
    view.add_argument(
        "--credential",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="requester credential (repeatable)",
    )
    view.add_argument(
        "--policy",
        default="denials-take-precedence",
        help="conflict-resolution policy name",
    )
    view.add_argument(
        "--open", action="store_true", help="open policy (ε = permit)"
    )
    view.add_argument(
        "--pretty", action="store_true", help="indent the output view"
    )
    view.add_argument(
        "--emit-dtd", action="store_true", help="also print the loosened DTD"
    )
    view.add_argument(
        "--stream",
        action="store_true",
        help="enforce via the streaming engine (repro.stream) instead of "
        "the DOM pipeline; output is identical",
    )
    view.add_argument(
        "--query",
        metavar="XPATH",
        help="evaluate XPATH against the requester's view and print the "
        "matches instead of the view itself",
    )
    view.add_argument(
        "--virtual",
        action="store_true",
        help="with --query: answer by query rewriting over the source "
        "document (no materialized view); falls back automatically "
        "outside the rewritable subset",
    )

    val = commands.add_parser("validate", help="validate a document against a DTD")
    val.add_argument("document")
    val.add_argument("--dtd", help="external DTD (defaults to the internal subset)")

    xp = commands.add_parser("xpath", help="evaluate a path expression")
    xp.add_argument("document")
    xp.add_argument("expression")

    loos = commands.add_parser("loosen", help="print the loosened DTD")
    loos.add_argument("dtd")

    tree = commands.add_parser("tree", help="print a DTD's labeled tree (Figure 1b)")
    tree.add_argument("dtd")
    tree.add_argument("--root", help="root element (default: inferred)")

    lint = commands.add_parser(
        "lint", help="static checks on a DTD (determinism, dangling names)"
    )
    lint.add_argument("dtd")

    xacl = commands.add_parser("xacl", help="check an XACL file, list authorizations")
    xacl.add_argument("xacl")

    pool = commands.add_parser(
        "pool",
        help="drive synthetic traffic through the supervised "
        "multi-process sharded serving pool",
    )
    pool.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes (default 2)",
    )
    pool.add_argument(
        "--shards", type=int, default=None, metavar="M",
        help="document shards (default: one per worker)",
    )
    pool.add_argument(
        "--requests", type=int, default=50, help="requests to send (default 50)"
    )
    pool.add_argument(
        "--documents", type=int, default=8, help="corpus size (default 8)"
    )
    pool.add_argument(
        "--nodes", type=int, default=300,
        help="approximate nodes per document (default 300)",
    )
    pool.add_argument("--seed", type=int, default=0)
    pool.add_argument(
        "--query-share", type=float, default=0.25,
        help="fraction of requests that are XPath queries (default 0.25)",
    )
    pool.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock budget",
    )
    pool.add_argument(
        "--json", action="store_true",
        help="emit the pool stats snapshot as JSON instead of a summary",
    )

    top = commands.add_parser(
        "top",
        help="text dashboard over a pool's deep stats (live synthetic "
        "pool, or --stats to render a saved snapshot)",
    )
    top.add_argument(
        "--stats", default=None, metavar="FILE",
        help="render a stats(deep=True) JSON snapshot ('-' = stdin) "
        "instead of driving a live pool",
    )
    top.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes for the live pool (default 2)",
    )
    top.add_argument(
        "--shards", type=int, default=None, metavar="M",
        help="document shards (default: one per worker)",
    )
    top.add_argument(
        "--requests", type=int, default=50,
        help="requests per refresh interval (default 50)",
    )
    top.add_argument(
        "--documents", type=int, default=8, help="corpus size (default 8)"
    )
    top.add_argument(
        "--nodes", type=int, default=300,
        help="approximate nodes per document (default 300)",
    )
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between refreshes (default 1.0)",
    )
    top.add_argument(
        "--ticks", type=int, default=1, metavar="N",
        help="how many refreshes to render before exiting (default 1; "
        "each tick serves --requests fresh requests)",
    )

    upd = commands.add_parser(
        "update",
        help="apply authorization-checked updates to a document "
        "(write-action labels; repro.update)",
    )
    upd.add_argument("document", help="path to the XML document")
    upd.add_argument("--uri", required=True, help="URI the document is stored under")
    upd.add_argument("--xacl", required=True, help="path to the XACL file")
    upd.add_argument("--dtd", help="path to the document's DTD")
    upd.add_argument("--dtd-uri", help="URI the DTD is published under")
    upd.add_argument("--directory", help="subject directory file (see --help)")
    upd.add_argument("--user", default="anonymous")
    upd.add_argument("--ip", default="0.0.0.0")
    upd.add_argument("--host", default="localhost")
    upd.add_argument(
        "--policy",
        default="denials-take-precedence",
        help="conflict-resolution policy name",
    )
    upd.add_argument(
        "--open", action="store_true", help="open policy (ε = permit)"
    )
    upd.add_argument(
        "--set-attr", nargs=3, metavar=("TARGET", "NAME", "VALUE"),
        action=_OperationAction, dest="operations",
        help="set an attribute on every element TARGET selects (repeatable; "
        "operations apply in command-line order)",
    )
    upd.add_argument(
        "--remove-attr", nargs=2, metavar=("TARGET", "NAME"),
        action=_OperationAction, dest="operations",
        help="remove an attribute",
    )
    upd.add_argument(
        "--set-text", nargs=2, metavar=("TARGET", "TEXT"),
        action=_OperationAction, dest="operations",
        help="replace an element's text content",
    )
    upd.add_argument(
        "--insert", nargs=2, metavar=("TARGET", "FRAGMENT"),
        action=_OperationAction, dest="operations",
        help="insert a parsed XML fragment as the last child",
    )
    upd.add_argument(
        "--delete", nargs=1, metavar="TARGET",
        action=_OperationAction, dest="operations",
        help="delete the selected subtree",
    )
    upd.add_argument(
        "--replace", nargs=2, metavar=("TARGET", "FRAGMENT"),
        action=_OperationAction, dest="operations",
        help="replace the selected subtree with a parsed fragment",
    )
    upd.add_argument(
        "--out", metavar="FILE",
        help="write the updated document here (default: stdout)",
    )
    upd.add_argument(
        "--check-consistency", action="store_true",
        help="instead of applying operations, flag write grants on "
        "read-hidden nodes for this requester (exit 1 when any exist)",
    )
    upd.add_argument(
        "--suggest-repairs", action="store_true",
        help="with --check-consistency: print the minimal read grant "
        "that would expose each flagged node",
    )

    exp = commands.add_parser(
        "explain",
        help="explain why a node is visible/hidden for a requester",
    )
    exp.add_argument("document")
    exp.add_argument(
        "node",
        nargs="?",
        help=(
            "XPath selecting exactly one node; omit to explain the "
            "whole view, node by node"
        ),
    )
    exp.add_argument("--uri", required=True)
    exp.add_argument("--xacl", required=True)
    exp.add_argument("--dtd-uri", help="URI the document's DTD is published under")
    exp.add_argument("--directory")
    exp.add_argument("--user", default="anonymous")
    exp.add_argument("--ip", default="0.0.0.0")
    exp.add_argument("--host", default="localhost")
    exp.add_argument(
        "--json",
        action="store_true",
        help="emit the structured explanation as JSON instead of text",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = _HANDLERS[args.command]
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_view(args: argparse.Namespace) -> int:
    from repro.server.request import AccessRequest
    from repro.server.service import PolicyConfig, SecureXMLServer
    from repro.subjects.hierarchy import Requester
    from repro.xml.parser import parse_document
    from repro.xml.serializer import pretty

    server = SecureXMLServer(
        default_policy=PolicyConfig(
            conflict_policy=args.policy, open_policy=args.open
        )
    )
    if args.directory:
        _load_directory(server, args.directory)
    dtd_uri = args.dtd_uri
    if args.dtd:
        dtd_uri = dtd_uri or (args.uri + ".dtd")
        server.publish_dtd(dtd_uri, _read(args.dtd))
    server.publish_document(args.uri, _read(args.document), dtd_uri=dtd_uri)
    server.attach_xacl(_read(args.xacl))

    requester = Requester(args.user, args.ip, args.host)
    for pair in args.credential:
        key, _, value = pair.partition("=")
        if not key:
            raise ReproError(f"bad credential {pair!r}; expected KEY=VALUE")
        requester = requester.with_credentials(**{key: value})

    if args.query:
        from repro.server.request import QueryRequest

        response = server.query(
            QueryRequest(requester, args.uri, args.query),
            stream=args.stream,
            virtual=args.virtual,
        )
        if not response.ok:
            print(f"error: {response.error}", file=sys.stderr)
            return 1
        for match in response.matches:
            print(match)
        print(
            f"{len(response.matches)} match(es) against a view of "
            f"{response.visible_nodes}/{response.total_nodes} nodes",
            file=sys.stderr,
        )
        return 0

    if args.stream:
        response = server.serve_stream(AccessRequest(requester, args.uri))
    else:
        response = server.serve(AccessRequest(requester, args.uri))
    if not response.ok:
        print(f"error: {response.error}", file=sys.stderr)
        return 1
    if response.empty:
        print("<!-- empty view: nothing released -->")
    elif args.pretty:
        print(pretty(parse_document(response.xml_text)))
    else:
        print(response.xml_text)
    if args.emit_dtd and response.loosened_dtd_text:
        print()
        print("<!-- loosened DTD -->")
        print(response.loosened_dtd_text)
    print(
        f"released {response.visible_nodes}/{response.total_nodes} nodes "
        f"in {response.elapsed_seconds * 1000:.2f} ms",
        file=sys.stderr,
    )
    return 0


def _load_directory(server, path: str) -> None:
    """Load a subject directory file.

    Two formats are accepted: XML markup (``<directory>...`` — see
    :mod:`repro.subjects.markup`) and plain lines
    ``group NAME [parents...]`` / ``user NAME [groups...]``.
    """
    content = _read(path)
    if content.lstrip().startswith("<"):
        from repro.subjects.markup import parse_directory

        parse_directory(content, into=server.directory)
        return
    for line_number, raw in enumerate(content.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind, name, rest = parts[0], parts[1] if len(parts) > 1 else "", parts[2:]
        if kind == "group" and name:
            server.add_group(name, rest)
        elif kind == "user" and name:
            server.add_user(name, rest)
        else:
            raise ReproError(
                f"{path}:{line_number}: expected 'group NAME ...' or "
                f"'user NAME ...', got {raw!r}"
            )


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.dtd.parser import parse_dtd
    from repro.dtd.validator import validate
    from repro.xml.parser import parse_document

    document = parse_document(_read(args.document))
    dtd = parse_dtd(_read(args.dtd)) if args.dtd else None
    report = validate(document, dtd)
    if report.valid:
        print("valid")
        return 0
    for violation in report.violations:
        print(f"invalid: {violation}")
    return 1


def _cmd_xpath(args: argparse.Namespace) -> int:
    from repro.xml.parser import parse_document
    from repro.xml.serializer import serialize
    from repro.xpath.evaluator import evaluate
    from repro.xpath.values import to_string

    document = parse_document(_read(args.document))
    value = evaluate(args.expression, document)
    if isinstance(value, list):
        for node in value:
            print(serialize(node))
        print(f"{len(value)} node(s)", file=sys.stderr)
    else:
        print(to_string(value))
    return 0


def _cmd_loosen(args: argparse.Namespace) -> int:
    from repro.dtd.loosen import loosen
    from repro.dtd.parser import parse_dtd
    from repro.dtd.serializer import serialize_dtd

    print(serialize_dtd(loosen(parse_dtd(_read(args.dtd)))))
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.dtd.parser import parse_dtd
    from repro.dtd.tree import dtd_tree, render_tree

    print(render_tree(dtd_tree(parse_dtd(_read(args.dtd)), root=args.root)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.dtd.parser import parse_dtd
    from repro.dtd.validator import lint_dtd

    problems = lint_dtd(parse_dtd(_read(args.dtd)))
    if not problems:
        print("clean")
        return 0
    for problem in problems:
        print(problem)
    return 1


def _cmd_xacl(args: argparse.Namespace) -> int:
    from repro.authz.xacl import parse_xacl

    authorizations = parse_xacl(_read(args.xacl))
    for authorization in authorizations:
        print(authorization.unparse())
    print(f"{len(authorizations)} authorization(s)", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.authz.store import AuthorizationStore
    from repro.authz.xacl import parse_xacl
    from repro.core.explain import explain, explain_view
    from repro.server.service import SecureXMLServer
    from repro.subjects.hierarchy import Requester
    from repro.xml.parser import parse_document

    # A throwaway server gives us the directory-file loader; only its
    # store/hierarchy are used.
    server = SecureXMLServer()
    if args.directory:
        _load_directory(server, args.directory)
    store: AuthorizationStore = server.store
    store.add_all(parse_xacl(_read(args.xacl)))
    document = parse_document(_read(args.document), uri=args.uri)
    requester = Requester(args.user, args.ip, args.host)
    if args.node is None:
        explanation = explain_view(
            document, requester, store, dtd_uri=args.dtd_uri
        )
        print(explanation.to_json(indent=2) if args.json else explanation.describe())
        return 0
    explanation = explain(
        document, args.node, requester, store, dtd_uri=args.dtd_uri
    )
    if args.json:
        import json

        print(json.dumps(explanation.as_dict(), indent=2))
    else:
        print(explanation.describe())
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.server.service import PolicyConfig, SecureXMLServer
    from repro.subjects.hierarchy import Requester
    from repro.update import (
        DeleteNode,
        InsertChild,
        RemoveAttribute,
        ReplaceSubtree,
        SetAttribute,
        SetText,
        UpdateRequest,
    )
    from repro.xml.serializer import serialize

    server = SecureXMLServer(
        default_policy=PolicyConfig(
            conflict_policy=args.policy, open_policy=args.open
        )
    )
    if args.directory:
        _load_directory(server, args.directory)
    dtd_uri = args.dtd_uri
    if args.dtd:
        dtd_uri = dtd_uri or (args.uri + ".dtd")
        server.publish_dtd(dtd_uri, _read(args.dtd))
    server.publish_document(args.uri, _read(args.document), dtd_uri=dtd_uri)
    server.attach_xacl(_read(args.xacl))
    requester = Requester(args.user, args.ip, args.host)

    if args.check_consistency:
        findings = server.check_consistency(
            requester, args.uri, suggest_repairs=args.suggest_repairs
        )
        for finding in findings:
            print(f"{finding.node_path}: {finding.detail}")
            if finding.repair is not None:
                print(f"  repair: {finding.repair.unparse()}")
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1 if findings else 0

    builders = {
        "set-attr": lambda v: SetAttribute(v[0], v[1], v[2]),
        "remove-attr": lambda v: RemoveAttribute(v[0], v[1]),
        "set-text": lambda v: SetText(v[0], v[1]),
        "insert": lambda v: InsertChild(v[0], v[1]),
        "delete": lambda v: DeleteNode(v[0]),
        "replace": lambda v: ReplaceSubtree(v[0], v[1]),
    }
    operations = [
        builders[flag](values)
        for flag, values in (getattr(args, "operations", None) or [])
    ]
    if not operations:
        print("error: no operations given (see --help)", file=sys.stderr)
        return 2
    outcome = server.update(UpdateRequest.of(requester, args.uri, *operations))
    if not outcome.applied:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    text = serialize(server.repository.document(args.uri))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    mode = "incremental" if outcome.incremental else "full"
    print(
        f"applied {outcome.operations} operation(s) touching "
        f"{outcome.touched_nodes} node(s); version {outcome.version}, "
        f"{mode} relabel of {outcome.relabeled_nodes} node(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    import json as json_mod
    import time

    from repro.limits import ResourceLimits
    from repro.server.pool import ShardedServerPool
    from repro.workloads.traffic import TrafficSpec, request_stream

    spec = TrafficSpec(
        documents=args.documents,
        nodes_per_document=args.nodes,
        seed=args.seed,
    )
    requests = list(
        request_stream(
            spec, args.requests, seed=args.seed, query_share=args.query_share
        )
    )
    limits = (
        ResourceLimits(deadline_seconds=args.deadline)
        if args.deadline is not None
        else None
    )
    started = time.perf_counter()
    with ShardedServerPool(
        spec.build_server, workers=args.workers, shards=args.shards
    ) as pool:
        pool.wait_ready()
        outcomes = pool.serve_many(requests, limits=limits, timeout=120)
        elapsed = time.perf_counter() - started
        stats = pool.stats(deep=True)
    if args.json:
        print(json_mod.dumps(stats, indent=2, default=str))
        return 0
    ok = sum(1 for outcome in outcomes if outcome.ok)
    print(
        f"{ok}/{len(outcomes)} requests ok in {elapsed:.2f}s "
        f"({len(outcomes) / elapsed:.1f} req/s) across "
        f"{args.workers} worker(s), {stats['pool']['shards']} shard(s)"
    )
    print(
        f"outcomes: {stats['outcomes']}  restarts: "
        f"{stats['pool']['restarts_total']}  shed: {stats['pool']['shed_total']}"
    )
    for failed in (o for o in outcomes if not o.ok):
        print(
            f"  request {failed.index} [{failed.kind}] -> "
            f"{type(failed.error).__name__}: {failed.error}",
            file=sys.stderr,
        )
    return 0 if ok == len(outcomes) else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import json as json_mod
    import time

    from repro.obs.fleet import render_top

    if args.stats is not None:
        if args.stats == "-":
            stats = json_mod.load(sys.stdin)
        else:
            with open(args.stats, "r", encoding="utf-8") as handle:
                stats = json_mod.load(handle)
        print(render_top(stats))
        return 0

    from repro.server.pool import ShardedServerPool
    from repro.workloads.traffic import TrafficSpec, request_stream

    spec = TrafficSpec(
        documents=args.documents,
        nodes_per_document=args.nodes,
        seed=args.seed,
    )
    with ShardedServerPool(
        spec.build_server, workers=args.workers, shards=args.shards
    ) as pool:
        pool.wait_ready()
        for tick in range(args.ticks):
            requests = list(
                request_stream(spec, args.requests, seed=args.seed + tick)
            )
            pool.serve_many(requests, timeout=120)
            if tick:
                time.sleep(args.interval)
                print()
            print(render_top(pool.stats(deep=True)))
    return 0


_HANDLERS = {
    "view": _cmd_view,
    "update": _cmd_update,
    "pool": _cmd_pool,
    "top": _cmd_top,
    "validate": _cmd_validate,
    "xpath": _cmd_xpath,
    "loosen": _cmd_loosen,
    "tree": _cmd_tree,
    "lint": _cmd_lint,
    "xacl": _cmd_xacl,
    "explain": _cmd_explain,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
