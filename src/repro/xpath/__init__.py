"""XPath substrate: tokenizer, parser, evaluator, compiled expressions.

Public surface::

    from repro.xpath import parse_xpath, evaluate, select, compile_xpath
"""

from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Number,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.compile import CompiledXPath, compile_xpath
from repro.xpath.evaluator import Context, evaluate, evaluate_parsed, matches, select
from repro.xpath.functions import DEFAULT_REGISTRY, FunctionRegistry, default_registry
from repro.xpath.parser import parse_xpath
from repro.xpath.tokens import Token, TokenKind, tokenize
from repro.xpath.values import (
    XPathValue,
    compare,
    number_to_string,
    string_value,
    to_boolean,
    to_number,
    to_string,
)

__all__ = [
    "Axis",
    "BinaryExpr",
    "CompiledXPath",
    "Context",
    "DEFAULT_REGISTRY",
    "Expr",
    "FilterExpr",
    "FunctionCall",
    "FunctionRegistry",
    "Literal",
    "LocationPath",
    "NodeTest",
    "NodeTestKind",
    "Number",
    "PathExpr",
    "Step",
    "Token",
    "TokenKind",
    "UnaryMinus",
    "UnionExpr",
    "VariableRef",
    "XPathValue",
    "compare",
    "compile_xpath",
    "default_registry",
    "evaluate",
    "evaluate_parsed",
    "matches",
    "number_to_string",
    "parse_xpath",
    "select",
    "string_value",
    "to_boolean",
    "to_number",
    "to_string",
    "tokenize",
]
