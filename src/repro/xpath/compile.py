"""Compiled path expressions with caching and relative-path policy.

Authorization objects carry path expressions that are evaluated against
every requested document (paper, Section 6.1: ``n ∈ object(a)``).
:class:`CompiledXPath` parses once, optionally rewrites relative paths
per the configured policy (see DESIGN.md decision 5), and caches the
selected node-set per document root so that ``initial_label`` — which
asks about every node of the tree — performs one evaluation per
authorization, not one per node.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Literal as TypingLiteral, Optional

from repro.limits import Deadline
from repro.xml.nodes import Node
from repro.xpath.ast import (
    Axis,
    Expr,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Step,
    UnionExpr,
)
from repro.xpath.evaluator import evaluate_parsed, select
from repro.xpath.functions import FunctionRegistry
from repro.xpath.parser import parse_xpath

__all__ = ["CompiledXPath", "compile_xpath", "RelativeMode"]

RelativeMode = TypingLiteral["descendant", "root"]


def _anchor_relative(expr: Expr) -> Expr:
    """Rewrite relative location paths to descendant-or-self searches.

    ``project/manager`` becomes ``//project/manager`` so that relative
    authorization objects match anywhere in the document, which is what
    the paper's examples (e.g. ``CSlab.xml:project[@type="internal"]``)
    clearly intend. Absolute paths and non-path expressions are left
    untouched; unions are rewritten element-wise.
    """
    if isinstance(expr, LocationPath):
        if expr.absolute or not expr.steps:
            return expr
        first = expr.steps[0]
        already_anchored = (
            first.axis is Axis.DESCENDANT_OR_SELF
            and first.test.kind is NodeTestKind.NODE
        )
        if already_anchored:
            return LocationPath(expr.steps, absolute=True)
        steps = [Step(Axis.DESCENDANT_OR_SELF, NodeTest(NodeTestKind.NODE))]
        steps.extend(expr.steps)
        return LocationPath(steps, absolute=True)
    if isinstance(expr, UnionExpr):
        return UnionExpr([_anchor_relative(part) for part in expr.parts])
    return expr


class CompiledXPath:
    """A parsed, policy-adjusted, result-cached path expression."""

    __slots__ = ("source", "ast", "relative_mode", "_cache_root", "_cache_nodes")

    def __init__(self, source: str, relative_mode: RelativeMode = "descendant"):
        self.source = source
        self.relative_mode = relative_mode
        ast = parse_xpath(source)
        if relative_mode == "descendant":
            ast = _anchor_relative(ast)
        self.ast = ast
        self._cache_root: Optional[Node] = None
        self._cache_nodes: Optional[list[Node]] = None

    def select(
        self,
        context: Node,
        registry: Optional[FunctionRegistry] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> list[Node]:
        """Evaluate against *context*, caching per context node.

        The cache holds the most recent (context, result) pair — exactly
        the pattern of the labeling algorithm, which evaluates every
        authorization against the same document root. A cache hit is
        free and therefore not charged against *max_steps*/*deadline*.
        """
        if context is self._cache_root and self._cache_nodes is not None:
            return self._cache_nodes
        nodes = select(
            self.ast, context, registry, max_steps=max_steps, deadline=deadline
        )
        self._cache_root = context
        self._cache_nodes = nodes
        return nodes

    def node_set(self, context: Node) -> set[Node]:
        """The selected nodes as an identity set (membership tests)."""
        return set(self.select(context))

    def evaluate(self, context: Node, registry: Optional[FunctionRegistry] = None):
        """Evaluate without requiring a node-set result."""
        return evaluate_parsed(self.ast, context, registry)

    def invalidate(self) -> None:
        """Drop the cached node-set (call after mutating the document)."""
        self._cache_root = None
        self._cache_nodes = None

    def __repr__(self) -> str:
        return f"<CompiledXPath {self.source!r} mode={self.relative_mode}>"


@lru_cache(maxsize=4096)
def _compile_cached(source: str, relative_mode: RelativeMode) -> CompiledXPath:
    return CompiledXPath(source, relative_mode)


def compile_xpath(
    source: str, relative_mode: RelativeMode = "descendant"
) -> CompiledXPath:
    """Parse (with memoization) a path expression.

    Repeated compilation of the same authorization object across
    requests hits an LRU cache; the returned object is shared, so its
    per-root node-set cache also amortizes across calls.
    """
    return _compile_cached(source, relative_mode)
