"""Evaluation of XPath ASTs over document trees.

The evaluator follows XPath 1.0 semantics: a location step maps each
context node through an axis, a node test and a predicate list; a
predicate evaluating to a number is a position test; node-sets keep
document order. Reverse axes (``ancestor``, ``parent``,
``preceding-sibling``) count positions in reverse document order, as the
spec requires.

Entry points:

- :func:`evaluate` — any expression, returns an XPath value;
- :func:`select` — expression expected to yield a node-set;
- :func:`matches` — membership test used by the authorization engine
  ("n ∈ object(a)" in the paper's initial_label procedure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import XPathEvaluationError, XPathLimitExceeded
from repro.limits import Deadline
from repro.obs.trace import span
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    Text,
)
from repro.xml.traversal import preorder
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Number,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.functions import DEFAULT_REGISTRY, FunctionRegistry
from repro.xpath.parser import parse_xpath
from repro.xpath.values import XPathValue, compare, to_boolean, to_number

__all__ = ["Context", "evaluate", "select", "matches", "evaluate_parsed"]

_REVERSE_AXES = frozenset(
    (
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.PARENT,
        Axis.PRECEDING_SIBLING,
        Axis.PRECEDING,
    )
)


@dataclass
class _Evaluation:
    """Per-call shared state: function registry, variables, order cache,
    and the optional step budget / deadline guards."""

    registry: FunctionRegistry
    variables: dict[str, XPathValue] = field(default_factory=dict)
    max_steps: Optional[int] = None
    deadline: Optional[Deadline] = None
    steps: int = 0
    _order: Optional[dict[Node, int]] = None
    _root: Optional[Node] = None

    def charge(self, amount: int = 1) -> None:
        """Charge *amount* evaluation steps against the guards.

        A "step" is one unit of traversal work: a context node pushed
        through a location step, a candidate node produced by an axis,
        or one predicate evaluation. Guards disabled -> near-free.
        """
        if self.max_steps is None and self.deadline is None:
            return
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            raise XPathLimitExceeded(
                f"expression exceeded its {self.max_steps}-step "
                "evaluation budget",
                value=self.steps,
                maximum=self.max_steps,
            )
        if self.deadline is not None:
            self.deadline.check("XPath evaluation")

    def order_index(self, any_node: Node) -> dict[Node, int]:
        if self._order is None:
            root = self.tree_root(any_node)
            self._order = {n: i for i, n in enumerate(preorder(root))}
        return self._order

    def tree_root(self, node: Node) -> Node:
        if self._root is None:
            current = node
            while current.parent is not None:
                current = current.parent
            self._root = current
        return self._root


@dataclass
class Context:
    """The XPath evaluation context: node, position, size, shared state."""

    node: Node
    position: int
    size: int
    shared: _Evaluation

    def root(self) -> Node:
        """The root node of the tree (a Document when one exists)."""
        return self.shared.tree_root(self.node)

    def with_node(self, node: Node, position: int, size: int) -> "Context":
        return Context(node, position, size, self.shared)


def evaluate(
    expression: str | Expr,
    node: Node,
    registry: Optional[FunctionRegistry] = None,
    variables: Optional[dict[str, XPathValue]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> XPathValue:
    """Evaluate *expression* with *node* as the context node.

    *max_steps* caps the traversal work (raising
    :class:`~repro.errors.XPathLimitExceeded` when exhausted) and
    *deadline* bounds wall-clock time — both optional and off by
    default.
    """
    parsed = parse_xpath(expression) if isinstance(expression, str) else expression
    return evaluate_parsed(parsed, node, registry, variables, max_steps, deadline)


def evaluate_parsed(
    parsed: Expr,
    node: Node,
    registry: Optional[FunctionRegistry] = None,
    variables: Optional[dict[str, XPathValue]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> XPathValue:
    if deadline is not None and deadline.unbounded:
        deadline = None
    shared = _Evaluation(
        DEFAULT_REGISTRY if registry is None else registry,
        dict(variables or {}),
        max_steps=max_steps,
        deadline=deadline,
    )
    context = Context(node, 1, 1, shared)
    # One trace span per top-level evaluation (one per authorization in
    # the labeling pass, one per query); free when tracing is off.
    with span("xpath.eval"):
        return _eval(parsed, context)


def select(
    expression: str | Expr,
    node: Node,
    registry: Optional[FunctionRegistry] = None,
    variables: Optional[dict[str, XPathValue]] = None,
    max_steps: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> list[Node]:
    """Evaluate *expression* and require a node-set result."""
    value = evaluate(expression, node, registry, variables, max_steps, deadline)
    if not isinstance(value, list):
        raise XPathEvaluationError(
            f"expression does not produce a node-set (got {type(value).__name__})"
        )
    return value


def matches(expression: str | Expr, node: Node, candidate: Node) -> bool:
    """Whether *candidate* is in the node-set selected from *node*."""
    return any(selected is candidate for selected in select(expression, node))


# -- AST dispatch -------------------------------------------------------------


def _eval(expr: Expr, context: Context) -> XPathValue:
    if isinstance(expr, LocationPath):
        return _eval_location_path(expr, context)
    if isinstance(expr, BinaryExpr):
        return _eval_binary(expr, context)
    if isinstance(expr, FunctionCall):
        args = [_eval(arg, context) for arg in expr.args]
        return context.shared.registry.call(expr.name, context, args)
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, UnaryMinus):
        return -to_number(_eval(expr.operand, context))
    if isinstance(expr, UnionExpr):
        return _eval_union(expr, context)
    if isinstance(expr, FilterExpr):
        return _eval_filter(expr, context)
    if isinstance(expr, PathExpr):
        return _eval_path_expr(expr, context)
    if isinstance(expr, VariableRef):
        if expr.name not in context.shared.variables:
            raise XPathEvaluationError(f"unbound variable ${expr.name}")
        return context.shared.variables[expr.name]
    raise XPathEvaluationError(f"cannot evaluate {type(expr).__name__}")


def _eval_binary(expr: BinaryExpr, context: Context) -> XPathValue:
    op = expr.op
    if op == "or":
        return to_boolean(_eval(expr.left, context)) or to_boolean(
            _eval(expr.right, context)
        )
    if op == "and":
        return to_boolean(_eval(expr.left, context)) and to_boolean(
            _eval(expr.right, context)
        )
    left = _eval(expr.left, context)
    right = _eval(expr.right, context)
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return compare(op, left, right)
    a = to_number(left)
    b = to_number(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "div":
        try:
            return a / b
        except ZeroDivisionError:
            if a == 0:
                return float("nan")
            return float("inf") if a > 0 else float("-inf")
    if op == "mod":
        try:
            # XPath mod keeps the sign of the dividend (unlike Python %).
            return float(a - b * int(a / b))
        except (ZeroDivisionError, ValueError, OverflowError):
            return float("nan")
    raise XPathEvaluationError(f"unknown operator {op!r}")


def _eval_union(expr: UnionExpr, context: Context) -> list[Node]:
    seen: dict[Node, None] = {}
    for part in expr.parts:
        value = _eval(part, context)
        if not isinstance(value, list):
            raise XPathEvaluationError("union operands must be node-sets")
        for node in value:
            seen.setdefault(node, None)
    return _sorted_nodes(list(seen), context)


def _eval_filter(expr: FilterExpr, context: Context) -> XPathValue:
    value = _eval(expr.primary, context)
    if not expr.predicates:
        return value
    if not isinstance(value, list):
        raise XPathEvaluationError("predicates may only filter node-sets")
    nodes = _sorted_nodes(value, context)
    for predicate in expr.predicates:
        nodes = _apply_predicate(nodes, predicate, context, reverse=False)
    return nodes


def _eval_path_expr(expr: PathExpr, context: Context) -> list[Node]:
    value = _eval_filter(expr.filter, context)
    if not isinstance(value, list):
        raise XPathEvaluationError("a path may only continue from a node-set")
    return _walk_steps(value, expr.tail.steps, context)


def _eval_location_path(path: LocationPath, context: Context) -> list[Node]:
    if path.absolute:
        start: list[Node] = [context.root()]
    else:
        start = [context.node]
    return _walk_steps(start, path.steps, context)


def _walk_steps(start: list[Node], steps: list[Step], context: Context) -> list[Node]:
    current = start
    shared = context.shared
    for step in steps:
        if not current:
            return []
        collected: dict[Node, None] = {}
        multiple_contexts = len(current) > 1
        for context_node in current:
            shared.charge()
            for node in _step_results(step, context_node, context):
                collected.setdefault(node, None)
        result = list(collected)
        if multiple_contexts or step.axis in _REVERSE_AXES:
            result = _sorted_nodes(result, context)
        current = result
    return current


def _step_results(step: Step, context_node: Node, context: Context) -> list[Node]:
    candidates = [
        node
        for node in _axis_nodes(step.axis, context_node)
        if _node_test(step.test, step.axis, node)
    ]
    context.shared.charge(len(candidates))
    reverse = step.axis in _REVERSE_AXES
    for predicate in step.predicates:
        candidates = _apply_predicate(candidates, predicate, context, reverse)
    return candidates


def _apply_predicate(
    nodes: list[Node], predicate: Expr, context: Context, reverse: bool
) -> list[Node]:
    """Filter *nodes* by *predicate*; *nodes* are in axis order already.

    For reverse axes the axis order *is* the position order, so no
    re-sorting happens here; `_walk_steps` restores document order after
    the whole step.
    """
    size = len(nodes)
    kept: list[Node] = []
    shared = context.shared
    for index, node in enumerate(nodes, start=1):
        shared.charge()
        sub_context = context.with_node(node, index, size)
        value = _eval(predicate, sub_context)
        if isinstance(value, float):
            if float(index) == value:
                kept.append(node)
        elif to_boolean(value):
            kept.append(node)
    return kept


def _sorted_nodes(nodes: list[Node], context: Context) -> list[Node]:
    if len(nodes) <= 1:
        return nodes
    order = context.shared.order_index(nodes[0])
    return sorted(nodes, key=lambda node: order.get(node, -1))


# -- axes -----------------------------------------------------------------------


def _axis_nodes(axis: Axis, node: Node) -> Iterator[Node]:
    if axis is Axis.CHILD:
        if isinstance(node, (Element, Document)):
            yield from node.children
        return
    if axis is Axis.ATTRIBUTE:
        if isinstance(node, Element):
            yield from node.attributes.values()
        return
    if axis is Axis.SELF:
        yield node
        return
    if axis is Axis.PARENT:
        if node.parent is not None:
            yield node.parent
        return
    if axis is Axis.DESCENDANT:
        yield from _descendants(node)
        return
    if axis is Axis.DESCENDANT_OR_SELF:
        yield node
        yield from _descendants(node)
        return
    if axis is Axis.ANCESTOR:
        yield from node.ancestors()
        return
    if axis is Axis.ANCESTOR_OR_SELF:
        yield node
        yield from node.ancestors()
        return
    if axis is Axis.FOLLOWING_SIBLING:
        yield from _siblings(node, following=True)
        return
    if axis is Axis.PRECEDING_SIBLING:
        yield from _siblings(node, following=False)
        return
    if axis is Axis.FOLLOWING:
        yield from _following(node)
        return
    if axis is Axis.PRECEDING:
        yield from _preceding(node)
        return
    raise XPathEvaluationError(f"unsupported axis {axis.value!r}")  # pragma: no cover


def _descendants(node: Node) -> Iterator[Node]:
    if isinstance(node, (Element, Document)):
        stack: list[Node] = list(reversed(node.children))
        while stack:
            current = stack.pop()
            yield current
            if isinstance(current, Element):
                stack.extend(reversed(current.children))


def _siblings(node: Node, following: bool) -> Iterator[Node]:
    parent = node.parent
    if isinstance(node, Attribute) or parent is None:
        return
    if not isinstance(parent, (Element, Document)):
        return
    siblings = parent.children
    index = next((i for i, sibling in enumerate(siblings) if sibling is node), None)
    if index is None:
        return
    if following:
        yield from siblings[index + 1 :]
    else:
        # Reverse axis: nearest sibling first.
        yield from reversed(siblings[:index])


def _following(node: Node) -> Iterator[Node]:
    """Everything after *node* in document order, minus descendants
    (spec: following-siblings of self and ancestors, expanded)."""
    if isinstance(node, Attribute):
        element = node.element
        if element is not None:
            # Attributes have no following axis of their own; per common
            # processor behaviour, use the owning element's.
            yield from _descendants(element)
            node = element
        else:
            return
    current: Optional[Node] = node
    while current is not None and not isinstance(current, Document):
        for sibling in _siblings(current, following=True):
            yield sibling
            yield from _descendants(sibling)
        current = current.parent


def _preceding(node: Node) -> Iterator[Node]:
    """Everything before *node* in document order, minus ancestors.

    Yielded in reverse document order (this is a reverse axis)."""
    if isinstance(node, Attribute):
        element = node.element
        if element is None:
            return
        node = element
    current: Optional[Node] = node
    while current is not None and not isinstance(current, Document):
        for sibling in _siblings(current, following=False):
            # Reverse document order within the sibling's subtree:
            # deepest-last content first.
            subtree = [sibling, *_descendants(sibling)]
            yield from reversed(subtree)
        current = current.parent


def _node_test(test: NodeTest, axis: Axis, node: Node) -> bool:
    kind = test.kind
    if kind is NodeTestKind.NODE:
        return True
    if kind is NodeTestKind.TEXT:
        return isinstance(node, Text)
    if kind is NodeTestKind.COMMENT:
        return isinstance(node, Comment)
    # NAME and WILDCARD select the axis's principal node type only.
    if axis is Axis.ATTRIBUTE:
        if not isinstance(node, Attribute):
            return False
    else:
        if not isinstance(node, Element):
            return False
    if kind is NodeTestKind.WILDCARD:
        return True
    return node.name == test.name
