"""The XPath 1.0 value model and type conversions.

Four value types exist: node-sets (Python lists of nodes), booleans,
numbers (Python floats, including NaN/inf) and strings. The conversion
rules implemented here follow sections 3.2-3.5 of the XPath 1.0
recommendation; the comparison rules (including the existential
semantics of node-set comparisons) live in :func:`compare`.
"""

from __future__ import annotations

import math
from typing import Union

from repro.errors import XPathEvaluationError
from repro.xml.nodes import (
    Attribute,
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)

__all__ = [
    "XPathValue",
    "string_value",
    "to_string",
    "to_number",
    "to_boolean",
    "number_to_string",
    "compare",
]

XPathValue = Union[list, bool, float, str]


def string_value(node: Node) -> str:
    """The XPath string-value of *node* (spec section 5)."""
    if isinstance(node, Element):
        return node.text()
    if isinstance(node, Attribute):
        return node.value
    if isinstance(node, Text):
        return node.data
    if isinstance(node, (Comment, ProcessingInstruction)):
        return node.data
    if isinstance(node, Document):
        root = node.root
        return root.text() if root is not None else ""
    raise XPathEvaluationError(f"no string-value for {type(node).__name__}")


def to_string(value: XPathValue) -> str:
    """Convert any XPath value to a string (function ``string()``)."""
    if isinstance(value, list):
        return string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return number_to_string(value)
    return value


def number_to_string(value: float) -> str:
    """Format a number the way XPath does (integers without '.0')."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_number(value: XPathValue) -> float:
    """Convert any XPath value to a number (function ``number()``)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return to_number(to_string(value))
    text = value.strip()
    try:
        return float(text)
    except ValueError:
        return math.nan


def to_boolean(value: XPathValue) -> bool:
    """Convert any XPath value to a boolean (function ``boolean()``)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return bool(value) and not math.isnan(value)
    if isinstance(value, list):
        return bool(value)
    return bool(value)


def compare(
    op: str,
    left: XPathValue,
    right: XPathValue,
    string_value_of=string_value,
) -> bool:
    """Evaluate ``left op right`` with XPath 1.0 comparison semantics.

    Node-set comparisons are existential: a node-set compares true if
    *some* node in it satisfies the comparison. When both operands are
    node-sets, some pair of nodes must satisfy it.

    *string_value_of* is the function yielding a node's string-value;
    the default is the spec's. The virtual-view rewriter
    (:mod:`repro.rewrite`) substitutes one that sees only authorized
    text, keeping every other comparison rule byte-for-byte identical.
    """
    # Booleans win first (spec 3.4): '=' / '!=' against a boolean compare
    # boolean(other side), even for node-sets — so ([] = false()) is true.
    if op in ("=", "!=") and (isinstance(left, bool) or isinstance(right, bool)):
        result = to_boolean(left) == to_boolean(right)
        return result if op == "=" else not result
    left_is_set = isinstance(left, list)
    right_is_set = isinstance(right, list)
    if left_is_set and right_is_set:
        right_strings = {string_value_of(node) for node in right}
        return any(
            _atomic_compare(op, string_value_of(node), candidate)
            for node in left
            for candidate in right_strings
        )
    if left_is_set:
        return any(
            _atomic_compare_mixed(op, string_value_of(node), right) for node in left
        )
    if right_is_set:
        return any(
            _atomic_compare_mixed(_flip(op), string_value_of(node), left)
            for node in right
        )
    return _atomic_compare_scalars(op, left, right)


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _atomic_compare_mixed(op: str, node_string: str, other: XPathValue) -> bool:
    """Compare one node's string-value against a non-node-set value."""
    if isinstance(other, bool):
        # boolean(node-set-member-as-singleton) is true.
        return _relational_or_equality(op, 1.0, 1.0 if other else 0.0)
    if isinstance(other, float):
        return _relational_or_equality(op, to_number(node_string), other)
    if op in ("=", "!="):
        return _atomic_compare(op, node_string, other)
    return _relational_or_equality(op, to_number(node_string), to_number(other))


def _atomic_compare_scalars(op: str, left: XPathValue, right: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = _numbers_equal(to_number(left), to_number(right))
        else:
            result = left == right
        return result if op == "=" else not result
    return _relational_or_equality(op, to_number(left), to_number(right))


def _atomic_compare(op: str, left: str, right: str) -> bool:
    """String-vs-string comparison (both from node string-values)."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    return _relational_or_equality(op, to_number(left), to_number(right))


def _numbers_equal(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    return a == b


def _relational_or_equality(op: str, a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    if op == "=":
        return a == b
    if op == "!=":
        return a != b
    raise XPathEvaluationError(f"unknown comparison operator {op!r}")
