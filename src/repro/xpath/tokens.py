"""Tokenizer for the XPath subset (paper, Section 4).

Produces a flat token stream for the recursive-descent parser. The
lexical rules follow XPath 1.0, including the special disambiguation
rules (section 3.7 of the XPath recommendation):

- a name followed by ``(`` is a function name (except the node-type
  tests ``text``, ``node``, ``comment``, ``processing-instruction``);
- a name followed by ``::`` is an axis name;
- ``*`` is the multiply operator when preceded by an operand, a name
  test otherwise (same for the operator names ``and or div mod``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.errors import XPathSyntaxError
from repro.xml.chars import is_name_char, is_name_start_char

__all__ = ["TokenKind", "Token", "tokenize"]


class TokenKind(Enum):
    NAME = "name"                    # element/attribute/axis/function name
    NUMBER = "number"
    LITERAL = "literal"              # quoted string
    SLASH = "/"
    DOUBLE_SLASH = "//"
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    AXIS_SEP = "::"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    PIPE = "|"
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    DOLLAR = "$"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int  # character offset in the expression, for error messages


_SINGLE_CHAR = {
    "@": TokenKind.AT,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "|": TokenKind.PIPE,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "=": TokenKind.EQ,
    "$": TokenKind.DOLLAR,
}


def tokenize(expression: str) -> list[Token]:
    """Tokenize *expression*, always ending with an END token.

    Raises
    ------
    XPathSyntaxError
        On an unterminated literal or an unexpected character.
    """
    return list(_scan(expression))


def _scan(expression: str) -> Iterator[Token]:
    pos = 0
    length = len(expression)
    while pos < length:
        ch = expression[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch == "/":
            if expression.startswith("//", pos):
                yield Token(TokenKind.DOUBLE_SLASH, "//", pos)
                pos += 2
            else:
                yield Token(TokenKind.SLASH, "/", pos)
                pos += 1
            continue
        if ch == ".":
            if expression.startswith("..", pos):
                yield Token(TokenKind.DOTDOT, "..", pos)
                pos += 2
                continue
            # A dot starting a number, e.g. '.5'
            if pos + 1 < length and expression[pos + 1].isdigit():
                pos = yield from _number(expression, pos)
                continue
            yield Token(TokenKind.DOT, ".", pos)
            pos += 1
            continue
        if ch == ":":
            if expression.startswith("::", pos):
                yield Token(TokenKind.AXIS_SEP, "::", pos)
                pos += 2
                continue
            raise XPathSyntaxError(f"unexpected ':' at offset {pos}")
        if ch == "!":
            if expression.startswith("!=", pos):
                yield Token(TokenKind.NEQ, "!=", pos)
                pos += 2
                continue
            raise XPathSyntaxError(f"'!' must be followed by '=' at offset {pos}")
        if ch == "<":
            if expression.startswith("<=", pos):
                yield Token(TokenKind.LTE, "<=", pos)
                pos += 2
            else:
                yield Token(TokenKind.LT, "<", pos)
                pos += 1
            continue
        if ch == ">":
            if expression.startswith(">=", pos):
                yield Token(TokenKind.GTE, ">=", pos)
                pos += 2
            else:
                yield Token(TokenKind.GT, ">", pos)
                pos += 1
            continue
        if ch in "'\"":
            end = expression.find(ch, pos + 1)
            if end == -1:
                raise XPathSyntaxError(f"unterminated literal at offset {pos}")
            yield Token(TokenKind.LITERAL, expression[pos + 1 : end], pos)
            pos = end + 1
            continue
        if ch.isdigit():
            pos = yield from _number(expression, pos)
            continue
        if ch in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[ch], ch, pos)
            pos += 1
            continue
        if is_name_start_char(ch) and ch != ":":
            start = pos
            pos += 1
            while pos < length:
                current = expression[pos]
                if current == ":":
                    # Allow qualified-looking names like xml:lang as one
                    # token, but never swallow the '::' axis separator.
                    if (
                        not expression.startswith("::", pos)
                        and pos + 1 < length
                        and is_name_start_char(expression[pos + 1])
                        and expression[pos + 1] != ":"
                    ):
                        pos += 1
                        continue
                    break
                if is_name_char(current):
                    pos += 1
                    continue
                break
            yield Token(TokenKind.NAME, expression[start:pos], start)
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r} at offset {pos}")
    yield Token(TokenKind.END, "", length)


def _number(expression: str, pos: int) -> Iterator[Token]:
    """Scan a Number token; returns the new position via StopIteration.

    XPath numbers: digits, optionally one decimal point (no exponent).
    """
    start = pos
    length = len(expression)
    seen_dot = False
    while pos < length:
        ch = expression[pos]
        if ch.isdigit():
            pos += 1
        elif ch == "." and not seen_dot and not expression.startswith("..", pos):
            seen_dot = True
            pos += 1
        else:
            break
    yield Token(TokenKind.NUMBER, expression[start:pos], start)
    return pos
