"""AST node classes for the XPath subset.

Every node knows how to ``unparse()`` itself back to expression syntax;
the property-based tests check that ``parse(unparse(parse(e)))`` is
stable. Evaluation lives in :mod:`repro.xpath.evaluator` (a visitor over
these classes), keeping the AST a passive data structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

__all__ = [
    "Axis",
    "NodeTestKind",
    "NodeTest",
    "Step",
    "LocationPath",
    "FilterExpr",
    "PathExpr",
    "UnionExpr",
    "BinaryExpr",
    "UnaryMinus",
    "FunctionCall",
    "Literal",
    "Number",
    "VariableRef",
    "Expr",
]


class Axis(Enum):
    """The supported XPath axes.

    The paper explicitly uses ``child``, ``descendant`` and ``ancestor``
    (Section 4); the rest of the XPath 1.0 axes needed for realistic
    policies are implemented as well.
    """

    CHILD = "child"
    ATTRIBUTE = "attribute"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"


class NodeTestKind(Enum):
    NAME = "name"          # a specific element/attribute name
    WILDCARD = "*"         # any name
    TEXT = "text()"        # text nodes
    NODE = "node()"        # any node
    COMMENT = "comment()"  # comment nodes


@dataclass(frozen=True)
class NodeTest:
    kind: NodeTestKind
    name: Optional[str] = None

    def unparse(self) -> str:
        if self.kind is NodeTestKind.NAME:
            return self.name or ""
        return self.kind.value


@dataclass
class Step:
    """One location step: ``axis::node-test[predicate]*``."""

    axis: Axis
    test: NodeTest
    predicates: list["Expr"] = field(default_factory=list)

    def unparse(self) -> str:
        if self.axis is Axis.ATTRIBUTE:
            base = f"@{self.test.unparse()}"
        elif self.axis is Axis.CHILD:
            base = self.test.unparse()
        elif self.axis is Axis.SELF and self.test.kind is NodeTestKind.NODE:
            base = "."
        elif self.axis is Axis.PARENT and self.test.kind is NodeTestKind.NODE:
            base = ".."
        else:
            base = f"{self.axis.value}::{self.test.unparse()}"
        for predicate in self.predicates:
            base += f"[{predicate.unparse()}]"
        return base


@dataclass
class LocationPath:
    """A sequence of steps, absolute (``/a/b``) or relative (``a/b``).

    A ``//`` between steps is desugared at parse time into an explicit
    ``descendant-or-self::node()`` step, as the XPath grammar specifies.
    """

    steps: list[Step]
    absolute: bool = False

    def unparse(self) -> str:
        rendered: list[str] = []
        index = 0
        steps = self.steps
        while index < len(steps):
            step = steps[index]
            if (
                step.axis is Axis.DESCENDANT_OR_SELF
                and step.test.kind is NodeTestKind.NODE
                and not step.predicates
                and index + 1 < len(steps)
            ):
                rendered.append("")  # produces '//' when joined
                index += 1
                continue
            rendered.append(step.unparse())
            index += 1
        body = "/".join(rendered)
        if self.absolute:
            return "/" + body
        return body


@dataclass
class FilterExpr:
    """A primary expression with optional predicates: ``f(x)[2]``."""

    primary: "Expr"
    predicates: list["Expr"] = field(default_factory=list)

    def unparse(self) -> str:
        base = self.primary.unparse()
        for predicate in self.predicates:
            base += f"[{predicate.unparse()}]"
        return base


@dataclass
class PathExpr:
    """A filter expression continued by a path: ``f(x)/a//b``."""

    filter: FilterExpr
    tail: LocationPath

    def unparse(self) -> str:
        return f"{self.filter.unparse()}/{self.tail.unparse()}"


@dataclass
class UnionExpr:
    parts: list["Expr"]

    def unparse(self) -> str:
        return " | ".join(part.unparse() for part in self.parts)


@dataclass
class BinaryExpr:
    """Binary operator application (comparisons, arithmetic, and/or)."""

    op: str  # 'or' 'and' '=' '!=' '<' '<=' '>' '>=' '+' '-' '*' 'div' 'mod'
    left: "Expr"
    right: "Expr"

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass
class UnaryMinus:
    operand: "Expr"

    def unparse(self) -> str:
        return f"-{self.operand.unparse()}"


@dataclass
class FunctionCall:
    name: str
    args: list["Expr"] = field(default_factory=list)

    def unparse(self) -> str:
        rendered = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Literal:
    value: str

    def unparse(self) -> str:
        if '"' in self.value:
            return f"'{self.value}'"
        return f'"{self.value}"'


@dataclass(frozen=True)
class Number:
    value: float

    def unparse(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class VariableRef:
    name: str

    def unparse(self) -> str:
        return f"${self.name}"


Expr = Union[
    LocationPath,
    FilterExpr,
    PathExpr,
    UnionExpr,
    BinaryExpr,
    UnaryMinus,
    FunctionCall,
    Literal,
    Number,
    VariableRef,
]
