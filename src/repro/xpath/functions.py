"""The XPath core function library.

A :class:`FunctionRegistry` maps function names to implementations with
arity checking. The default registry implements the XPath 1.0 core
library (minus namespace-related functions, which are out of scope —
see DESIGN.md). Servers can register extra functions on a private
registry without affecting the global one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import XPathEvaluationError
from repro.xml.nodes import Attribute, Element, Node, ProcessingInstruction
from repro.xpath.values import (
    XPathValue,
    string_value,
    to_boolean,
    to_number,
    to_string,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xpath.evaluator import Context

__all__ = ["FunctionRegistry", "default_registry"]

FunctionImpl = Callable[["Context", list[XPathValue]], XPathValue]


@dataclass(frozen=True)
class _Signature:
    impl: FunctionImpl
    min_args: int
    max_args: Optional[int]  # None = unlimited


class FunctionRegistry:
    """Name -> implementation mapping with arity validation."""

    def __init__(self, parent: Optional["FunctionRegistry"] = None) -> None:
        self._functions: dict[str, _Signature] = {}
        self._parent = parent

    def register(
        self,
        name: str,
        impl: FunctionImpl,
        min_args: int = 0,
        max_args: Optional[int] = None,
    ) -> None:
        """Register *impl* under *name* (overrides an inherited one)."""
        self._functions[name] = _Signature(impl, min_args, max_args)

    def lookup(self, name: str) -> Optional[_Signature]:
        found = self._functions.get(name)
        if found is None and self._parent is not None:
            return self._parent.lookup(name)
        return found

    def call(self, name: str, context: "Context", args: list[XPathValue]) -> XPathValue:
        signature = self.lookup(name)
        if signature is None:
            raise XPathEvaluationError(f"unknown function {name}()")
        if len(args) < signature.min_args:
            raise XPathEvaluationError(
                f"{name}() requires at least {signature.min_args} argument(s)"
            )
        if signature.max_args is not None and len(args) > signature.max_args:
            raise XPathEvaluationError(
                f"{name}() accepts at most {signature.max_args} argument(s)"
            )
        return signature.impl(context, args)

    def child(self) -> "FunctionRegistry":
        """A new registry inheriting from this one."""
        return FunctionRegistry(parent=self)


def _require_node_set(name: str, value: XPathValue) -> list[Node]:
    if not isinstance(value, list):
        raise XPathEvaluationError(f"{name}() requires a node-set argument")
    return value


# -- node-set functions ---------------------------------------------------------


def _fn_last(context: "Context", args: list[XPathValue]) -> XPathValue:
    return float(context.size)


def _fn_position(context: "Context", args: list[XPathValue]) -> XPathValue:
    return float(context.position)


def _fn_count(context: "Context", args: list[XPathValue]) -> XPathValue:
    return float(len(_require_node_set("count", args[0])))


def _fn_name(context: "Context", args: list[XPathValue]) -> XPathValue:
    if args:
        nodes = _require_node_set("name", args[0])
        if not nodes:
            return ""
        node = nodes[0]
    else:
        node = context.node
    if isinstance(node, (Element, Attribute)):
        return node.name
    if isinstance(node, ProcessingInstruction):
        return node.target
    return ""


def _fn_id(context: "Context", args: list[XPathValue]) -> XPathValue:
    """id(): looks up elements by ID attribute value.

    When the document carries a DTD, attributes *declared* of type ID
    are authoritative (per element type); without one, the attribute
    named ``id`` is treated as the ID attribute — a common processor
    fallback.
    """
    from repro.xml.nodes import Document
    from repro.xml.traversal import iter_elements

    value = args[0]
    if isinstance(value, list):
        tokens: set[str] = set()
        for node in value:
            tokens.update(string_value(node).split())
    else:
        tokens = set(to_string(value).split())
    root = context.root()
    dtd = root.dtd if isinstance(root, Document) else None
    id_attrs: dict[str, list[str]] = {}
    if dtd is not None:
        from repro.dtd.model import AttributeType

        for decl in dtd.elements.values():
            names = [
                attr.name
                for attr in decl.attributes.values()
                if attr.type is AttributeType.ID
            ]
            if names:
                id_attrs[decl.name] = names

    def element_ids(element) -> list[str]:
        if dtd is not None:
            return [
                value
                for name in id_attrs.get(element.name, ())
                if (value := element.get_attribute(name)) is not None
            ]
        fallback = element.get_attribute("id")
        return [fallback] if fallback is not None else []

    return [
        element
        for element in iter_elements(root)
        if any(identifier in tokens for identifier in element_ids(element))
    ]


# -- string functions ------------------------------------------------------------


def _fn_string(context: "Context", args: list[XPathValue]) -> XPathValue:
    if not args:
        return string_value(context.node)
    return to_string(args[0])


def _fn_concat(context: "Context", args: list[XPathValue]) -> XPathValue:
    return "".join(to_string(arg) for arg in args)


def _fn_starts_with(context: "Context", args: list[XPathValue]) -> XPathValue:
    return to_string(args[0]).startswith(to_string(args[1]))


def _fn_contains(context: "Context", args: list[XPathValue]) -> XPathValue:
    return to_string(args[1]) in to_string(args[0])


def _fn_substring_before(context: "Context", args: list[XPathValue]) -> XPathValue:
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[:index] if index >= 0 else ""


def _fn_substring_after(context: "Context", args: list[XPathValue]) -> XPathValue:
    haystack, needle = to_string(args[0]), to_string(args[1])
    index = haystack.find(needle)
    return haystack[index + len(needle) :] if index >= 0 else ""


def _fn_substring(context: "Context", args: list[XPathValue]) -> XPathValue:
    # XPath substring() has famously quirky rounding/NaN/infinity
    # semantics: positions are compared with round(start) <= p <
    # round(start) + round(length), and NaN anywhere yields "".
    text = to_string(args[0])
    start = to_number(args[1])
    if math.isnan(start):
        return ""
    if math.isinf(start):
        if start > 0:
            return ""  # every position is below +inf's start
        start = -math.inf
    else:
        start = round(start)
    if len(args) >= 3:
        length = to_number(args[2])
        if math.isnan(length):
            return ""
        if math.isinf(length):
            # -inf start + inf length is NaN per IEEE: empty result.
            end = math.nan if math.isinf(start) else math.inf
        else:
            end = start + round(length)  # -inf start stays -inf
        if math.isnan(end):
            return ""
    else:
        end = math.inf
    chars = [
        ch
        for position, ch in enumerate(text, start=1)
        if position >= start and position < end
    ]
    return "".join(chars)


def _fn_string_length(context: "Context", args: list[XPathValue]) -> XPathValue:
    text = to_string(args[0]) if args else string_value(context.node)
    return float(len(text))


def _fn_normalize_space(context: "Context", args: list[XPathValue]) -> XPathValue:
    text = to_string(args[0]) if args else string_value(context.node)
    return " ".join(text.split())


def _fn_translate(context: "Context", args: list[XPathValue]) -> XPathValue:
    text = to_string(args[0])
    source = to_string(args[1])
    target = to_string(args[2])
    mapping: dict[str, Optional[str]] = {}
    for index, ch in enumerate(source):
        if ch not in mapping:
            mapping[ch] = target[index] if index < len(target) else None
    out: list[str] = []
    for ch in text:
        if ch in mapping:
            replacement = mapping[ch]
            if replacement is not None:
                out.append(replacement)
        else:
            out.append(ch)
    return "".join(out)


# -- boolean functions --------------------------------------------------------------


def _fn_boolean(context: "Context", args: list[XPathValue]) -> XPathValue:
    return to_boolean(args[0])


def _fn_not(context: "Context", args: list[XPathValue]) -> XPathValue:
    return not to_boolean(args[0])


def _fn_true(context: "Context", args: list[XPathValue]) -> XPathValue:
    return True


def _fn_false(context: "Context", args: list[XPathValue]) -> XPathValue:
    return False


def _fn_lang(context: "Context", args: list[XPathValue]) -> XPathValue:
    """lang(): tests the xml:lang in scope for the context node."""
    wanted = to_string(args[0]).lower()
    node: Optional[Node] = context.node
    while node is not None:
        if isinstance(node, Element):
            lang = node.get_attribute("xml:lang")
            if lang is not None:
                lang = lang.lower()
                return lang == wanted or lang.startswith(wanted + "-")
        node = node.parent
    return False


# -- number functions -----------------------------------------------------------------


def _fn_number(context: "Context", args: list[XPathValue]) -> XPathValue:
    if not args:
        return to_number(string_value(context.node))
    return to_number(args[0])


def _fn_sum(context: "Context", args: list[XPathValue]) -> XPathValue:
    nodes = _require_node_set("sum", args[0])
    return float(sum(to_number(string_value(node)) for node in nodes))


def _fn_floor(context: "Context", args: list[XPathValue]) -> XPathValue:
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) else float(math.floor(value))


def _fn_ceiling(context: "Context", args: list[XPathValue]) -> XPathValue:
    value = to_number(args[0])
    return value if math.isnan(value) or math.isinf(value) else float(math.ceil(value))


def _fn_round(context: "Context", args: list[XPathValue]) -> XPathValue:
    value = to_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    # XPath rounds halves toward positive infinity.
    return float(math.floor(value + 0.5))


def default_registry() -> FunctionRegistry:
    """Build a registry with the complete core function library."""
    registry = FunctionRegistry()
    registry.register("last", _fn_last, 0, 0)
    registry.register("position", _fn_position, 0, 0)
    registry.register("count", _fn_count, 1, 1)
    registry.register("id", _fn_id, 1, 1)
    registry.register("name", _fn_name, 0, 1)
    registry.register("local-name", _fn_name, 0, 1)  # no namespaces: same
    registry.register("string", _fn_string, 0, 1)
    registry.register("concat", _fn_concat, 2, None)
    registry.register("starts-with", _fn_starts_with, 2, 2)
    registry.register("contains", _fn_contains, 2, 2)
    registry.register("substring-before", _fn_substring_before, 2, 2)
    registry.register("substring-after", _fn_substring_after, 2, 2)
    registry.register("substring", _fn_substring, 2, 3)
    registry.register("string-length", _fn_string_length, 0, 1)
    registry.register("normalize-space", _fn_normalize_space, 0, 1)
    registry.register("translate", _fn_translate, 3, 3)
    registry.register("boolean", _fn_boolean, 1, 1)
    registry.register("not", _fn_not, 1, 1)
    registry.register("true", _fn_true, 0, 0)
    registry.register("false", _fn_false, 0, 0)
    registry.register("lang", _fn_lang, 1, 1)
    registry.register("number", _fn_number, 0, 1)
    registry.register("sum", _fn_sum, 1, 1)
    registry.register("floor", _fn_floor, 1, 1)
    registry.register("ceiling", _fn_ceiling, 1, 1)
    registry.register("round", _fn_round, 1, 1)
    return registry


#: Shared default registry; treat as read-only (use ``child()`` to extend).
DEFAULT_REGISTRY = default_registry()
