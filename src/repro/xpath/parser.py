"""Recursive-descent parser for the XPath subset.

Implements the XPath 1.0 expression grammar over the token stream from
:mod:`repro.xpath.tokens`, producing the AST of :mod:`repro.xpath.ast`.
Abbreviations are desugared during parsing:

- ``//`` becomes a ``descendant-or-self::node()`` step,
- ``@name`` becomes ``attribute::name``,
- ``.`` becomes ``self::node()`` and ``..`` becomes ``parent::node()``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BinaryExpr,
    Expr,
    FilterExpr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Number,
    PathExpr,
    Step,
    UnaryMinus,
    UnionExpr,
    VariableRef,
)
from repro.xpath.tokens import Token, TokenKind, tokenize

__all__ = ["parse_xpath", "XPathParser"]

_AXES = {axis.value: axis for axis in Axis}
_NODE_TYPE_TESTS = {
    "text": NodeTestKind.TEXT,
    "node": NodeTestKind.NODE,
    "comment": NodeTestKind.COMMENT,
}


def parse_xpath(expression: str) -> Expr:
    """Parse *expression* into an AST.

    Raises
    ------
    XPathSyntaxError
        On any lexical or grammatical problem, with the character offset
        of the failure.
    """
    if not expression or not expression.strip():
        raise XPathSyntaxError("empty path expression")
    return XPathParser(expression).parse()


class XPathParser:
    def __init__(self, expression: str) -> None:
        self._expression = expression
        self._tokens = tokenize(expression)
        self._index = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek_kind(self, offset: int = 0) -> TokenKind:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index].kind

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._current.kind is kind:
            return self._advance()
        return None

    def _expect(self, kind: TokenKind) -> Token:
        token = self._accept(kind)
        if token is None:
            self._fail(f"expected {kind.value!r}")
        return token

    def _fail(self, message: str) -> None:
        token = self._current
        raise XPathSyntaxError(
            f"{message}, found {token.value!r} at offset {token.position} "
            f"in {self._expression!r}"
        )

    # -- entry ---------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self._parse_or()
        if self._current.kind is not TokenKind.END:
            self._fail("unexpected trailing input")
        return expr

    # -- expression levels ------------------------------------------------------

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at_operator_name("or"):
            self._advance()
            left = BinaryExpr("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_equality()
        while self._at_operator_name("and"):
            self._advance()
            left = BinaryExpr("and", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expr:
        left = self._parse_relational()
        while self._current.kind in (TokenKind.EQ, TokenKind.NEQ):
            op = self._advance().value
            left = BinaryExpr(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        left = self._parse_additive()
        while self._current.kind in (
            TokenKind.LT,
            TokenKind.LTE,
            TokenKind.GT,
            TokenKind.GTE,
        ):
            op = self._advance().value
            left = BinaryExpr(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._current.kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance().value
            left = BinaryExpr(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self._current.kind is TokenKind.STAR:
                self._advance()
                left = BinaryExpr("*", left, self._parse_unary())
            elif self._at_operator_name("div") or self._at_operator_name("mod"):
                op = self._advance().value
                left = BinaryExpr(op, left, self._parse_unary())
            else:
                return left

    def _at_operator_name(self, name: str) -> bool:
        """An operator NAME only counts when an operand precedes it
        (XPath disambiguation rule); since we only call these helpers in
        operator position, checking the token is sufficient."""
        token = self._current
        return token.kind is TokenKind.NAME and token.value == name

    def _parse_unary(self) -> Expr:
        if self._accept(TokenKind.MINUS):
            return UnaryMinus(self._parse_unary())
        return self._parse_union()

    def _parse_union(self) -> Expr:
        first = self._parse_path()
        if self._current.kind is not TokenKind.PIPE:
            return first
        parts = [first]
        while self._accept(TokenKind.PIPE):
            parts.append(self._parse_path())
        return UnionExpr(parts)

    # -- paths -------------------------------------------------------------------

    def _parse_path(self) -> Expr:
        kind = self._current.kind
        if kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
            return self._parse_absolute_path()
        if self._starts_filter_expr():
            filter_expr = self._parse_filter()
            if self._current.kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
                tail = self._parse_relative_path(
                    leading_double=self._current.kind is TokenKind.DOUBLE_SLASH,
                    consume_leading=True,
                )
                return PathExpr(filter_expr, tail)
            if not filter_expr.predicates:
                return filter_expr.primary
            return filter_expr
        return self._parse_relative_path(leading_double=False, consume_leading=False)

    def _starts_filter_expr(self) -> bool:
        kind = self._current.kind
        if kind in (TokenKind.LITERAL, TokenKind.NUMBER, TokenKind.LPAREN, TokenKind.DOLLAR):
            return True
        if kind is TokenKind.NAME and self._peek_kind(1) is TokenKind.LPAREN:
            # A name before '(' is a function call unless it is a node-type
            # test, which belongs to a location step.
            return self._current.value not in _NODE_TYPE_TESTS
        return False

    def _parse_absolute_path(self) -> LocationPath:
        if self._accept(TokenKind.DOUBLE_SLASH):
            steps = [_descendant_or_self_step()]
            steps.extend(
                self._parse_relative_path(
                    leading_double=False, consume_leading=False
                ).steps
            )
            return LocationPath(steps, absolute=True)
        self._expect(TokenKind.SLASH)
        if self._at_step_start():
            tail = self._parse_relative_path(leading_double=False, consume_leading=False)
            return LocationPath(tail.steps, absolute=True)
        return LocationPath([], absolute=True)  # bare '/' = the root

    def _parse_relative_path(
        self, leading_double: bool, consume_leading: bool
    ) -> LocationPath:
        steps: list[Step] = []
        if consume_leading:
            self._advance()  # the '/' or '//' that continued a filter expr
        if leading_double:
            steps.append(_descendant_or_self_step())
        steps.append(self._parse_step())
        while self._current.kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
            if self._advance().kind is TokenKind.DOUBLE_SLASH:
                steps.append(_descendant_or_self_step())
            steps.append(self._parse_step())
        return LocationPath(steps, absolute=False)

    def _at_step_start(self) -> bool:
        kind = self._current.kind
        return kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
        )

    def _parse_step(self) -> Step:
        if self._accept(TokenKind.DOT):
            return Step(Axis.SELF, NodeTest(NodeTestKind.NODE))
        if self._accept(TokenKind.DOTDOT):
            return Step(Axis.PARENT, NodeTest(NodeTestKind.NODE))
        axis = Axis.CHILD
        if self._accept(TokenKind.AT):
            axis = Axis.ATTRIBUTE
        elif (
            self._current.kind is TokenKind.NAME
            and self._peek_kind(1) is TokenKind.AXIS_SEP
        ):
            axis_name = self._advance().value
            self._advance()  # '::'
            resolved = _AXES.get(axis_name)
            if resolved is None:
                self._fail(f"unknown axis {axis_name!r}")
                raise AssertionError  # unreachable
            axis = resolved
            if self._accept(TokenKind.AT):
                # 'child::@x' is not grammatical; '@' only abbreviates.
                self._fail("'@' may not follow an explicit axis")
        test = self._parse_node_test(axis)
        step = Step(axis, test)
        while self._accept(TokenKind.LBRACKET):
            step.predicates.append(self._parse_or())
            self._expect(TokenKind.RBRACKET)
        return step

    def _parse_node_test(self, axis: Axis) -> NodeTest:
        if self._accept(TokenKind.STAR):
            return NodeTest(NodeTestKind.WILDCARD)
        token = self._expect(TokenKind.NAME)
        if self._current.kind is TokenKind.LPAREN:
            kind = _NODE_TYPE_TESTS.get(token.value)
            if kind is None:
                self._fail(f"unknown node type {token.value!r}")
                raise AssertionError  # unreachable
            self._advance()
            self._expect(TokenKind.RPAREN)
            return NodeTest(kind)
        return NodeTest(NodeTestKind.NAME, token.value)

    # -- filter expressions -----------------------------------------------------

    def _parse_filter(self) -> FilterExpr:
        primary = self._parse_primary()
        filter_expr = FilterExpr(primary)
        while self._accept(TokenKind.LBRACKET):
            filter_expr.predicates.append(self._parse_or())
            self._expect(TokenKind.RBRACKET)
        return filter_expr

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind is TokenKind.LITERAL:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Number(float(token.value))
        if token.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            name = self._expect(TokenKind.NAME)
            return VariableRef(name.value)
        if token.kind is TokenKind.NAME and self._peek_kind(1) is TokenKind.LPAREN:
            return self._parse_function_call()
        self._fail("expected a primary expression")
        raise AssertionError  # unreachable

    def _parse_function_call(self) -> FunctionCall:
        name = self._advance().value
        self._expect(TokenKind.LPAREN)
        args: list[Expr] = []
        if self._current.kind is not TokenKind.RPAREN:
            args.append(self._parse_or())
            while self._accept(TokenKind.COMMA):
                args.append(self._parse_or())
        self._expect(TokenKind.RPAREN)
        return FunctionCall(name, args)


def _descendant_or_self_step() -> Step:
    return Step(Axis.DESCENDANT_OR_SELF, NodeTest(NodeTestKind.NODE))
