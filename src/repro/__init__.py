"""repro — a reproduction of *Securing XML Documents* (EDBT 2000).

An access-control processor for XML documents implementing the model of
Damiani, De Capitani di Vimercati, Paraboschi and Samarati, together
with every substrate it needs, from scratch: an XML parser and DOM-like
node model, a DTD engine (validation, loosening, instance generation),
an XPath 1.0 subset engine, the subject hierarchy (users, groups,
location patterns), the authorization model with XACL markup, the
compute-view tree-labeling algorithm, and a server facade.

Quickstart::

    from repro import SecureXMLServer, Requester, Authorization, AccessRequest

    server = SecureXMLServer()
    server.add_group("Staff")
    server.add_user("alice", groups=["Staff"])
    server.publish_document("http://example.org/notes.xml",
                            "<notes><note owner='alice'>hi</note></notes>")
    server.grant(Authorization.build(
        ("Staff", "*", "*"), "http://example.org/notes.xml", "+", "R"))
    response = server.serve(AccessRequest(
        Requester("alice", "10.0.0.1", "pc.example.org"),
        "http://example.org/notes.xml"))
    print(response.xml_text)

See ``examples/`` for complete scenarios including the paper's own
laboratory example, and DESIGN.md / EXPERIMENTS.md for the reproduction
methodology.
"""

from repro.authz import (
    AuthObject,
    AuthType,
    Authorization,
    AuthorizationStore,
    Sign,
    parse_xacl,
    serialize_xacl,
)
from repro.core import (
    Label,
    SecurityProcessor,
    ViewResult,
    compute_view,
    compute_view_from_auths,
    compute_view_naive,
)
from repro.dtd import DTD, generate_instance, loosen, parse_dtd, validate
from repro.errors import (
    AuthorizationError,
    DTDSyntaxError,
    DeadlineExceeded,
    LimitExceeded,
    ParseError,
    PatternError,
    PolicyError,
    ReproError,
    RepositoryError,
    ResourceError,
    SubjectError,
    ValidationError,
    XACLError,
    XMLSyntaxError,
    XPathEvaluationError,
    XPathSyntaxError,
)
from repro.limits import DEFAULT_LIMITS, Deadline, ResourceLimits
from repro.obs import METRICS, MetricsRegistry, Tracer, tracing
from repro.server import (
    AccessLimitExceeded,
    AccessRequest,
    AccessResponse,
    AuditLog,
    DeleteNode,
    InsertChild,
    PolicyConfig,
    QueryRequest,
    RemoveAttribute,
    Repository,
    SecureXMLServer,
    SetAttribute,
    SetText,
    UpdateDenied,
    UpdateRequest,
)
from repro.subjects import (
    Directory,
    IPPattern,
    Requester,
    SubjectHierarchy,
    SubjectSpec,
    SymbolicPattern,
)
from repro.xml import (
    Document,
    E,
    Element,
    new_document,
    parse_document,
    pretty,
    serialize,
)
from repro.xpath import compile_xpath, evaluate, parse_xpath, select

__version__ = "1.0.0"

__all__ = [
    "AccessLimitExceeded",
    "AccessRequest",
    "AccessResponse",
    "AuditLog",
    "AuthObject",
    "AuthType",
    "Authorization",
    "AuthorizationError",
    "AuthorizationStore",
    "DEFAULT_LIMITS",
    "DTD",
    "DTDSyntaxError",
    "Deadline",
    "DeadlineExceeded",
    "DeleteNode",
    "Directory",
    "Document",
    "E",
    "Element",
    "IPPattern",
    "InsertChild",
    "Label",
    "LimitExceeded",
    "METRICS",
    "MetricsRegistry",
    "ParseError",
    "PatternError",
    "PolicyConfig",
    "PolicyError",
    "QueryRequest",
    "RemoveAttribute",
    "Repository",
    "RepositoryError",
    "ReproError",
    "Requester",
    "ResourceError",
    "ResourceLimits",
    "SecureXMLServer",
    "SecurityProcessor",
    "SetAttribute",
    "SetText",
    "Sign",
    "SubjectError",
    "SubjectHierarchy",
    "SubjectSpec",
    "SymbolicPattern",
    "Tracer",
    "UpdateDenied",
    "UpdateRequest",
    "ValidationError",
    "ViewResult",
    "XACLError",
    "XMLSyntaxError",
    "XPathEvaluationError",
    "XPathSyntaxError",
    "compile_xpath",
    "compute_view",
    "compute_view_from_auths",
    "compute_view_naive",
    "evaluate",
    "generate_instance",
    "loosen",
    "new_document",
    "parse_document",
    "parse_dtd",
    "parse_xacl",
    "parse_xpath",
    "pretty",
    "select",
    "serialize",
    "serialize_xacl",
    "tracing",
    "validate",
]
