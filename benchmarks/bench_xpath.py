"""C5 — evaluation cost of the paper's path-expression shapes (Section 4).

One benchmark per representative construct: rooted child paths, ``//``
descents, attribute conditions, positional predicates, upward axes, and
compiled-expression reuse (the authorization engine's access pattern).
"""

import pytest

from repro.xpath.compile import CompiledXPath
from repro.xpath.evaluator import select
from repro.xpath.parser import parse_xpath

from bench_common import document_of_size

NODES = 4000

EXPRESSIONS = {
    "child_path": "/archive/section/record",
    "descendant": "//title",
    "condition": '//section[./@kind="private"]',
    "attribute": "//record/@id",
    "positional": "//section[2]",
    "ancestor": "//title/ancestor::section",
    "union": "//title | //body",
    "function": '//section[contains(@id, "1")]',
}


@pytest.mark.parametrize("shape", sorted(EXPRESSIONS))
def test_xpath_evaluation(benchmark, shape):
    document = document_of_size(NODES)
    expression = EXPRESSIONS[shape]
    result = benchmark(select, expression, document)
    assert isinstance(result, list)


def test_xpath_parse_only(benchmark):
    expression = '/laboratory/project[./@name = "Access Models"]/paper[./@type = "internal"]'
    ast = benchmark(parse_xpath, expression)
    assert ast is not None


def test_compiled_reuse(benchmark):
    """The labeling access pattern: same compiled expression, same root —
    the per-root cache makes repeats O(1)."""
    document = document_of_size(NODES)
    compiled = CompiledXPath("//title")
    compiled.select(document)  # warm

    def reuse():
        return compiled.select(document)

    result = benchmark(reuse)
    assert result
