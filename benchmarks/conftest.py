"""Benchmark collection configuration.

The shared workload builders live in ``bench_common.py`` (imported by
each bench module); pytest inserts this directory on ``sys.path`` since
benchmarks are not a package.
"""
