"""C4 — propagation cost vs tree shape at constant node count.

The preorder labeling pass should be shape-insensitive (one visit per
node regardless of depth), while the naive baseline's ancestor walks
make deep chains pathological: on a depth-N chain the baseline is
O(N^2). Expected shape: compute-view roughly equal on deep and wide
trees; the baseline blows up on the deep one.
"""

import pytest

from repro.core.baseline import compute_view_naive
from repro.core.view import compute_view_from_auths

from bench_common import deep_doc, hierarchy, public_auth, wide_doc

SIZE = 1500

AUTHS = [
    public_auth("//level[./@n='3']", "+", "R"),
    public_auth("//item", "+", "R"),
    public_auth("//level[./@n='700']", "-", "R"),
]


def test_compute_view_deep(benchmark):
    document = deep_doc(SIZE)
    result = benchmark(compute_view_from_auths, document, AUTHS, [], hierarchy())
    assert result.total_nodes > 0


def test_compute_view_wide(benchmark):
    document = wide_doc(SIZE)
    result = benchmark(compute_view_from_auths, document, AUTHS, [], hierarchy())
    assert result.total_nodes > 0


def test_naive_deep(benchmark):
    document = deep_doc(SIZE)
    result = benchmark(compute_view_naive, document, AUTHS, [], hierarchy())
    assert result.total_nodes > 0


def test_naive_wide(benchmark):
    document = wide_doc(SIZE)
    result = benchmark(compute_view_naive, document, AUTHS, [], hierarchy())
    assert result.total_nodes > 0
