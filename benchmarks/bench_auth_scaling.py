"""C2 — view-computation latency vs number of authorizations.

initial_label evaluates every applicable authorization's path
expression once against the document (Section 6.1, steps 1-2); cost
should grow roughly linearly with |Auth| at fixed document size, for
both the propagation algorithm and the baseline.
"""

import pytest

from repro.core.baseline import compute_view_naive
from repro.core.view import compute_view_from_auths

from bench_common import auth_set, document_of_size, hierarchy

NODES = 2000
AUTH_COUNTS = [4, 16, 64, 256]


@pytest.mark.parametrize("auths", AUTH_COUNTS)
def test_compute_view_auth_scaling(benchmark, auths):
    document = document_of_size(NODES)
    instance, schema = auth_set(auths)
    result = benchmark(
        compute_view_from_auths, document, instance, schema, hierarchy()
    )
    assert result.total_nodes > 0


@pytest.mark.parametrize("auths", [4, 64])
def test_naive_auth_scaling(benchmark, auths):
    document = document_of_size(NODES)
    instance, schema = auth_set(auths)
    result = benchmark(
        compute_view_naive, document, instance, schema, hierarchy()
    )
    assert result.total_nodes > 0
