"""C1 — view-computation latency vs document size.

Reproduces the paper's central performance claim (Sections 1, 6): the
recursive propagation algorithm "ensures fast on-line computation" of
per-requester views. The series compares the single-pass compute-view
against the naive per-node baseline across document sizes; the expected
shape is compute-view ~linear in nodes, baseline superlinear (nodes x
depth ancestor walks).
"""

import pytest

from repro.core.view import compute_view_from_auths
from repro.core.baseline import compute_view_naive

from bench_common import auth_set, document_of_size, hierarchy

SIZES = [500, 2000, 8000]
AUTHS = 24


@pytest.mark.parametrize("nodes", SIZES)
def test_compute_view_scaling(benchmark, nodes):
    document = document_of_size(nodes)
    instance, schema = auth_set(AUTHS)
    result = benchmark(
        compute_view_from_auths, document, instance, schema, hierarchy()
    )
    assert result.total_nodes > 0


@pytest.mark.parametrize("nodes", SIZES)
def test_naive_baseline_scaling(benchmark, nodes):
    document = document_of_size(nodes)
    instance, schema = auth_set(AUTHS)
    result = benchmark(
        compute_view_naive, document, instance, schema, hierarchy()
    )
    assert result.total_nodes > 0
