#!/usr/bin/env python3
"""S1 — streaming backend vs the DOM pipeline.

Measures, per document size, through the server facade:

- median serve latency and throughput (input characters per second)
  for ``serve`` (DOM) and ``serve_stream`` (streaming),
- peak Python-heap allocation of one request (``tracemalloc``), which
  is where the architectural difference shows: the DOM path peaks
  proportionally to the document, the streaming path to the *view
  buffer* (open-element chain + held-back markup),
- the streaming engine's own stats: events processed and peak
  pending-buffer depth/bytes,

and demonstrates the bounded-memory acceptance criterion: under a
``max_node_count`` budget 10× smaller than the document, the DOM path
fails with a typed guard trip while the streaming path still serves the
full view.

Writes the machine-readable results to ``BENCH_PR3.json`` at the
repository root.

Run:  python benchmarks/bench_stream.py [--fast|--smoke]
"""

from __future__ import annotations

import dataclasses
import json
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, "benchmarks")

from bench_common import URI, auth_set  # noqa: E402

from repro.limits import ResourceLimits  # noqa: E402
from repro.server.request import AccessRequest  # noqa: E402
from repro.server.service import SecureXMLServer  # noqa: E402
from repro.subjects.hierarchy import Requester  # noqa: E402
from repro.workloads.generator import synthetic_document  # noqa: E402
from repro.xml.serializer import serialize  # noqa: E402

FAST = "--fast" in sys.argv or "--smoke" in sys.argv
ROUNDS = 3 if FAST else 9
SIZES = [2_000, 10_000] if FAST else [2_000, 10_000, 50_000, 150_000]
AUTHS = 16

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"


def requester() -> Requester:
    return Requester("anyone", "10.0.0.1", "bench.example.com")


def build_server(nodes: int) -> tuple[SecureXMLServer, int]:
    document = synthetic_document(nodes, uri=URI)
    text = serialize(document)
    instance, schema = auth_set(AUTHS)
    server = SecureXMLServer()
    # Text + deferred parse: the streaming path reads the stored text
    # directly; the DOM path parses it per request-cache rules.
    server.publish_document(URI, text, defer_parse=True)
    for authorization in instance:
        server.grant(authorization)
    return server, len(text)


def median_ms(fn, *args, **kwargs) -> float:
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        response = fn(*args, **kwargs)
        samples.append((time.perf_counter() - start) * 1000)
        assert response.ok, response.error
    return statistics.median(samples)


def peak_kib(nodes: int, backend: str) -> float:
    """Peak heap of one *cold* request (fresh server, deferred parse).

    Cold measures what matters architecturally: the DOM path's first
    request parses and materializes the whole tree, the streaming path
    never does — its peak is the held-back markup, the open-element
    chain and the collected response text.
    """
    server, _ = build_server(nodes)
    request = AccessRequest(requester(), URI)
    fn = server.serve if backend == "dom" else server.serve_stream
    tracemalloc.start()
    try:
        response = fn(request)
        assert response.ok, response.error
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024


def bench_size(nodes: int) -> dict:
    server, chars = build_server(nodes)
    request = AccessRequest(requester(), URI)
    # Warm up once so the lazy first parse doesn't skew either side
    # (the server runs without a view cache, so every serve recomputes).
    server.serve(request)

    def serve_dom():
        return server.serve(request)

    def serve_stream():
        return server.serve_stream(request)

    dom_ms = median_ms(serve_dom)
    stream_ms = median_ms(serve_stream)
    dom_peak = peak_kib(nodes, "dom")
    stream_peak = peak_kib(nodes, "stream")
    response = server.serve_stream(request)
    events = server.metrics.counter("stream_events_total").value
    buffer_depth = server.metrics.histogram("stream_peak_buffer_depth")
    return {
        "nodes": nodes,
        "input_chars": chars,
        "visible_nodes": response.visible_nodes,
        "total_nodes": response.total_nodes,
        "dom": {
            "p50_ms": round(dom_ms, 3),
            "throughput_mchars_s": round(chars / dom_ms / 1000, 3),
            "peak_heap_kib": round(dom_peak, 1),
        },
        "stream": {
            "p50_ms": round(stream_ms, 3),
            "throughput_mchars_s": round(chars / stream_ms / 1000, 3),
            "peak_heap_kib": round(stream_peak, 1),
        },
        "stream_stats": {
            "events_per_request": int(events) // (ROUNDS + 1),
            "peak_buffer_depth_p95": buffer_depth.quantile(0.95),
        },
    }


def bounded_memory_demo() -> dict:
    """DOM trips its node budget; streaming serves the same document."""
    nodes = 40_000
    server, chars = build_server(nodes)
    request = AccessRequest(requester(), URI)
    budget = server.serve_stream(request).total_nodes // 10
    limits = dataclasses.replace(
        ResourceLimits.unlimited(), max_node_count=budget
    )
    dom = server.serve(request, limits=limits)
    stream = server.serve_stream(request, limits=limits)
    assert not dom.ok and dom.error.limit == "max_node_count"
    assert stream.ok
    return {
        "document_nodes": stream.total_nodes,
        "max_node_count_budget": budget,
        "dom_outcome": f"failed: {dom.error.limit}",
        "stream_outcome": (
            f"served {stream.visible_nodes}/{stream.total_nodes} nodes"
        ),
        "input_chars": chars,
    }


def main() -> None:
    print("# S1 — streaming vs DOM enforcement")
    print(f"rounds per measurement: {ROUNDS}")
    print()
    print(
        "| nodes | DOM p50 (ms) | stream p50 (ms) | DOM peak (KiB) "
        "| stream peak (KiB) |"
    )
    print("|---|---|---|---|---|")
    results = []
    for nodes in SIZES:
        row = bench_size(nodes)
        results.append(row)
        print(
            f"| {nodes} | {row['dom']['p50_ms']} "
            f"| {row['stream']['p50_ms']} "
            f"| {row['dom']['peak_heap_kib']} "
            f"| {row['stream']['peak_heap_kib']} |"
        )
    demo = bounded_memory_demo()
    print()
    print(f"bounded-memory demo: DOM {demo['dom_outcome']}, "
          f"stream {demo['stream_outcome']} "
          f"(budget {demo['max_node_count_budget']} nodes)")
    BENCH_JSON.write_text(
        json.dumps(
            {
                "source": "benchmarks/bench_stream.py (section S1)",
                "fast": FAST,
                "sizes": results,
                "bounded_memory": demo,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
