"""Shared benchmark fixtures and workload builders.

Workloads are built once per size (module-level cache) so the benchmark
timer measures view computation, not workload construction. Every
experiment id (C1..C7, A1, A2) from DESIGN.md's index maps to one
``bench_*.py`` file here.
"""

from __future__ import annotations

from functools import lru_cache

from repro.authz.authorization import AuthObject, AuthType, Authorization, Sign
from repro.subjects.hierarchy import SubjectHierarchy, SubjectSpec
from repro.workloads.generator import (
    deep_document,
    synthetic_authorizations,
    synthetic_document,
    wide_document,
)

URI = "http://bench.example/doc.xml"
DTD_URI = "http://bench.example/doc.dtd"


@lru_cache(maxsize=32)
def document_of_size(nodes: int, fanout: int = 4, seed: int = 0):
    return synthetic_document(nodes, fanout=fanout, seed=seed, uri=URI)


@lru_cache(maxsize=32)
def auth_set(count: int, seed: int = 0, schema_share: float = 0.25):
    """(instance, schema) authorization lists over the 2000-node doc's
    vocabulary; path shapes are size-independent so the same set is
    reusable across document sizes."""
    document = document_of_size(2000)
    return synthetic_authorizations(
        document,
        count,
        seed=seed,
        dtd_uri=DTD_URI,
        schema_share=schema_share,
    )


@lru_cache(maxsize=4)
def hierarchy():
    return SubjectHierarchy()


def public_auth(path: str, sign: str = "+", auth_type: str = "R", uri: str = URI):
    return Authorization(
        SubjectSpec.parse("Public"),
        AuthObject(uri, path),
        "read",
        Sign(sign),
        AuthType(auth_type),
    )


@lru_cache(maxsize=8)
def deep_doc(depth: int):
    return deep_document(depth, uri=URI)


@lru_cache(maxsize=8)
def wide_doc(width: int):
    return wide_document(width, uri=URI)
