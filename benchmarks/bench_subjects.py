"""C6 — subject hierarchy costs (paper, Section 3).

Requester-dominance checks (``rq ≤ subject(a)``) run once per
authorization per request; the most-specific-subject filter runs per
conflicting node. Both should be microseconds-cheap and independent of
document size.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.store import AuthorizationStore
from repro.subjects.hierarchy import Requester, SubjectHierarchy, SubjectSpec
from repro.workloads.generator import populate_directory


def build_store(groups: int, auths: int):
    store = AuthorizationStore()
    users, group_names = populate_directory(
        store.hierarchy.directory, users=50, groups=groups, nesting=groups - 1
    )
    for index in range(auths):
        subject = SubjectSpec.parse(group_names[index % len(group_names)])
        store.add(
            Authorization.build(subject, f"http://x/d.xml://n{index}", "+", "R")
        )
    return store, users


@pytest.mark.parametrize("groups", [4, 16])
def test_applicable_filtering(benchmark, groups):
    store, users = build_store(groups, auths=256)
    requester = Requester(users[0], "150.1.2.3", "host0.lab.com")
    result = benchmark(store.applicable, requester, "http://x/d.xml")
    assert isinstance(result, list)


def test_dominance_check(benchmark):
    hierarchy = SubjectHierarchy()
    populate_directory(hierarchy.directory, users=50, groups=8, nesting=7)
    lower = SubjectSpec.parse("user3", "150.100.30.8", "pc.lab.com")
    upper = SubjectSpec.parse("group0", "150.100.*", "*.lab.com")
    result = benchmark(hierarchy.dominates, lower, upper)
    assert isinstance(result, bool)


def test_most_specific_filter(benchmark):
    hierarchy = SubjectHierarchy()
    populate_directory(hierarchy.directory, users=20, groups=8, nesting=7)
    specs = [SubjectSpec.parse(f"group{i}") for i in range(8)]
    specs += [SubjectSpec.parse(f"user{i}") for i in range(10)]
    result = benchmark(hierarchy.most_specific, specs)
    assert result


def test_group_closure(benchmark):
    from repro.subjects.users import Directory

    directory = Directory()
    populate_directory(directory, users=200, groups=12, nesting=11)

    def closure():
        # Invalidate-free repeated lookups hit the memo; measure a mix.
        return [directory.expanded_groups(f"user{i}") for i in range(0, 200, 7)]

    result = benchmark(closure)
    assert result
