"""C3 — per-step cost of the four-step processor (paper, Section 7).

One benchmark per pipeline step (parse / label / transform / unparse)
plus the full cycle, on the same workload. Expected shape: parsing
dominates; labeling and pruning — the paper's contribution — are a
fraction of total request cost, supporting the "straightforward
server-side security processor" claim.
"""

import pytest

from repro.core.labeling import TreeLabeler
from repro.core.processor import SecurityProcessor
from repro.core.prune import build_view
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

from bench_common import URI, auth_set, document_of_size, hierarchy

NODES = 4000


def _workload():
    document = document_of_size(NODES)
    instance, schema = auth_set(24)
    return document, instance, schema


def test_step1_parse(benchmark):
    document, _, _ = _workload()
    text = serialize(document)
    parsed = benchmark(parse_document, text, URI)
    assert parsed.root is not None


def test_step2_label(benchmark):
    document, instance, schema = _workload()

    def label():
        return TreeLabeler(document, instance, schema, hierarchy()).run()

    result = benchmark(label)
    assert result.labeled_nodes > 0


def test_step3_transform(benchmark):
    document, instance, schema = _workload()
    labels = TreeLabeler(document, instance, schema, hierarchy()).run().labels
    view = benchmark(build_view, document, labels)
    assert view is not None


def test_step4_unparse(benchmark):
    document, instance, schema = _workload()
    labels = TreeLabeler(document, instance, schema, hierarchy()).run().labels
    view = build_view(document, labels)
    text = benchmark(serialize, view)
    assert isinstance(text, str)


def test_full_cycle(benchmark):
    document, instance, schema = _workload()
    text = serialize(document)
    processor = SecurityProcessor(hierarchy=hierarchy())
    output = benchmark(processor.process_text, text, instance, schema, URI)
    assert output.xml_text is not None
