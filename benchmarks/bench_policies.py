"""A1 — ablation: conflict-resolution policies (paper, Section 5).

The paper notes its denials-take-precedence choice "does not restrict in
any way our model, which can support any of the policies discussed".
This ablation measures latency and resulting view size under each
policy on a conflict-heavy workload (every node covered by both a
permission and a denial from incomparable subjects).
"""

import pytest

from repro.authz.authorization import Authorization
from repro.authz.conflict import (
    DenialsTakePrecedence,
    MajorityTakesPrecedence,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
)
from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy

from bench_common import URI, document_of_size

POLICIES = {
    "denials": DenialsTakePrecedence,
    "permissions": PermissionsTakePrecedence,
    "nothing": NothingTakesPrecedence,
    "majority": MajorityTakesPrecedence,
}

NODES = 2000


def conflict_workload():
    hierarchy = SubjectHierarchy()
    directory = hierarchy.directory
    for name in ("A", "B", "C"):
        directory.add_group(name)
    auths = [
        Authorization.build(("A", "*", "*"), f"{URI}://archive", "+", "R"),
        Authorization.build(("B", "*", "*"), f"{URI}://archive", "-", "R"),
        Authorization.build(("C", "*", "*"), f"{URI}://archive", "+", "R"),
        Authorization.build(("A", "*", "*"), f'{URI}://section[./@kind="private"]', "-", "R"),
        Authorization.build(("B", "*", "*"), f'{URI}://section[./@kind="private"]', "+", "R"),
        Authorization.build(("A", "*", "*"), f"{URI}://record", "+", "L"),
        Authorization.build(("C", "*", "*"), f"{URI}://record", "-", "L"),
    ]
    return hierarchy, auths


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_policy_ablation(benchmark, policy_name):
    document = document_of_size(NODES)
    hierarchy, auths = conflict_workload()
    policy = POLICIES[policy_name]()
    result = benchmark(
        compute_view_from_auths, document, auths, [], hierarchy, policy
    )
    # Shape: permissions-take-precedence releases the most nodes,
    # denials the fewest, nothing/majority in between; asserted softly
    # here, exactly in tests/.
    assert result.total_nodes > 0
