#!/usr/bin/env python3
"""Regenerate every experiment series in EXPERIMENTS.md.

Runs the C1-C7 / A1-A2 measurements of DESIGN.md's experiment index
directly (median of repeated runs via ``time.perf_counter``) and prints
the tables EXPERIMENTS.md records. For statistically rigorous numbers
use the pytest-benchmark suite (``pytest benchmarks/ --benchmark-only``);
this script favours one-command reproducibility of the *shapes*.

The final section (O1) drives the tracing hooks of ``repro.obs``
through the server facade, prints per-stage p50/p95 latencies for the
serve/query workloads, and writes the machine-readable baseline to
``BENCH_PR2.json`` at the repository root (see docs/OBSERVABILITY.md).

Run:  python benchmarks/run_report.py [--fast]
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, "benchmarks")

from bench_common import (  # noqa: E402
    DTD_URI,
    URI,
    auth_set,
    deep_doc,
    document_of_size,
    hierarchy,
    public_auth,
    wide_doc,
)

from repro.authz.conflict import (  # noqa: E402
    DenialsTakePrecedence,
    MajorityTakesPrecedence,
    NothingTakesPrecedence,
    PermissionsTakePrecedence,
)
from repro.core.baseline import compute_view_naive  # noqa: E402
from repro.core.processor import SecurityProcessor  # noqa: E402
from repro.core.view import compute_view_from_auths  # noqa: E402
from repro.dtd.generator import InstanceGenerator  # noqa: E402
from repro.dtd.loosen import loosen  # noqa: E402
from repro.dtd.parser import parse_dtd  # noqa: E402
from repro.dtd.validator import validate  # noqa: E402
from repro.subjects.hierarchy import SubjectHierarchy  # noqa: E402
from repro.workloads.scenarios import LAB_DTD_TEXT  # noqa: E402
from repro.xml.serializer import serialize  # noqa: E402
from repro.xml.traversal import count_nodes  # noqa: E402
from repro.xpath.evaluator import select  # noqa: E402

FAST = "--fast" in sys.argv
ROUNDS = 3 if FAST else 7


def timed(fn, *args, **kwargs) -> float:
    """Median wall-clock milliseconds over ROUNDS runs."""
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn(*args, **kwargs)
        samples.append((time.perf_counter() - start) * 1000)
    return statistics.median(samples)


def table(title: str, header: list[str], rows: list[list[str]]) -> None:
    print()
    print(f"### {title}")
    print()
    print("| " + " | ".join(header) + " |")
    print("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        print("| " + " | ".join(row) + " |")


def c1_view_scaling() -> None:
    instance, schema = auth_set(24)
    rows = []
    for nodes in (500, 2000, 8000):
        document = document_of_size(nodes)
        fast = timed(
            compute_view_from_auths, document, instance, schema, hierarchy()
        )
        naive = timed(compute_view_naive, document, instance, schema, hierarchy())
        rows.append(
            [str(nodes), f"{fast:.1f}", f"{naive:.1f}", f"{naive / fast:.2f}x"]
        )
    table(
        "C1 — view computation vs document size (24 auths)",
        ["nodes", "compute-view (ms)", "naive baseline (ms)", "baseline/view"],
        rows,
    )


def c2_auth_scaling() -> None:
    document = document_of_size(2000)
    rows = []
    for auths in (4, 16, 64, 256):
        instance, schema = auth_set(auths)
        fast = timed(
            compute_view_from_auths, document, instance, schema, hierarchy()
        )
        rows.append([str(auths), f"{fast:.1f}"])
    table(
        "C2 — view computation vs |Auth| (2000-node document)",
        ["authorizations", "compute-view (ms)"],
        rows,
    )


def c3_pipeline() -> None:
    document = document_of_size(4000)
    instance, schema = auth_set(24)
    text = serialize(document)
    processor = SecurityProcessor(hierarchy=hierarchy())
    output = processor.process_text(text, instance, schema, URI)
    # Use the processor's own per-step timers, medianized.
    steps = {"parse": [], "label": [], "transform": [], "unparse": []}
    for _ in range(ROUNDS):
        output = processor.process_text(text, instance, schema, URI)
        for step, value in output.timings.as_dict().items():
            if step in steps:
                steps[step].append(value * 1000)
    rows = [
        [step, f"{statistics.median(values):.1f}"]
        for step, values in steps.items()
    ]
    total = sum(statistics.median(values) for values in steps.values())
    rows.append(["total", f"{total:.1f}"])
    table(
        "C3 — per-step cost of the 4-step processor (4000 nodes, 24 auths)",
        ["step", "median (ms)"],
        rows,
    )


def c4_shape() -> None:
    auths = [
        public_auth("//level[./@n='3']", "+", "R"),
        public_auth("//item", "+", "R"),
        public_auth("//level[./@n='700']", "-", "R"),
    ]
    rows = []
    for label, document in (("deep (chain of 1500)", deep_doc(1500)),
                            ("wide (1500 siblings)", wide_doc(1500))):
        fast = timed(compute_view_from_auths, document, auths, [], hierarchy())
        naive = timed(compute_view_naive, document, auths, [], hierarchy())
        rows.append([label, f"{fast:.1f}", f"{naive:.1f}", f"{naive / fast:.1f}x"])
    table(
        "C4 — tree shape at constant size",
        ["shape", "compute-view (ms)", "naive baseline (ms)", "baseline/view"],
        rows,
    )


def c5_xpath() -> None:
    document = document_of_size(4000)
    expressions = {
        "child path": "/archive/section/record",
        "descendant //": "//title",
        "condition [@kind=...]": '//section[./@kind="private"]',
        "attribute step": "//record/@id",
        "ancestor axis": "//title/ancestor::section",
        "union": "//title | //body",
    }
    rows = []
    for label, expression in expressions.items():
        cost = timed(select, expression, document)
        count = len(select(expression, document))
        rows.append([label, f"{cost:.1f}", str(count)])
    table(
        "C5 — XPath evaluation on a 4000-node document",
        ["expression shape", "median (ms)", "selected nodes"],
        rows,
    )


def c6_subjects() -> None:
    from repro.authz.store import AuthorizationStore
    from repro.subjects.hierarchy import Requester, SubjectSpec
    from repro.workloads.generator import populate_directory

    store = AuthorizationStore()
    users, groups = populate_directory(
        store.hierarchy.directory, users=50, groups=16, nesting=15
    )
    for index in range(256):
        store.add(
            public_auth(f"//n{index}", uri="http://x/d.xml")
        )
    requester = Requester(users[0], "150.1.2.3", "host0.lab.com")
    applicable = timed(store.applicable, requester, "http://x/d.xml")
    lower = SubjectSpec.parse(users[3], "150.100.30.8", "pc.lab.com")
    upper = SubjectSpec.parse(groups[0], "150.100.*", "*.lab.com")
    dominance = timed(
        lambda: [store.hierarchy.dominates(lower, upper) for _ in range(1000)]
    )
    table(
        "C6 — subject hierarchy costs (16 nested groups, 256 auths)",
        ["operation", "median (ms)"],
        [
            ["applicable(requester, uri) over 256 auths", f"{applicable:.2f}"],
            ["1000 x dominates(rq, subject)", f"{dominance:.2f}"],
        ],
    )


def c7_dtd() -> None:
    dtd = parse_dtd(LAB_DTD_TEXT)
    rows = []
    for label, factor in (("small instance", 2.0), ("large instance", 8.0)):
        document = InstanceGenerator(dtd, seed=7, repeat_factor=factor).document()
        nodes = count_nodes(document.root)
        cost = timed(validate, document, dtd)
        rows.append([f"{label} ({nodes} nodes)", f"{cost:.2f}"])
    rows.append(["loosen(DTD)", f"{timed(loosen, dtd):.3f}"])
    table("C7 — DTD validation and loosening", ["operation", "median (ms)"], rows)


def a1_policies() -> None:
    from repro.authz.authorization import Authorization

    document = document_of_size(2000)
    sh = SubjectHierarchy()
    for name in ("A", "B", "C"):
        sh.directory.add_group(name)
    auths = [
        Authorization.build(("A", "*", "*"), f"{URI}://archive", "+", "R"),
        Authorization.build(("B", "*", "*"), f"{URI}://archive", "-", "R"),
        Authorization.build(("C", "*", "*"), f"{URI}://archive", "+", "R"),
        Authorization.build(("A", "*", "*"), f'{URI}://section[./@kind="private"]', "-", "R"),
        Authorization.build(("B", "*", "*"), f'{URI}://section[./@kind="private"]', "+", "R"),
    ]
    rows = []
    for policy in (
        DenialsTakePrecedence(),
        PermissionsTakePrecedence(),
        NothingTakesPrecedence(),
        MajorityTakesPrecedence(),
    ):
        result = compute_view_from_auths(document, auths, [], sh, policy)
        cost = timed(compute_view_from_auths, document, auths, [], sh, policy)
        rows.append(
            [policy.name, f"{cost:.1f}", f"{result.visible_nodes}/{result.total_nodes}"]
        )
    table(
        "A1 — conflict-policy ablation (conflict-heavy workload)",
        ["policy", "median (ms)", "visible nodes"],
        rows,
    )


def a2_weak() -> None:
    document = document_of_size(2000)
    schema_denials = [
        public_auth('//section[./@kind="private"]', "-", "R", uri=DTD_URI),
        public_auth('//record[./@kind="restricted"]', "-", "R", uri=DTD_URI),
    ]
    rows = []
    for strength in ("R", "RW"):
        grants = [public_auth("//archive", "+", strength)]
        result = compute_view_from_auths(
            document, grants, schema_denials, SubjectHierarchy()
        )
        cost = timed(
            compute_view_from_auths, document, grants, schema_denials,
            SubjectHierarchy(),
        )
        rows.append(
            [strength, f"{cost:.1f}", f"{result.visible_nodes}/{result.total_nodes}"]
        )
    table(
        "A2 — weak vs strong grant against schema denials",
        ["grant type", "median (ms)", "visible nodes"],
        rows,
    )


def a3_cache() -> None:
    from repro.authz.authorization import Authorization
    from repro.server.cache import ViewCache
    from repro.server.request import AccessRequest
    from repro.server.service import SecureXMLServer
    from repro.subjects.hierarchy import Requester

    rows = []
    for label, cached in (("no cache", False), ("view cache", True)):
        server = SecureXMLServer(view_cache=ViewCache() if cached else None)
        server.publish_document(URI, serialize(document_of_size(4000)))
        server.grant(Authorization.build("Public", f"{URI}://archive", "+", "R"))
        request = AccessRequest(Requester("anonymous", "9.9.9.9", "h.x"), URI)
        server.serve(request)  # warm
        cost = timed(server.serve, request)
        rows.append([label, f"{cost:.2f}"])
    table(
        "A3 — server view cache (repeated identical-entitlement requests, 4000 nodes)",
        ["configuration", "median serve (ms)"],
        rows,
    )


def a4_selectivity() -> None:
    from repro.subjects.hierarchy import SubjectHierarchy

    document = document_of_size(4000)
    cases = {
        "grant-none": [public_auth('//section[./@kind="nosuch"]', "+", "R")],
        "grant-quarter": [public_auth('//section[./@kind="private"]', "+", "R")],
        "grant-half": [
            public_auth('//section[./@kind="private"]', "+", "R"),
            public_auth('//section[./@kind="public"]', "+", "R"),
        ],
        "grant-all": [public_auth("//archive", "+", "R")],
    }
    rows = []
    for label, auths in cases.items():
        result = compute_view_from_auths(document, auths, [], SubjectHierarchy())
        cost = timed(
            compute_view_from_auths, document, auths, [], SubjectHierarchy()
        )
        rows.append(
            [label, f"{cost:.1f}", f"{result.visible_nodes}/{result.total_nodes}"]
        )
    table(
        "A4 — authorization selectivity sweep (4000 nodes)",
        ["grant share", "median (ms)", "visible nodes"],
        rows,
    )


OBS_ITERATIONS = 8 if FAST else 25
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _serve_server(document, grants, view_cache=None):
    from repro.server.service import SecureXMLServer

    server = SecureXMLServer(view_cache=view_cache)
    server.publish_document(URI, serialize(document))
    for grant in grants:
        server.grant(grant)
    return server


def _obs_workloads():
    """name -> zero-arg request function returning a traced response.

    Every workload funnels through ``SecureXMLServer`` so the measured
    breakdown is exactly what ``response.timings`` reports in
    production, not a reconstruction.
    """
    from repro.server.cache import ViewCache
    from repro.server.request import AccessRequest, QueryRequest
    from repro.subjects.hierarchy import Requester

    requester = Requester("anonymous", "9.9.9.9", "h.x")
    grants = [
        public_auth("//archive", "+", "R"),
        public_auth('//section[./@kind="private"]', "-", "R"),
    ]
    deep_grants = [
        public_auth("//item", "+", "R"),
        public_auth("//level[./@n='3']", "+", "R"),
    ]
    workloads = {}

    for name, nodes in (("serve-synthetic-2000", 2000),
                        ("serve-synthetic-8000", 8000)):
        server = _serve_server(document_of_size(nodes), grants)
        workloads[name] = (
            lambda s=server: s.serve(AccessRequest(requester, URI))
        )

    server_deep = _serve_server(deep_doc(1500), deep_grants)
    workloads["serve-deep-1500"] = (
        lambda: server_deep.serve(AccessRequest(requester, URI))
    )
    server_wide = _serve_server(wide_doc(1500), deep_grants)
    workloads["serve-wide-1500"] = (
        lambda: server_wide.serve(AccessRequest(requester, URI))
    )

    server_cached = _serve_server(
        document_of_size(4000), grants, view_cache=ViewCache()
    )
    server_cached.serve(AccessRequest(requester, URI))  # warm the cache
    workloads["serve-cached-4000"] = (
        lambda: server_cached.serve(AccessRequest(requester, URI))
    )

    server_query = _serve_server(document_of_size(2000), grants)
    workloads["query-synthetic-2000"] = (
        lambda: server_query.query(QueryRequest(requester, URI, "//record"))
    )
    return workloads


def _disabled_overhead() -> dict:
    """Cost of the tracing hooks when no tracer is active.

    Methodology: the hooks are unconditionally compiled in, so the
    hook-free baseline cannot be timed directly. Instead (a) compare
    the bench_pipeline.py full cycle with tracing disabled vs enabled,
    and (b) microbenchmark the disabled ``span()`` call and multiply by
    the span count of one cycle — an upper bound on what the disabled
    hooks can add.
    """
    from repro.obs.trace import Tracer, span, tracing

    document = document_of_size(4000)
    instance, schema = auth_set(24)
    text = serialize(document)
    processor = SecurityProcessor(hierarchy=hierarchy())
    processor.process_text(text, instance, schema, URI)  # warm caches

    disabled_ms = timed(processor.process_text, text, instance, schema, URI)
    enabled_samples = []
    for _ in range(ROUNDS):
        tracer = Tracer()
        start = time.perf_counter()
        with tracing(tracer):
            processor.process_text(text, instance, schema, URI)
        enabled_samples.append((time.perf_counter() - start) * 1000)
    enabled_ms = statistics.median(enabled_samples)

    counter = Tracer()
    with tracing(counter):
        processor.process_text(text, instance, schema, URI)
    span_calls = len(counter.spans)

    loops = 100_000
    start = time.perf_counter()
    for _ in range(loops):
        with span("noop"):
            pass
    noop_ns = (time.perf_counter() - start) / loops * 1e9

    overhead_pct = (noop_ns * span_calls) / (disabled_ms * 1e6) * 100
    return {
        "workload": "bench_pipeline.py full cycle (4000 nodes, 24 auths)",
        "disabled_ms": round(disabled_ms, 3),
        "enabled_ms": round(enabled_ms, 3),
        "span_calls_per_cycle": span_calls,
        "noop_span_ns": round(noop_ns, 1),
        "disabled_overhead_pct": round(overhead_pct, 4),
    }


def o1_obs_baseline() -> None:
    from repro.obs.trace import Tracer, tracing

    workload_stats: dict[str, dict] = {}
    rows = []
    for name, request in _obs_workloads().items():
        samples: dict[str, list[float]] = {}
        for _ in range(OBS_ITERATIONS):
            with tracing(Tracer()):
                response = request()
            for stage, seconds in response.timings.items():
                samples.setdefault(stage, []).append(seconds * 1000)
        stages = {
            stage: {
                "p50_ms": round(_percentile(values, 0.50), 3),
                "p95_ms": round(_percentile(values, 0.95), 3),
                "p99_ms": round(_percentile(values, 0.99), 3),
                "samples": len(values),
            }
            for stage, values in sorted(samples.items())
        }
        workload_stats[name] = {
            "iterations": OBS_ITERATIONS,
            "stages": stages,
        }
        for stage, latency in stages.items():
            rows.append([
                name,
                stage,
                f"{latency['p50_ms']:.3f}",
                f"{latency['p95_ms']:.3f}",
                f"{latency['p99_ms']:.3f}",
            ])
    table(
        "O1 — per-stage request latency via repro.obs tracing",
        ["workload", "stage", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
    )

    overhead = _disabled_overhead()
    table(
        "O1 — tracing overhead when disabled (bench_pipeline.py workload)",
        ["measure", "value"],
        [[key, str(value)] for key, value in overhead.items()],
    )

    BENCH_JSON.write_text(
        json.dumps(
            {
                "source": "benchmarks/run_report.py (section O1)",
                "fast": FAST,
                "workloads": workload_stats,
                "disabled_overhead": overhead,
            },
            indent=2,
        )
        + "\n"
    )
    print()
    print(f"wrote {BENCH_JSON}")


BENCH_PR4_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


def o2_provenance() -> None:
    """Cost of decision provenance on the auction workload.

    Two measurements, mirroring the O1 methodology:

    - **enabled**: the full labeling pass with a ``ProvenanceRecorder``
      attached vs the plain pass — the price of asking *why*;
    - **disabled**: the recorder hooks compile down to one
      ``is not None`` test per dispatch site, so the disabled path is
      bounded by microbenchmarking that guard and multiplying by the
      per-run guard count — an upper bound, required < 1 %.
    """
    from repro.core.labeling import ProvenanceRecorder, TreeLabeler
    from repro.workloads.auction import AUCTION_SITE_URI, auction_scenario
    from repro.xml.traversal import count_nodes

    scenario = auction_scenario(seed=3, people=6 if FAST else 24)
    server = scenario.server
    requester = scenario.fraud_officer
    now = time.time()
    instance = server.store.applicable(requester, AUCTION_SITE_URI, "read", at=now)
    dtd_uri = server.repository.dtd_uri_of(AUCTION_SITE_URI)
    schema = server.store.applicable(requester, dtd_uri, "read", at=now)
    document = server.repository.stored(AUCTION_SITE_URI).document()
    nodes = count_nodes(document.root)

    def run(recorder_factory):
        TreeLabeler(
            document,
            instance,
            schema,
            server.hierarchy,
            recorder=recorder_factory() if recorder_factory else None,
        ).run()

    run(None)  # warm path caches
    disabled_ms = timed(run, None)
    enabled_ms = timed(run, ProvenanceRecorder)

    # The disabled path differs from a hook-free labeler only by the
    # `self._recorder is not None` guards: two dispatch sites per node
    # (initial label, propagation) plus one at the root final. Time the
    # guard against an empty-loop baseline so the measured nanoseconds
    # are the *marginal* cost of the attribute load + identity test,
    # not the loop scaffolding around it.
    class _Holder:
        __slots__ = ("recorder",)

    holder = _Holder()
    holder.recorder = None
    loops = 1_000_000
    start = time.perf_counter()
    for _ in range(loops):
        pass
    baseline = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(loops):
        if holder.recorder is not None:
            pass  # pragma: no cover - never taken
    guarded = time.perf_counter() - start
    guard_ns = max(0.0, (guarded - baseline) / loops * 1e9)
    guards_per_run = 2 * nodes + 1
    disabled_overhead_pct = (guard_ns * guards_per_run) / (disabled_ms * 1e6) * 100

    payload = {
        "source": "benchmarks/run_report.py (section O2)",
        "fast": FAST,
        "workload": {
            "scenario": "auction (XMark-inspired)",
            "nodes": nodes,
            "instance_auths": len(instance),
            "schema_auths": len(schema),
            "requester": "fraud-officer",
        },
        "label_disabled_ms": round(disabled_ms, 3),
        "label_with_provenance_ms": round(enabled_ms, 3),
        "enabled_overhead_pct": round(
            (enabled_ms - disabled_ms) / disabled_ms * 100, 1
        ),
        "disabled_guard_ns": round(guard_ns, 2),
        "guards_per_run": guards_per_run,
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "disabled_overhead_budget_pct": 1.0,
    }
    assert disabled_overhead_pct < 1.0, (
        f"disabled-provenance overhead bound {disabled_overhead_pct:.4f}% "
        "exceeds the 1% budget"
    )
    table(
        "O2 — provenance recording cost (auction workload)",
        ["measure", "value"],
        [
            [key, str(value)]
            for key, value in payload.items()
            if key not in ("source", "workload")
        ],
    )
    BENCH_PR4_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR4_JSON}")


BENCH_PR5_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"


class _CountingLock:
    """Context-manager/acquire-release proxy that counts acquisitions.

    Swapped in for a structure's ``_lock`` before any request runs, it
    measures exactly how many lock acquisitions one request performs —
    the input for the deterministic overhead bound below.
    """

    __slots__ = ("inner", "acquisitions")

    def __init__(self, inner):
        self.inner = inner
        self.acquisitions = 0

    def __enter__(self):
        self.acquisitions += 1
        return self.inner.__enter__()

    def __exit__(self, *exc_info):
        return self.inner.__exit__(*exc_info)

    def acquire(self, *args, **kwargs):
        self.acquisitions += 1
        return self.inner.acquire(*args, **kwargs)

    def release(self):
        return self.inner.release()


def _lock_pair_ns(lock) -> float:
    """Median nanoseconds of one uncontended ``with lock: pass``."""
    loops = 50_000
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(loops):
            with lock:
                pass
        samples.append((time.perf_counter() - start) / loops * 1e9)
    return statistics.median(samples)


def _concurrency_server(view_cache=True):
    from repro.server.cache import ViewCache
    from repro.server.service import SecureXMLServer

    server = SecureXMLServer(view_cache=ViewCache() if view_cache else None)
    server.publish_document(URI, serialize(document_of_size(2000)))
    server.grant(public_auth("//archive", "+", "R"))
    server.grant(public_auth('//section[./@kind="private"]', "-", "R"))
    return server


def c1_concurrency() -> None:
    """Concurrent serving: throughput sweep, single-flight collapse,
    and the single-thread cost of the locks that make it safe.

    Three measurements, written to ``BENCH_PR5.json``:

    - **threads x workload throughput**: one server, a mixed
      serve/query batch through :func:`repro.server.concurrent.serve_many`
      at 1/2/4/8 workers;
    - **single-flight**: 8 simultaneous cold misses on one cache key
      must perform exactly ONE labeling pass (asserted) where a naive
      cache would do 8;
    - **locking overhead**: every ``_lock`` a warm cached serve touches
      is replaced by a counting proxy, the exact acquisition count is
      multiplied by the microbenchmarked uncontended acquire/release
      cost, and the product is bounded against the serve p50 —
      required <= 2 % (asserted), mirroring the O2 methodology.
    """
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from repro.obs.metrics import MetricsRegistry
    from repro.server.cache import ViewCache
    from repro.server.concurrent import serve_many
    from repro.server.request import AccessRequest, QueryRequest
    from repro.server.service import SecureXMLServer
    from repro.subjects.hierarchy import Requester

    requester = Requester("anonymous", "9.9.9.9", "h.x")

    # -- threads x throughput -------------------------------------------------
    server = _concurrency_server()
    workload = []
    for _ in range(10 if FAST else 30):
        workload.append(AccessRequest(requester, URI))
        workload.append(AccessRequest(Requester(), URI))
        workload.append(QueryRequest(requester, URI, "//record"))
    serve_many(server, workload, max_workers=2)  # warm caches and pools
    throughput = {}
    rows = []
    for workers in (1, 2, 4, 8):
        cost_ms = timed(serve_many, server, workload, max_workers=workers)
        rps = len(workload) / (cost_ms / 1000)
        throughput[str(workers)] = {
            "batch_ms": round(cost_ms, 2),
            "requests_per_s": round(rps, 0),
        }
        rows.append([str(workers), f"{cost_ms:.1f}", f"{rps:.0f}"])
    table(
        "C1 — concurrent serving throughput (mixed serve/query batch of "
        f"{len(workload)})",
        ["workers", "batch (ms)", "requests/s"],
        rows,
    )

    # -- single-flight: N cold misses, one labeling ---------------------------
    flight_threads = 8
    labelings, shared_counts = [], []
    for _ in range(ROUNDS):
        cold = _concurrency_server()
        barrier = threading.Barrier(flight_threads)
        request = AccessRequest(requester, URI)

        def one():
            barrier.wait()
            return cold.serve(request)

        with ThreadPoolExecutor(max_workers=flight_threads) as pool:
            for future in [pool.submit(one) for _ in range(flight_threads)]:
                future.result()
        labelings.append(
            cold.metrics.histogram("stage_seconds", stage="label").count
        )
        shared_counts.append(cold.view_cache.stats()["shared"])
    assert all(count == 1 for count in labelings), (
        f"single-flight must label once per key, saw {labelings}"
    )
    single_flight = {
        "concurrent_cold_misses": flight_threads,
        "labeling_passes": max(labelings),
        "labelings_without_single_flight": flight_threads,
        "shared_per_round": shared_counts,
    }
    table(
        "C1 — single-flight collapse (8 simultaneous cold misses)",
        ["measure", "value"],
        [[key, str(value)] for key, value in single_flight.items()],
    )

    # -- single-thread locking overhead bound ---------------------------------
    # Methodology (O2 precedent: deterministic microbenchmark bound):
    # every lock a request can touch is replaced by a counting proxy,
    # the exact per-request acquisition count is multiplied by the
    # measured uncontended acquire/release cost, and the product is
    # bounded against the workload's own serve p50. Probed on the two
    # O1 serving workloads that bracket the range: the warm cached
    # serve (serve-cached-4000 — the worst case: the request is tens of
    # microseconds, so the locks are proportionally largest) and the
    # uncached labeling serve (serve-synthetic-2000, ms-scale). The
    # audit ring and fault-injector fast paths are lock-free by design
    # and contribute zero acquisitions.
    lock_ns = _lock_pair_ns(threading.Lock())
    rlock_ns = _lock_pair_ns(threading.RLock())
    probe_requests = 50
    locking_workloads = {}
    worst_pct = 0.0
    for workload_name, cached in (
        ("serve-cached-4000 (warm hit)", True),
        ("serve-synthetic-2000 (uncached)", False),
    ):
        metrics = MetricsRegistry()
        metrics_lock = _CountingLock(metrics._lock)
        metrics._lock = metrics_lock  # before any metric exists
        # NB: identity tests — an empty ViewCache is falsy (__len__).
        cache = ViewCache() if cached else None
        cache_lock = _CountingLock(cache._lock) if cache is not None else None
        if cache is not None:
            cache._lock = cache_lock
        guarded = SecureXMLServer(view_cache=cache, metrics=metrics)
        guarded.publish_document(
            URI, serialize(document_of_size(4000 if cached else 2000))
        )
        guarded.grant(public_auth("//archive", "+", "R"))
        request = AccessRequest(requester, URI)
        guarded.serve(request)  # warm: parse once, fill the cache
        metrics_before = metrics_lock.acquisitions
        cache_before = cache_lock.acquisitions if cache_lock is not None else 0
        samples = []
        for _ in range(probe_requests):
            start = time.perf_counter()
            guarded.serve(request)
            samples.append((time.perf_counter() - start) * 1000)
        serve_p50_ms = statistics.median(samples)
        metrics_per_request = (
            metrics_lock.acquisitions - metrics_before
        ) / probe_requests
        cache_per_request = (
            (cache_lock.acquisitions - cache_before) / probe_requests
            if cache_lock is not None
            else 0.0
        )
        overhead_ns = metrics_per_request * lock_ns + cache_per_request * rlock_ns
        overhead_pct = overhead_ns / (serve_p50_ms * 1e6) * 100
        worst_pct = max(worst_pct, overhead_pct)
        locking_workloads[workload_name] = {
            "serve_p50_ms": round(serve_p50_ms, 4),
            "lock_acquisitions_per_request": {
                "metrics": round(metrics_per_request, 1),
                "view_cache": round(cache_per_request, 1),
                "audit": 0.0,  # lock-free deque append
            },
            "overhead_ns": round(overhead_ns, 0),
            "overhead_pct": round(overhead_pct, 4),
        }

    payload = {
        "source": "benchmarks/run_report.py (section C1-concurrency)",
        "fast": FAST,
        "throughput_by_workers": throughput,
        "single_flight": single_flight,
        "locking": {
            "uncontended_lock_ns": round(lock_ns, 1),
            "uncontended_rlock_ns": round(rlock_ns, 1),
            "workloads": locking_workloads,
            "worst_overhead_pct": round(worst_pct, 4),
            "overhead_budget_pct": 2.0,
        },
    }
    assert worst_pct <= 2.0, (
        f"single-thread locking overhead bound {worst_pct:.4f}% "
        "exceeds the 2% budget"
    )
    table(
        "C1 — single-thread locking overhead (per O1 workload)",
        ["workload", "p50 (ms)", "locks/request", "overhead"],
        [
            [
                name,
                f"{stats['serve_p50_ms']:.4f}",
                str(sum(stats["lock_acquisitions_per_request"].values())),
                f"{stats['overhead_pct']:.4f}%",
            ]
            for name, stats in locking_workloads.items()
        ],
    )
    BENCH_PR5_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR5_JSON}")


BENCH_PR6_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def c2_pool() -> None:
    """Multi-process pool scaling and degraded-mode correctness.

    BENCH_PR5 established the GIL wall: thread-level serve_many tops
    out around one core no matter the worker count. This section
    measures what the shared-nothing process pool buys back:

    - **workers x throughput**: the same cache-disabled, CPU-bound
      mixed serve/query batch through ``ShardedServerPool`` at
      1/2/4 workers, against a sequential in-process baseline;
    - **scaling gate**: on a >= 4-CPU box, 4 workers must deliver
      >= 2.5x the 1-worker throughput (asserted). On smaller boxes the
      number is recorded but the gate is not enforced — processes
      cannot beat physics, and CI (4 vCPU) holds the line;
    - **degraded-mode correctness**: with every shard breaker forced
      open the pool serves in-process, and each response must be
      byte-identical to the sequential reference (asserted).
    """
    import os

    from repro.server.concurrent import dispatch
    from repro.server.pool import ShardedServerPool
    from repro.server.supervisor import RestartPolicy
    from repro.workloads.traffic import TrafficSpec, request_stream

    spec = TrafficSpec(
        documents=4 if FAST else 8,
        nodes_per_document=200 if FAST else 400,
        seed=17,
        view_cache=False,  # every request pays the full labeling pass
    )
    requests = list(request_stream(spec, 40 if FAST else 120, seed=9))
    pool_rounds = 2 if FAST else 3

    # -- sequential baseline --------------------------------------------------
    sequential_server = spec.build_server(None, 4)
    references = [dispatch(sequential_server, request) for request in requests]
    start = time.perf_counter()
    for request in requests:
        dispatch(sequential_server, request)
    sequential_s = time.perf_counter() - start
    sequential_rps = len(requests) / sequential_s

    # -- workers x throughput -------------------------------------------------
    cpus = len(os.sched_getaffinity(0))
    throughput: dict[str, dict] = {}
    rows = [["sequential (in-process)", f"{sequential_s * 1000:.0f}",
             f"{sequential_rps:.0f}", "1.00x"]]
    for workers in (1, 2, 4):
        with ShardedServerPool(
            spec.build_server,
            workers=workers,
            shards=4,
            queue_depth=len(requests),  # throughput run: no shedding wanted
            restart_policy=RestartPolicy(base_delay=0.02, cap=0.5),
        ) as pool:
            pool.wait_ready()
            pool.serve_many(requests[: len(requests) // 4])  # warm workers
            samples = []
            for _ in range(pool_rounds):
                start = time.perf_counter()
                outcomes = pool.serve_many(requests, timeout=300.0)
                samples.append(time.perf_counter() - start)
                assert all(outcome.ok for outcome in outcomes)
        batch_s = statistics.median(samples)
        rps = len(requests) / batch_s
        throughput[str(workers)] = {
            "batch_ms": round(batch_s * 1000, 1),
            "requests_per_s": round(rps, 1),
            "vs_sequential": round(rps / sequential_rps, 2),
        }
        rows.append([f"{workers} worker(s)", f"{batch_s * 1000:.0f}",
                     f"{rps:.0f}", f"{rps / sequential_rps:.2f}x"])
    table(
        f"C2 — process-pool throughput (batch of {len(requests)}, "
        "cache disabled)",
        ["configuration", "batch (ms)", "requests/s", "vs sequential"],
        rows,
    )

    scaling = (
        throughput["4"]["requests_per_s"] / throughput["1"]["requests_per_s"]
    )
    gate_enforced = cpus >= 4
    if gate_enforced:
        assert scaling >= 2.5, (
            f"4-worker scaling {scaling:.2f}x below the 2.5x gate on a "
            f"{cpus}-CPU machine"
        )

    # -- degraded-mode correctness --------------------------------------------
    degraded_requests = requests[: 12 if FAST else 24]
    with ShardedServerPool(
        spec.build_server,
        workers=2,
        shards=4,
        breaker_threshold=1,
        breaker_cooldown=600.0,  # stays open for the whole check
    ) as pool:
        pool.wait_ready()
        for breaker in pool._breakers.values():
            breaker.record_failure()  # force every shard breaker open
        outcomes = pool.serve_many(degraded_requests, timeout=300.0)
        stats = pool.stats()
    assert all(outcome.ok and outcome.degraded for outcome in outcomes)
    for outcome, reference in zip(outcomes, references):
        assert outcome.result.xml_text == reference.xml_text
    degraded = {
        "requests": len(degraded_requests),
        "all_degraded_ok": True,
        "byte_identical_to_sequential": True,
        "degraded_total": stats["pool"]["degraded_total"],
    }
    table(
        "C2 — degraded-mode correctness (all breakers open)",
        ["measure", "value"],
        [[key, str(value)] for key, value in degraded.items()],
    )

    payload = {
        "source": "benchmarks/run_report.py (section C2-pool)",
        "fast": FAST,
        "cpus_available": cpus,
        "workload": {
            "requests": len(requests),
            "documents": spec.documents,
            "nodes_per_document": spec.nodes_per_document,
            "view_cache": spec.view_cache,
        },
        "sequential_requests_per_s": round(sequential_rps, 1),
        "throughput_by_workers": throughput,
        "scaling_4_vs_1": round(scaling, 2),
        "gate": {
            "required": 2.5,
            "enforced": gate_enforced,
            "met": scaling >= 2.5,
        },
        "degraded_mode": degraded,
    }
    BENCH_PR6_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR6_JSON}")


BENCH_PR7_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"


def q1_rewrite() -> None:
    """Virtual views: query rewriting vs materialize-then-query.

    Two measurements, written to ``BENCH_PR7.json``:

    - **selective queries on a large document**: with no view cache,
      every materialized query pays the full label/prune/serialize
      pipeline before evaluating; the virtual path answers the same
      query through a warm :class:`~repro.rewrite.VisibilityOracle`
      without building the view. Gate: >= 3x median speedup on the
      most selective query (asserted);
    - **class collapse**: N requesters with identical effective
      permissions (same groups, different logins) must share ONE
      cached view entry and ONE oracle (asserted), with
      ``effective_class_collisions_total`` counting the collapse.
    """
    from repro.authz.authorization import Authorization
    from repro.server.cache import ViewCache
    from repro.server.request import AccessRequest, QueryRequest
    from repro.server.service import SecureXMLServer
    from repro.subjects.hierarchy import Requester

    nodes = 4000 if FAST else 8000
    requester = Requester("anonymous", "9.9.9.9", "h.x")
    server = SecureXMLServer()  # no view cache: the honest baseline
    server.publish_document(URI, serialize(document_of_size(nodes)))
    server.grant(public_auth("//archive", "+", "R"))
    server.grant(public_auth('//section[./@kind="private"]', "-", "R"))

    # Rooted paths confine both the evaluation walk and the lazy
    # labeling to the branch they name; ``//`` visits every node, so
    # virtual evaluation only saves the prune/serialize passes there.
    queries = {
        "point [@id=...]": "/archive/*[./@id='n2']",
        "one branch": "/archive/record/section/record",
        "subtree //title": "/archive/record//title",
        "broad //title": "//title",
    }
    rows = []
    query_stats: dict[str, dict] = {}
    for label, xpath in queries.items():
        request = QueryRequest(requester, URI, xpath)
        server.query(request, virtual=True)  # warm plan + oracle
        materialized_ms = timed(server.query, request)
        virtual_ms = timed(server.query, request, virtual=True)
        speedup = materialized_ms / virtual_ms
        matches = len(server.query(request, virtual=True).matches)
        query_stats[label] = {
            "xpath": xpath,
            "matches": matches,
            "materialized_ms": round(materialized_ms, 2),
            "virtual_ms": round(virtual_ms, 2),
            "speedup": round(speedup, 2),
        }
        rows.append([
            label, str(matches), f"{materialized_ms:.2f}",
            f"{virtual_ms:.2f}", f"{speedup:.1f}x",
        ])
    table(
        f"Q1 — virtual vs materialized query ({nodes}-node document, "
        "no view cache)",
        ["query", "matches", "materialized (ms)", "virtual (ms)", "speedup"],
        rows,
    )
    # The gate covers the selective shapes (small answer, small walk);
    # the subtree/broad rows are reported for context but not gated —
    # their cost is dominated by serializing the large answer itself.
    selective = [
        query_stats["point [@id=...]"]["speedup"],
        query_stats["one branch"]["speedup"],
    ]
    best = max(selective)
    assert min(selective) >= 3.0, (
        f"selective virtual-query speedups {selective} below the 3x gate"
    )

    # -- class collapse: N equivalent requesters, one entry ------------------
    fleet = 8
    cache = ViewCache()
    shared = SecureXMLServer(view_cache=cache)
    shared.publish_document(URI, serialize(document_of_size(2000)))
    shared.add_group("Staff")
    for index in range(fleet):
        shared.add_user(f"user{index}", groups=["Staff"])
    shared.grant(Authorization.build("Staff", f"{URI}://archive", "+", "R"))
    for index in range(fleet):
        staff = Requester(f"user{index}", f"10.0.0.{index}", "pc.lab.com")
        shared.serve(AccessRequest(staff, URI))
        shared.query(QueryRequest(staff, URI, "//title"), virtual=True)
    collisions = shared.metrics.value("effective_class_collisions_total")
    collapse = {
        "equivalent_requesters": fleet,
        "view_cache_entries": len(cache),
        "oracle_entries": len(shared._oracles),
        "effective_class_collisions_total": collisions,
    }
    assert len(cache) == 1, f"expected one shared view entry, got {len(cache)}"
    assert len(shared._oracles) == 1
    table(
        f"Q1 — effective-class collapse ({fleet} equivalent requesters)",
        ["measure", "value"],
        [[key, str(value)] for key, value in collapse.items()],
    )

    payload = {
        "source": "benchmarks/run_report.py (section Q1-rewrite)",
        "fast": FAST,
        "document_nodes": nodes,
        "queries": query_stats,
        "best_speedup": round(best, 2),
        "speedup_gate": {"required": 3.0, "met": best >= 3.0},
        "class_collapse": collapse,
    }
    BENCH_PR7_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR7_JSON}")


BENCH_PR8_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"


def u1_updates() -> None:
    """Secure updates: incremental relabeling and cache retention.

    Two measurements, written to ``BENCH_PR8.json``:

    - **incremental vs full relabel**: after a committed edit the
      engine repairs labels for the edited subtree only
      (``LabelState.apply_delta``); a non-incremental write path
      rebinds every authorization path against the whole post-edit
      document (``LabelState.build``). Gate: >= 5x median speedup on
      the deep-chain edit (asserted). Whole-batch time (clone +
      enforce + relabel) is reported alongside for context;
    - **cache hit-rate retention**: edits confined to one writer's
      subtree must not cost the other classes their cached views —
      the visibility oracle proves them disjoint and the entries
      survive with re-stamped versions, still hitting (asserted).
    """
    from repro.authz.authorization import Authorization
    from repro.server.cache import ViewCache
    from repro.server.request import AccessRequest
    from repro.server.service import SecureXMLServer
    from repro.subjects.hierarchy import Requester
    from repro.update import (
        LabelState,
        SetAttribute,
        UpdateEngine,
        UpdateRequest,
    )
    from repro.xml.traversal import preorder

    def write_auth(path, sign="+", auth_type="R"):
        return Authorization.build(
            "Public", f"{URI}:{path}", sign, auth_type, action="write"
        )

    depth = 300 if FAST else 600
    wide_nodes = 4000 if FAST else 8000
    cases = {
        "deep chain leaf": (
            deep_doc(depth),
            [write_auth("//level")],
            SetAttribute(f"//level[@n='{depth - 1}']", "touched", "1"),
        ),
        "synthetic subtree": (
            document_of_size(wide_nodes),
            [write_auth("//archive"), write_auth("//title", auth_type="L")],
            SetAttribute("/archive/*[./@id='n2']", "touched", "1"),
        ),
    }
    engine = UpdateEngine(hierarchy())
    requester = Requester("writer", "9.9.9.9", "h.x")
    rows = []
    edit_stats: dict[str, dict] = {}
    for label, (document, auths, operation) in cases.items():
        request = UpdateRequest.of(requester, URI, operation)
        result = engine.apply_full(document, request, auths, [])
        delta = result.deltas[0]
        state = result.state
        for node in preorder(result.document):
            state.label(node)  # steady state: the whole view is labeled

        # Incremental maintenance: repair the edited subtree's labels
        # in the carried-over state (idempotent, so timing rounds see
        # identical work); everything outside the subtree keeps its
        # memoized label.
        incremental_ms = timed(state.apply_delta, delta)

        # The non-incremental comparator: drop the compiled node-set
        # caches (the document changed), rebind every authorization
        # path against the whole post-edit document and recompute every
        # label.
        def full_round(document=result.document, auths=auths):
            for authorization in auths:
                compiled = authorization.compiled_path("descendant")
                if compiled is not None:
                    compiled.invalidate()
            rebuilt = LabelState.build(document, auths, [], hierarchy())
            for node in preorder(document):
                rebuilt.label(node)

        full_ms = timed(full_round)
        # Whole-batch context: clone + enforce + relabel + bookkeeping,
        # with the label state carried across committed batches the way
        # the facade does.
        warm = {"doc": result.document, "state": result.state}

        def batch_round(warm=warm, request=request, auths=auths):
            out = engine.apply_full(
                warm["doc"], request, auths, [], state=warm["state"]
            )
            warm["doc"], warm["state"] = out.document, out.state

        batch_ms = timed(batch_round)
        speedup = full_ms / incremental_ms
        total_nodes = count_nodes(document)
        edit_stats[label] = {
            "document_nodes": total_nodes,
            "relabeled_nodes": result.outcome.relabeled_nodes,
            "incremental_relabel_ms": round(incremental_ms, 3),
            "full_relabel_ms": round(full_ms, 2),
            "whole_batch_ms": round(batch_ms, 2),
            "speedup": round(speedup, 2),
        }
        rows.append([
            label, str(total_nodes), str(result.outcome.relabeled_nodes),
            f"{incremental_ms:.3f}", f"{full_ms:.2f}", f"{batch_ms:.2f}",
            f"{speedup:.1f}x",
        ])
    table(
        "U1 — incremental vs full relabel after an edit",
        ["edit", "nodes", "relabeled", "incremental (ms)", "full (ms)",
         "whole batch (ms)", "speedup"],
        rows,
    )
    deep_speedup = edit_stats["deep chain leaf"]["speedup"]
    assert deep_speedup >= 5.0, (
        f"incremental relabel speedup {deep_speedup} below the 5x gate"
    )

    # -- cache retention: unrelated views survive the edit -------------------
    users = 8
    edits = 5
    xml = "<root>" + "".join(
        f"<sec owner='u{i}'><item>data {i}</item></sec>" for i in range(users)
    ) + "</root>"
    cache = ViewCache()
    server = SecureXMLServer(view_cache=cache)
    requesters = []
    for index in range(users):
        server.add_user(f"u{index}")
        requesters.append(Requester(f"u{index}", f"10.0.0.{index}", "pc.x"))
    server.publish_document(URI, xml)
    for index in range(users):
        server.grant(
            Authorization.build(
                (f"u{index}", "*", "*"),
                f"{URI}://sec[@owner='u{index}']",
                "+",
                "R",
            )
        )
    server.grant(
        Authorization.build(
            ("u0", "*", "*"), f"{URI}://sec[@owner='u0']", "+", "R",
            action="write",
        )
    )
    for who in requesters:
        server.serve(AccessRequest(who, URI))  # warm every class
    kept = dropped = 0
    for step in range(edits):
        outcome = server.update(
            UpdateRequest.of(
                requesters[0],
                URI,
                SetAttribute("//sec[@owner='u0']/item", "rev", str(step)),
            )
        )
        kept += outcome.cache_kept
        dropped += outcome.cache_dropped
        server.serve(AccessRequest(requesters[0], URI))  # re-warm the writer
    hits_before = cache.stats()["hits"]
    for who in requesters[1:]:
        server.serve(AccessRequest(who, URI))
    surviving_hits = cache.stats()["hits"] - hits_before
    retention = {
        "classes": users,
        "edits": edits,
        "views_kept": kept,
        "views_dropped": dropped,
        "revalidated": cache.stats()["revalidated"],
        "surviving_hits": surviving_hits,
        "hit_retention": round(surviving_hits / (users - 1), 2),
    }
    assert kept == (users - 1) * edits, retention
    assert surviving_hits == users - 1, retention
    table(
        f"U1 — cache retention across {edits} confined edits "
        f"({users} requester classes)",
        ["measure", "value"],
        [[key, str(value)] for key, value in retention.items()],
    )

    payload = {
        "source": "benchmarks/run_report.py (section U1-updates)",
        "fast": FAST,
        "edits": edit_stats,
        "speedup_gate": {"required": 5.0, "met": deep_speedup >= 5.0},
        "cache_retention": retention,
    }
    BENCH_PR8_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR8_JSON}")


BENCH_PR9_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"


def o3_fleet() -> None:
    """Fleet observability: stitched cross-process traces, harvesting
    overhead and SLO decomposition.

    Three measurements, written to ``BENCH_PR9.json``:

    - **stitched stage breakdown**: pooled requests served under an
      active tracer yield one span tree per request — dispatcher-side
      ``pool.dispatch``/``pool.queue_wait``/``pool.ipc`` plus the
      worker's own pipeline spans grafted inside ``pool.ipc``. The
      p50/p95/p99 of each stage (and the SLO tracker's queue-wait vs
      service decomposition) quantify where a pooled request's time
      goes;
    - **observability overhead**: the default path runs with tracing
      *off* — its cost is one TraceContext ContextVar check per submit
      plus the worker-side registry snapshot per response. Both are
      microbenched deterministically and gated: their sum must stay
      under 1% of the median pooled request (asserted). The
      ``harvest=True`` vs ``harvest=False`` batch medians are recorded
      alongside as the wall-clock A/B (reported, not gated — batch
      noise on small machines exceeds the effect);
    - **conservation**: after the run, the harvested worker
      ``requests_total`` sum must equal the dispatcher's worker-served
      outcome count (asserted — the same invariant the chaos suite
      holds under SIGKILL).
    """
    import pickle

    from repro.obs.fleet import lint_prometheus
    from repro.obs.trace import TraceContext, Tracer, tracing
    from repro.server.concurrent import dispatch
    from repro.server.pool import ShardedServerPool
    from repro.workloads.traffic import TrafficSpec, request_stream

    spec = TrafficSpec(
        documents=4 if FAST else 8,
        nodes_per_document=150 if FAST else 300,
        seed=29,
        view_cache=False,
    )
    request_count = 24 if FAST else 60
    requests = list(request_stream(spec, request_count, seed=5))
    rounds = 2 if FAST else 3

    # -- stitched stage breakdown --------------------------------------------
    stage_samples: dict[str, list[float]] = {}
    with ShardedServerPool(spec.build_server, workers=2, shards=4) as pool:
        pool.wait_ready()
        pool.serve_many(requests[: len(requests) // 4])  # warm workers
        for request in requests:
            with tracing(Tracer()) as tracer:
                pool.serve(request, timeout=300.0)
            for span_ in tracer.spans:
                stage_samples.setdefault(span_.name, []).append(
                    span_.duration * 1000
                )
        slo = pool.slo.summary()
        problems = lint_prometheus(pool.render_prometheus())
        assert not problems, problems

        # -- conservation -----------------------------------------------------
        stats = pool.stats(deep=True)
        fleet_total = pool.fleet.counter_total("requests_total")
        dispatched = sum(
            value
            for outcome, value in stats["outcomes"].items()
            if outcome in ("ok", "error")
        )
    assert fleet_total == dispatched, (
        f"conservation violated: workers counted {fleet_total}, "
        f"dispatcher resolved {dispatched}"
    )

    key_stages = [
        "pool.dispatch", "pool.queue_wait", "pool.ipc", "request.serve",
        "request.query", "label", "prune", "serialize",
    ]
    stages = {}
    rows = []
    for stage in key_stages:
        values = stage_samples.get(stage)
        if not values:
            continue
        stages[stage] = {
            "p50_ms": round(_percentile(values, 0.50), 3),
            "p95_ms": round(_percentile(values, 0.95), 3),
            "p99_ms": round(_percentile(values, 0.99), 3),
            "samples": len(values),
        }
        rows.append([
            stage,
            f"{stages[stage]['p50_ms']:.3f}",
            f"{stages[stage]['p95_ms']:.3f}",
            f"{stages[stage]['p99_ms']:.3f}",
        ])
    table(
        "O3 — stitched cross-process stage latency (traced pooled serve)",
        ["stage", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        rows,
    )

    # -- harvest on/off wall-clock A/B ---------------------------------------
    ab: dict[str, dict] = {}
    for label, harvest in (("harvest_on", True), ("harvest_off", False)):
        with ShardedServerPool(
            spec.build_server, workers=2, shards=4,
            queue_depth=len(requests), harvest=harvest,
        ) as pool:
            pool.wait_ready()
            pool.serve_many(requests[: len(requests) // 4])
            samples = []
            for _ in range(rounds):
                start = time.perf_counter()
                outcomes = pool.serve_many(requests, timeout=300.0)
                samples.append(time.perf_counter() - start)
                assert all(outcome.ok for outcome in outcomes)
        batch_s = statistics.median(samples)
        ab[label] = {
            "batch_ms": round(batch_s * 1000, 1),
            "requests_per_s": round(len(requests) / batch_s, 1),
        }
    median_request_ms = ab["harvest_on"]["batch_ms"] / len(requests)

    # -- deterministic disabled-path overhead gate ---------------------------
    # The two always-on costs, microbenched in isolation against a
    # representative worker registry (populated by real traffic):
    worker_server = spec.build_server(None, 4)
    for request in requests:
        dispatch(worker_server, request)
    loops = 200
    start = time.perf_counter()
    for _ in range(loops):
        pickle.dumps(worker_server.metrics.snapshot())
    snapshot_ms = (time.perf_counter() - start) / loops * 1000

    loops = 100_000
    start = time.perf_counter()
    for _ in range(loops):
        TraceContext.capture()
    capture_ns = (time.perf_counter() - start) / loops * 1e9

    overhead_pct = (
        (snapshot_ms + capture_ns / 1e6) / median_request_ms * 100
    )
    assert overhead_pct < 1.0, (
        f"disabled-path observability overhead {overhead_pct:.3f}% "
        f">= 1% of the median pooled request"
    )

    overhead = {
        "snapshot_build_and_pickle_ms": round(snapshot_ms, 4),
        "trace_capture_disabled_ns": round(capture_ns, 1),
        "median_pooled_request_ms": round(median_request_ms, 3),
        "overhead_pct": round(overhead_pct, 4),
        "gate_pct": 1.0,
        "met": overhead_pct < 1.0,
    }
    table(
        "O3 — observability overhead with tracing disabled",
        ["measure", "value"],
        [[key, str(value)] for key, value in overhead.items()]
        + [
            [f"A/B {label}", f"{data['batch_ms']} ms batch "
             f"({data['requests_per_s']} req/s)"]
            for label, data in ab.items()
        ],
    )

    slo_out = {
        stage: {
            "count": summary["count"],
            "p50_ms": round(summary["p50"] * 1000, 3),
            "p95_ms": round(summary["p95"] * 1000, 3),
            "p99_ms": round(summary["p99"] * 1000, 3),
        }
        for stage, summary in slo.items()
    }
    table(
        "O3 — pool SLO decomposition (sliding window)",
        ["stage", "window", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [
            [stage, str(data["count"]), f"{data['p50_ms']:.3f}",
             f"{data['p95_ms']:.3f}", f"{data['p99_ms']:.3f}"]
            for stage, data in sorted(slo_out.items())
        ],
    )

    payload = {
        "source": "benchmarks/run_report.py (section O3-fleet)",
        "fast": FAST,
        "workload": {
            "requests": len(requests),
            "documents": spec.documents,
            "nodes_per_document": spec.nodes_per_document,
        },
        "stitched_stages": stages,
        "slo": slo_out,
        "harvest_ab": ab,
        "overhead": overhead,
        "conservation": {
            "fleet_requests_total": fleet_total,
            "dispatcher_worker_outcomes": dispatched,
            "holds": fleet_total == dispatched,
        },
    }
    BENCH_PR9_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR9_JSON}")


BENCH_PR3_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
BENCH_PR10_JSON = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def s1_stream() -> None:
    """S1 regression budget: the rebuilt streaming engine vs the DOM path.

    The PR3 baseline left the streaming backend ~4x *slower* than DOM
    (bounded memory bought with per-character stepping). After the
    bulk-scan tokenizer + precompiled labeler dispatch rebuild the
    budget flips and is enforced here, written to ``BENCH_PR10.json``:

    - **throughput gate**: end-to-end ``serve_stream`` p50 must be at
      least as fast as ``serve`` on the 10k-node workload (asserted;
      a ``--fast`` run gets a 15% noise allowance);
    - **memory gate**: the streaming peak heap must stay *below* the
      DOM peak at every size, and — on a full run that reaches the
      150k-node document — within 2x of the PR3 baseline's 150k
      streaming peak, so the speedup provably did not trade away the
      O(depth) working set;
    - **reader throughput**: tokenizer-only Mchars/s on the 10k-node
      document, the least noisy view of the bulk-scan rewrite
      (informational; diffed across runs by ``tools/bench_diff.py``).
    """
    import bench_stream

    from repro.stream.reader import StreamReader
    from repro.workloads.generator import synthetic_document

    sizes = [2_000, 10_000] if FAST else [2_000, 10_000, 50_000, 150_000]
    rows = []
    display = []
    for nodes in sizes:
        row = bench_stream.bench_size(nodes)
        speedup = row["dom"]["p50_ms"] / row["stream"]["p50_ms"]
        row["stream_vs_dom_speedup"] = round(speedup, 3)
        rows.append(row)
        display.append([
            str(nodes),
            f"{row['dom']['p50_ms']:.1f}",
            f"{row['stream']['p50_ms']:.1f}",
            f"{row['stream_vs_dom_speedup']:.2f}x",
            f"{row['dom']['peak_heap_kib']:.0f}",
            f"{row['stream']['peak_heap_kib']:.0f}",
        ])
    table(
        "S1 — streaming vs DOM after the bulk-scan rebuild",
        ["nodes", "DOM p50 (ms)", "stream p50 (ms)", "speedup",
         "DOM peak (KiB)", "stream peak (KiB)"],
        display,
    )

    # -- throughput gate -----------------------------------------------------
    ten_k = next(row for row in rows if row["nodes"] == 10_000)
    floor = 0.85 if FAST else 1.0
    assert ten_k["stream_vs_dom_speedup"] >= floor, (
        f"stream throughput gate: serve_stream is "
        f"{ten_k['stream_vs_dom_speedup']:.2f}x DOM at 10k nodes "
        f"(floor {floor})"
    )

    # -- memory gates --------------------------------------------------------
    for row in rows:
        assert row["stream"]["peak_heap_kib"] < row["dom"]["peak_heap_kib"], (
            f"stream peak {row['stream']['peak_heap_kib']} KiB >= DOM peak "
            f"{row['dom']['peak_heap_kib']} KiB at {row['nodes']} nodes"
        )
    memory_gate = {"dom_exceeded_at_any_size": False}
    largest = rows[-1]
    if largest["nodes"] == 150_000 and BENCH_PR3_JSON.exists():
        pr3 = json.loads(BENCH_PR3_JSON.read_text())
        pr3_peak = next(
            (entry["stream"]["peak_heap_kib"]
             for entry in pr3.get("sizes", ())
             if entry["nodes"] == 150_000),
            None,
        )
        if pr3_peak is not None:
            budget = 2 * pr3_peak
            assert largest["stream"]["peak_heap_kib"] <= budget, (
                f"stream peak {largest['stream']['peak_heap_kib']} KiB at "
                f"150k nodes exceeds 2x the PR3 baseline ({budget} KiB)"
            )
            memory_gate["pr3_peak_150k_kib"] = pr3_peak
            memory_gate["budget_150k_kib"] = round(budget, 1)
            memory_gate["peak_150k_kib"] = largest["stream"]["peak_heap_kib"]

    # -- tokenizer-only throughput -------------------------------------------
    document = synthetic_document(10_000, uri=URI)
    text = serialize(document)
    samples = []
    for _ in range(ROUNDS):
        reader = StreamReader()
        start = time.perf_counter()
        for offset in range(0, len(text), 65536):
            reader.feed(text[offset : offset + 65536])
        reader.close()
        samples.append(time.perf_counter() - start)
    reader_mchars_per_s = len(text) / statistics.median(samples) / 1e6
    print()
    print(
        f"tokenizer-only: {reader_mchars_per_s:.2f} Mchars/s "
        f"({len(text)} chars, 64 KiB chunks)"
    )

    payload = {
        "source": "benchmarks/run_report.py (section S1-stream)",
        "fast": FAST,
        "sizes": rows,
        "gates": {
            "speedup_floor_10k": floor,
            "speedup_10k": ten_k["stream_vs_dom_speedup"],
            "memory": memory_gate,
        },
        "reader": {
            "input_chars": len(text),
            "reader_mchars_per_s": round(reader_mchars_per_s, 3),
        },
    }
    BENCH_PR10_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"wrote {BENCH_PR10_JSON}")


def main() -> None:
    print("# Experiment report (regenerated)")
    print()
    print(f"rounds per measurement: {ROUNDS}")
    if "--only-concurrency" in sys.argv:
        c1_concurrency()
        return
    if "--only-pool" in sys.argv:
        c2_pool()
        return
    if "--only-rewrite" in sys.argv:
        q1_rewrite()
        return
    if "--only-updates" in sys.argv:
        u1_updates()
        return
    if "--only-fleet" in sys.argv:
        o3_fleet()
        return
    if "--only-stream" in sys.argv:
        s1_stream()
        return
    c1_view_scaling()
    c2_auth_scaling()
    c3_pipeline()
    c4_shape()
    c5_xpath()
    c6_subjects()
    c7_dtd()
    a1_policies()
    a2_weak()
    a3_cache()
    a4_selectivity()
    o1_obs_baseline()
    o2_provenance()
    c1_concurrency()
    c2_pool()
    q1_rewrite()
    u1_updates()
    o3_fleet()
    s1_stream()


if __name__ == "__main__":
    main()
