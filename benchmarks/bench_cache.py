"""A3 — ablation: server view cache on/off.

Not a paper experiment (the paper computes views per request); measures
what the natural production optimization buys when many requesters
resolve to the same applicable authorization set, and what one request
costs end-to-end through the server facade either way.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.server.cache import ViewCache
from repro.server.request import AccessRequest
from repro.server.service import SecureXMLServer
from repro.subjects.hierarchy import Requester
from repro.xml.serializer import serialize

from bench_common import URI, document_of_size

NODES = 4000


def build_server(with_cache: bool) -> SecureXMLServer:
    server = SecureXMLServer(view_cache=ViewCache() if with_cache else None)
    document = document_of_size(NODES)
    server.publish_document(URI, serialize(document))
    server.grant(Authorization.build("Public", f"{URI}://archive", "+", "R"))
    server.grant(
        Authorization.build(
            "Public", f'{URI}://section[./@kind="private"]', "-", "R"
        )
    )
    return server


@pytest.mark.parametrize("cached", [False, True], ids=["no-cache", "cache"])
def test_serve_repeated(benchmark, cached):
    server = build_server(cached)
    requester = Requester("anonymous", "9.9.9.9", "h.example")
    request = AccessRequest(requester, URI)
    server.serve(request)  # warm (populates the cache when enabled)

    response = benchmark(server.serve, request)
    assert response.visible_nodes > 0
    if cached:
        assert server.view_cache.hits > 0
