"""M1 — macro-benchmark: the auction-site scenario end to end.

Unlike the synthetic C-series, this measures a *realistic* policy (the
XMark-inspired auction site: ~50 authorizations across schema and
instance levels, weak grants, per-user rules) through the full server
facade, for three requester classes, at two site sizes.
"""

import pytest

from repro.server.request import AccessRequest
from repro.workloads.auction import AUCTION_SITE_URI, auction_scenario

SIZES = {
    "small": dict(people=8),
    "large": dict(people=40),
}

_SCENARIOS = {}


def scenario(size: str):
    if size not in _SCENARIOS:
        _SCENARIOS[size] = auction_scenario(seed=3, **SIZES[size])
    return _SCENARIOS[size]


@pytest.mark.parametrize("size", sorted(SIZES))
def test_visitor_view(benchmark, size):
    s = scenario(size)
    request = AccessRequest(s.visitor, AUCTION_SITE_URI)
    response = benchmark(s.server.serve, request)
    assert response.visible_nodes > 0


@pytest.mark.parametrize("size", sorted(SIZES))
def test_member_view(benchmark, size):
    s = scenario(size)
    request = AccessRequest(s.requester_for("p0"), AUCTION_SITE_URI)
    response = benchmark(s.server.serve, request)
    assert response.visible_nodes > 0


@pytest.mark.parametrize("size", sorted(SIZES))
def test_fraud_view(benchmark, size):
    s = scenario(size)
    request = AccessRequest(s.fraud_officer, AUCTION_SITE_URI)
    response = benchmark(s.server.serve, request)
    assert response.visible_nodes == response.total_nodes
