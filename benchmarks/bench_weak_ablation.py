"""A2 — ablation: weak vs strong instance authorizations (Section 5).

Measures the cost and the view-size effect of declaring the same grants
weak (overridable by DTD-level authorizations) versus strong, against a
fixed set of schema-level denials. Shape: identical latency (weakness
only reroutes label slots), strictly smaller views for weak grants.
"""

import pytest

from repro.authz.authorization import Authorization
from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy

from bench_common import DTD_URI, URI, document_of_size

NODES = 2000


def grants(auth_type: str):
    return [
        Authorization.build(("Public", "*", "*"), f"{URI}://archive", "+", auth_type),
    ]


SCHEMA_DENIALS = [
    Authorization.build(
        ("Public", "*", "*"), f'{DTD_URI}://section[./@kind="private"]', "-", "R"
    ),
    Authorization.build(
        ("Public", "*", "*"), f'{DTD_URI}://record[./@kind="restricted"]', "-", "R"
    ),
]


@pytest.mark.parametrize("strength", ["R", "RW"])
def test_weak_vs_strong(benchmark, strength):
    document = document_of_size(NODES)
    result = benchmark(
        compute_view_from_auths,
        document,
        grants(strength),
        SCHEMA_DENIALS,
        SubjectHierarchy(),
    )
    assert result.total_nodes > 0


def test_weak_view_smaller_than_strong():
    """Not a timing benchmark: records the ablation's view-size shape."""
    document = document_of_size(NODES)
    strong = compute_view_from_auths(
        document, grants("R"), SCHEMA_DENIALS, SubjectHierarchy()
    )
    weak = compute_view_from_auths(
        document, grants("RW"), SCHEMA_DENIALS, SubjectHierarchy()
    )
    assert weak.visible_nodes < strong.visible_nodes
