"""C7 — DTD validation and loosening cost (Sections 2, 6.2).

Validation cost should be linear in document size (Glushkov automata
are compiled once per declaration); loosening is linear in DTD size and
independent of any document.
"""

import pytest

from repro.dtd.generator import InstanceGenerator
from repro.dtd.loosen import loosen, validate_against_loosened
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import validate
from repro.workloads.scenarios import LAB_DTD_TEXT

REPEATS = {"small": 2.0, "large": 8.0}


def instance(repeat_factor: float):
    dtd = parse_dtd(LAB_DTD_TEXT)
    return dtd, InstanceGenerator(dtd, seed=7, repeat_factor=repeat_factor).document()


@pytest.mark.parametrize("size", sorted(REPEATS))
def test_validate_instance(benchmark, size):
    dtd, document = instance(REPEATS[size])
    report = benchmark(validate, document, dtd)
    assert report.valid


def test_loosen_dtd(benchmark):
    dtd = parse_dtd(LAB_DTD_TEXT)
    loosened = benchmark(loosen, dtd)
    assert loosened.elements


def test_parse_dtd(benchmark):
    dtd = benchmark(parse_dtd, LAB_DTD_TEXT)
    assert dtd.element("laboratory") is not None


def test_validate_pruned_view_against_loosened(benchmark):
    from repro.core.view import compute_view_from_auths
    from bench_common import public_auth

    dtd, document = instance(4.0)
    document.uri = "http://x/gen.xml"
    view = compute_view_from_auths(
        document,
        [public_auth('//paper[./@category="public"]', uri="http://x/gen.xml")],
        [],
    ).document
    report = benchmark(validate_against_loosened, view, dtd)
    assert report.valid, report.violations
