"""A4 — view-computation cost vs authorization selectivity.

Sweeps the *fraction of the document* the authorization set covers
(deny-most .. grant-all) at fixed size and |Auth|. The labeling pass
always visits every node (its cost is flat in selectivity); the
transform step copies the visible subtree, so total latency grows
mildly and linearly with the *emitted view size* — never with policy
complexity. Expected shape: grant-none is the labeling floor and
grant-all adds roughly one tree-copy on top.
"""

import pytest

from repro.core.view import compute_view_from_auths
from repro.subjects.hierarchy import SubjectHierarchy

from bench_common import document_of_size, public_auth

NODES = 4000

# Each case grants a different share of the synthetic 'kind' values.
CASES = {
    "grant-none": [public_auth('//section[./@kind="nosuch"]', "+", "R")],
    "grant-quarter": [public_auth('//section[./@kind="private"]', "+", "R")],
    "grant-half": [
        public_auth('//section[./@kind="private"]', "+", "R"),
        public_auth('//section[./@kind="public"]', "+", "R"),
    ],
    "grant-all": [public_auth("//archive", "+", "R")],
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_selectivity(benchmark, case):
    document = document_of_size(NODES)
    auths = CASES[case]
    result = benchmark(
        compute_view_from_auths, document, auths, [], SubjectHierarchy()
    )
    assert result.total_nodes > 0


def test_view_sizes_span_the_range():
    """Records the ablation's shape: visible share grows with grants."""
    document = document_of_size(NODES)
    sizes = {}
    for case, auths in CASES.items():
        result = compute_view_from_auths(document, auths, [], SubjectHierarchy())
        sizes[case] = result.visible_nodes
    assert sizes["grant-none"] == 0
    assert 0 < sizes["grant-quarter"] < sizes["grant-half"]
    assert sizes["grant-half"] < sizes["grant-all"]
